// Online compression of a live GPS feed — the paper's opening-window
// algorithms "are online algorithms ... typically used to compress data
// streams in real-time" (Sec. 2.2).
//
// Feeds a simulated receiver fix-by-fix through OPW-TR, OPW-SP and
// dead-reckoning compressors side by side, reporting commits and working
// memory as the stream progresses, then compares the final results. The
// same fixes also flow through the server-side ingestion path (a
// FleetCompressor into a TrajectoryStore), whose live metrics — fixes
// in/out, buffered working set, push-latency histogram — are dumped from
// the process registry at the end, followed by the recorded trace spans.
//
//   ./examples/streaming_gps_feed [--epsilon=30] [--speed-threshold=10]
//                                 [--metrics-format=text|json|prometheus]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/error/evaluation.h"
#include "stcomp/net/ingest_server.h"
#include "stcomp/obs/admin_server.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/store/query.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/dead_reckoning_stream.h"
#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/sharded_fleet.h"

int main(int argc, char** argv) {
  double epsilon = 30.0;
  double speed_threshold = 10.0;
  std::string metrics_format = "text";
  int admin_port = -1;
  double serve_seconds = 0.0;
  stcomp::FlagParser flags("streaming GPS feed demo");
  flags.AddDouble("epsilon", &epsilon, "distance threshold in metres");
  flags.AddDouble("speed-threshold", &speed_threshold,
                  "speed-difference threshold in m/s (OPW-SP)");
  flags.AddString("metrics-format", &metrics_format,
                  "final metrics dump format: text, json or prometheus");
  int ingest_port = -1;
  flags.AddInt("admin-port", &admin_port,
               "serve /metrics, /healthz, /tracez, /objectz and /flightz on "
               "127.0.0.1:<port> (0 = ephemeral, printed; -1 = off)");
  flags.AddInt("ingest-port", &ingest_port,
               "accept STNI wire-protocol clients (examples/fleet_client) on "
               "127.0.0.1:<port> during the serve window "
               "(0 = ephemeral, printed; -1 = off)");
  flags.AddDouble("serve-seconds", &serve_seconds,
                  "keep the admin server up this long after the feed ends "
                  "(0 with --admin-port waits for Ctrl-C-less smoke: one "
                  "second)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const stcomp::Result<stcomp::obs::MetricsFormat> format =
      stcomp::obs::ParseMetricsFormat(metrics_format);
  if (!format.ok()) {
    std::fprintf(stderr, "%s\n", format.status().ToString().c_str());
    return 1;
  }

  stcomp::PaperDatasetConfig config;
  config.num_trajectories = 1;
  const stcomp::Trajectory feed = stcomp::GeneratePaperDataset(config).front();
  std::printf("live feed: %zu fixes at ~10 s spacing (%.0f s total)\n\n",
              feed.size(), feed.Duration());

  struct Lane {
    std::unique_ptr<stcomp::OnlineCompressor> compressor;
    std::vector<stcomp::TimedPoint> committed;
    size_t max_buffer = 0;
  };
  std::vector<Lane> lanes;
  lanes.push_back({std::make_unique<stcomp::OpeningWindowStream>(
                       epsilon, stcomp::algo::BreakPolicy::kNormal,
                       stcomp::StreamCriterion::kSynchronized),
                   {},
                   0});
  lanes.push_back({std::make_unique<stcomp::OpeningWindowStream>(
                       epsilon, stcomp::algo::BreakPolicy::kNormal,
                       stcomp::StreamCriterion::kSpatiotemporal,
                       speed_threshold),
                   {},
                   0});
  lanes.push_back({std::make_unique<stcomp::DeadReckoningStream>(epsilon),
                   {},
                   0});

  // The ingestion path the lanes only simulate: the same fixes routed
  // through a FleetCompressor into a store, which populates the metrics
  // dumped below.
  stcomp::TrajectoryStore store;
  stcomp::FleetCompressor fleet(
      [epsilon] {
        return std::make_unique<stcomp::OpeningWindowStream>(
            epsilon, stcomp::algo::BreakPolicy::kNormal,
            stcomp::StreamCriterion::kSynchronized);
      },
      &store, "gps-feed");

  // Network ingest: fleet_client devices land in a thread-safe sharded
  // engine (the single-threaded FleetCompressor above belongs to this
  // thread; the ingest server pushes from its poll thread).
  std::unique_ptr<stcomp::ShardedFleetCompressor> net_engine;
  std::unique_ptr<stcomp::net::IngestServer> ingest;
  if (ingest_port >= 0) {
    stcomp::ShardedFleetOptions engine_options;
    engine_options.num_shards = 2;
    engine_options.instance = "gps-feed-net";
    net_engine = std::make_unique<stcomp::ShardedFleetCompressor>(
        [epsilon] {
          return std::make_unique<stcomp::OpeningWindowStream>(
              epsilon, stcomp::algo::BreakPolicy::kNormal,
              stcomp::StreamCriterion::kSynchronized);
        },
        engine_options);
    stcomp::net::IngestServerOptions server_options;
    server_options.instance = "gps-feed";
    ingest = std::make_unique<stcomp::net::IngestServer>(
        [&net_engine](std::string_view id, const stcomp::TimedPoint& fix) {
          return net_engine->Push(id, fix);
        },
        server_options);
    const stcomp::Status started =
        ingest->Start(static_cast<uint16_t>(ingest_port));
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    // Parsed by scripts/ingest_smoke.py; keep the format stable.
    std::printf("ingest server listening on 127.0.0.1:%u\n", ingest->port());
    std::fflush(stdout);
  }

  // Live introspection: the admin server reads the fleet's per-object
  // state from its own thread, so it serves while this thread is idle
  // (between the pump below and FinishAll) — the fleet itself is not
  // thread-safe.
  stcomp::obs::AdminServer admin;
  std::atomic<bool> pump_done{false};
  if (admin_port >= 0) {
    // The fleet is single-threaded; /objectz only reads it once this
    // thread has gone idle (pump finished), and reports empty before.
    stcomp::obs::RegisterStandardEndpoints(
        admin, [&fleet, &pump_done](size_t limit) -> std::string {
          if (!pump_done.load(std::memory_order_acquire)) {
            return "{\"objects\":[],\"note\":\"feed still pumping\"}\n";
          }
          return fleet.RenderObjectsJson(limit);
        },
        [] { return stcomp::RenderQueryzJson(); },
        [&ingest]() -> std::string {
          if (ingest == nullptr) {
            return "{\"server\":null,\"sessions\":[]}\n";
          }
          return ingest->RenderIngestzJson();
        });
    const stcomp::Status started =
        admin.Start(static_cast<uint16_t>(admin_port));
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    // Parsed by scripts/admin_smoke.py; keep the format stable.
    std::printf("admin server listening on 127.0.0.1:%u\n", admin.port());
    std::fflush(stdout);
  }

  // Pump the stream; print a progress line every 50 fixes.
  size_t fix_count = 0;
  for (const stcomp::TimedPoint& fix : feed.points()) {
    ++fix_count;
    for (Lane& lane : lanes) {
      STCOMP_CHECK_OK(lane.compressor->Push(fix, &lane.committed));
      lane.max_buffer =
          std::max(lane.max_buffer, lane.compressor->buffered_points());
    }
    STCOMP_CHECK_OK(fleet.Push("vehicle-0", fix));
    if (fix_count % 50 == 0) {
      std::printf("after %4zu fixes:", fix_count);
      for (const Lane& lane : lanes) {
        std::printf("  %s: %zu kept (%zu buffered)",
                    std::string(lane.compressor->name()).c_str(),
                    lane.committed.size(),
                    lane.compressor->buffered_points());
      }
      std::printf("  fleet: %zu/%zu in/out (%zu buffered)", fleet.fixes_in(),
                  fleet.fixes_out(), fleet.buffered_points());
      std::printf("\n");
    }
  }
  pump_done.store(true, std::memory_order_release);
  if (admin_port >= 0 || ingest_port >= 0) {
    // Serve with the objects still live so /objectz shows them; the app
    // thread only sleeps here, so the server threads' reads are safe.
    const double window = serve_seconds > 0.0 ? serve_seconds : 1.0;
    std::printf("serving for %.1f s...\n", window);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(window));
    admin.Stop();
  }
  if (ingest != nullptr) {
    ingest->Stop();
    STCOMP_CHECK_OK(net_engine->FinishAll());
    std::printf(
        "network ingest: %llu sessions, %llu fixes acked into the sharded "
        "engine\n",
        static_cast<unsigned long long>(ingest->sessions_accepted()),
        static_cast<unsigned long long>(ingest->fixes_in()));
  }
  for (Lane& lane : lanes) {
    lane.compressor->Finish(&lane.committed);
  }
  STCOMP_CHECK_OK(fleet.FinishAll());

  std::printf("\nfinal results (epsilon = %.0f m):\n", epsilon);
  for (const Lane& lane : lanes) {
    const stcomp::Trajectory compressed =
        stcomp::Trajectory::FromPoints(lane.committed).value();
    // Map committed points back to original indices for evaluation.
    stcomp::algo::IndexList kept;
    size_t cursor = 0;
    for (size_t i = 0; i < feed.size(); ++i) {
      if (cursor < compressed.size() && feed[i].t == compressed[cursor].t) {
        kept.push_back(static_cast<int>(i));
        ++cursor;
      }
    }
    const stcomp::Evaluation eval = stcomp::Evaluate(feed, kept).value();
    std::printf(
        "  %-15s kept %3zu/%3zu  compression %5.1f%%  mean sync error %6.2f "
        "m  peak buffer %zu points\n",
        std::string(lane.compressor->name()).c_str(), eval.kept_points,
        eval.original_points, eval.compression_percent,
        eval.sync_error_mean_m, lane.max_buffer);
  }
  std::printf(
      "  fleet ingestion    %zu fixes in -> %zu stored (%zu object(s) in "
      "store, %zu payload bytes)\n",
      fleet.fixes_in(), fleet.fixes_out(), store.object_count(),
      store.StorageBytes());

  std::printf("\nlive metrics registry (%s):\n", metrics_format.c_str());
  std::fputs(stcomp::obs::RenderMetrics(
                 stcomp::obs::MetricsRegistry::Global().Snapshot(), *format)
                 .c_str(),
             stdout);
  std::printf("\ntrace span tree (start, duration, thread, name):\n");
  std::fputs(stcomp::obs::RenderTraceTree(
                 stcomp::obs::TraceBuffer::Global().Snapshot())
                 .c_str(),
             stdout);
  return 0;
}
