// stcomp command-line tool: compress trajectory files.
//
//   trajectory_tool --algorithm=td-tr --epsilon=30 in.csv out.csv
//   trajectory_tool --stats --metrics-format=prometheus ... in.csv out.csv
//   trajectory_tool --sweep --algorithm=opw-tr --threads=4 in.csv
//   trajectory_tool --list
//   trajectory_tool --fsck=store_dir
//   trajectory_tool --recover=store_dir
//   trajectory_tool --store=store_dir --query="range:0:600:-100:-100:100:100"
//
// Input format by extension: .csv (t,x,y or t,lat,lon), .gpx, .plt
// (Geolife), .nmea/.log (RMC sentences). Output: .csv, .gpx or .nmea. The evaluation summary goes to stderr
// so stdout stays clean for piping. --stats dumps the process metrics
// registry (per-algorithm latency/ratio histograms, codec byte counters)
// to stdout in the --metrics-format of choice: text, json or prometheus.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "stcomp/algo/registry.h"
#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/error/evaluation.h"
#include "stcomp/exp/sweep.h"
#include "stcomp/exp/table.h"
#include "stcomp/gps/csv.h"
#include "stcomp/gps/gpx.h"
#include "stcomp/gps/nmea.h"
#include "stcomp/gps/plt.h"
#include "stcomp/geom/kernels.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/partitioned_store.h"
#include "stcomp/store/query.h"
#include "stcomp/store/segment_store.h"
#include "stcomp/stream/batch_adapter.h"
#include "stcomp/stream/sharded_fleet.h"

namespace {

// --stats companion line (stderr, like the run summary, so stdout stays
// parseable): which batched-kernel backend served this process.
void PrintKernelBackend() {
  std::fprintf(
      stderr, "kernel backend: %s%s\n",
      stcomp::kernels::BackendName(stcomp::kernels::KernelDispatch::Active()),
      stcomp::kernels::ScalarKernelsForced() ? " (scalar forced by env)"
                                             : "");
}

stcomp::Result<stcomp::Trajectory> ReadAny(const std::string& path) {
  const std::string lower = stcomp::AsciiLower(path);
  if (stcomp::EndsWith(lower, ".gpx")) {
    STCOMP_ASSIGN_OR_RETURN(const stcomp::GpxTrack track,
                            stcomp::ReadGpxFile(path));
    return track.trajectory;
  }
  if (stcomp::EndsWith(lower, ".plt")) {
    return stcomp::ReadPltFile(path);
  }
  if (stcomp::EndsWith(lower, ".nmea") || stcomp::EndsWith(lower, ".log")) {
    return stcomp::ReadNmeaFile(path, nullptr);
  }
  return stcomp::ReadCsvTrajectoryFile(path);
}

stcomp::Status WriteAny(const stcomp::Trajectory& trajectory,
                        const std::string& path) {
  const std::string lower = stcomp::AsciiLower(path);
  if (stcomp::EndsWith(lower, ".gpx")) {
    // Positions are in a local metric frame; anchor the output at a
    // neutral origin so the file is at least well-formed GPX.
    return stcomp::WriteGpxFile(trajectory, {52.22, 6.89}, path);
  }
  if (stcomp::EndsWith(lower, ".nmea") || stcomp::EndsWith(lower, ".log")) {
    std::ofstream file(path);
    if (!file) {
      return stcomp::IoError("cannot open " + path + " for writing");
    }
    file << stcomp::WriteNmea(trajectory, {52.22, 6.89});
    return stcomp::Status::Ok();
  }
  return stcomp::WriteCsvTrajectoryFile(trajectory, path);
}

// Epilogue dumps requested via flags; main() runs them after Run() so
// every exit path (including early errors) still produces them.
bool g_flight_dump = false;
std::string g_perfetto_out;

int Run(int argc, char** argv) {
  std::string algorithm = "td-tr";
  double epsilon = 30.0;
  double speed_threshold = 10.0;
  bool list = false;
  bool stats = false;
  bool sweep = false;
  int threads = 0;
  std::string metrics_format = "text";
  stcomp::FlagParser flags(
      "compress a trajectory file (CSV/GPX/PLT in, CSV/GPX out)");
  flags.AddString("algorithm", &algorithm, "compression algorithm name");
  flags.AddDouble("epsilon", &epsilon, "distance threshold in metres");
  flags.AddDouble("speed-threshold", &speed_threshold,
                  "speed threshold in m/s (sp algorithms)");
  flags.AddBool("list", &list, "list available algorithms and exit");
  flags.AddBool("stats", &stats,
                "dump the metrics registry to stdout after the run");
  flags.AddBool("sweep", &sweep,
                "sweep the paper threshold grid on <input> instead of "
                "compressing (table to stdout; no output file)");
  flags.AddInt("threads", &threads,
               "worker threads for --sweep (0 = hardware concurrency)");
  int shards = 0;
  flags.AddInt("shards", &shards,
               "route the compression through the sharded fleet engine "
               "with this many shards (0 = direct path); output is read "
               "back from the engine's delta-codec store (ms/cm "
               "quantised); --stats adds per-shard queue stats");
  flags.AddString("metrics-format", &metrics_format,
                  "stats output format: text, json or prometheus");
  std::string store_dir;
  std::string query_spec;
  double declared_error = 0.0;
  bool oracle = false;
  flags.AddString("store", &store_dir,
                  "segment-store directory (plain or shard-NNN partitioned) "
                  "for --query");
  flags.AddString("query", &query_spec,
                  "run a query against --store and print the JSON answer; "
                  "spec: window:T0:T1 | "
                  "range:T0:T1:MIN_X:MIN_Y:MAX_X:MAX_Y | "
                  "corridor:T0:T1:RADIUS:X0,Y0;X1,Y1;... | "
                  "nearest:T0:T1:K:X:Y (T0/T1 '-' = unbounded)");
  flags.AddDouble("declared-error", &declared_error,
                  "SED tolerance (m) the stored data was simplified with; "
                  "widens --query match predicates");
  flags.AddBool("oracle", &oracle,
                "answer --query by brute-force full decode instead of the "
                "index (plain store layout only; differential debugging)");
  std::string fsck_dir;
  std::string recover_dir;
  flags.AddString("fsck", &fsck_dir,
                  "read-only integrity scan of a segment-store directory "
                  "(exit 0 clean, 2 corrupt)");
  flags.AddString("recover", &recover_dir,
                  "recover a segment-store directory (salvage + replay), "
                  "print the report and checkpoint the recovered state");
  flags.AddBool("flight-dump", &g_flight_dump,
                "dump the flight recorder to stderr when the run ends");
  flags.AddString("perfetto-out", &g_perfetto_out,
                  "write the run's trace spans as Perfetto/Chrome "
                  "trace_event JSON to this file (load in chrome://tracing)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    if (status.code() == stcomp::StatusCode::kFailedPrecondition) {
      return 0;
    }
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.UsageString().c_str());
    return 1;
  }
  const stcomp::Result<stcomp::obs::MetricsFormat> format =
      stcomp::obs::ParseMetricsFormat(metrics_format);
  if (!format.ok()) {
    std::fprintf(stderr, "%s\n", format.status().ToString().c_str());
    return 1;
  }
  if (list) {
    for (const stcomp::algo::AlgorithmInfo& info :
         stcomp::algo::AllAlgorithms()) {
      std::printf("%-14s %s%s\n", info.name.c_str(),
                  info.description.c_str(), info.online ? " [online]" : "");
    }
    return 0;
  }
  if (!fsck_dir.empty()) {
    const stcomp::Result<stcomp::FsckReport> report =
        stcomp::SegmentStore::Fsck(fsck_dir);
    if (!report.ok()) {
      std::fprintf(stderr, "fsck failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->Describe().c_str());
    return report->clean() ? 0 : 2;
  }
  if (!recover_dir.empty()) {
    stcomp::SegmentStore store;
    if (const stcomp::Status status = store.Open(recover_dir); !status.ok()) {
      std::fprintf(stderr, "recover failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", store.last_recovery().Describe().c_str());
    // Persist the recovered state as a fresh clean segment so the salvage
    // does not have to be repeated on the next open.
    if (const stcomp::Status status = store.Checkpoint(); !status.ok()) {
      std::fprintf(stderr, "checkpoint after recovery failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("recovered %zu objects; checkpointed into %s\n",
                store.store().object_count(), recover_dir.c_str());
    return 0;
  }
  if (!query_spec.empty()) {
    if (store_dir.empty()) {
      std::fprintf(stderr, "--query needs --store=<dir>\n");
      return 1;
    }
    stcomp::Result<stcomp::QueryRequest> request =
        stcomp::ParseQuerySpec(query_spec);
    if (!request.ok()) {
      std::fprintf(stderr, "%s\n", request.status().ToString().c_str());
      return 1;
    }
    request->declared_error_m = declared_error;
    stcomp::Result<stcomp::QueryAnswer> answer =
        stcomp::InternalError("query not run");
    if (std::filesystem::is_directory(store_dir + "/shard-000")) {
      if (oracle) {
        std::fprintf(stderr,
                     "--oracle only supports the plain store layout\n");
        return 1;
      }
      stcomp::PartitionedSegmentStore partitioned;
      if (const stcomp::Status status = partitioned.Open(store_dir);
          !status.ok()) {
        std::fprintf(stderr, "open failed: %s\n", status.ToString().c_str());
        return 1;
      }
      answer = partitioned.Query(*request);
    } else {
      stcomp::SegmentStore store;
      if (const stcomp::Status status = store.Open(store_dir); !status.ok()) {
        std::fprintf(stderr, "open failed: %s\n", status.ToString().c_str());
        return 1;
      }
      answer = oracle ? stcomp::BruteForceQuery(store.store(), *request)
                      : store.Query(*request);
    }
    if (!answer.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                stcomp::RenderQueryAnswerJson(*request, *answer).c_str());
    if (stats) {
      std::printf("%s\n", stcomp::RenderQueryzJson().c_str());
    }
    return 0;
  }
  if (flags.positional().size() != (sweep ? 1u : 2u)) {
    std::fprintf(stderr,
                 "usage: trajectory_tool [flags] <input> <output>\n"
                 "       trajectory_tool --sweep [flags] <input>\n%s",
                 flags.UsageString().c_str());
    return 1;
  }

  const stcomp::Result<stcomp::Trajectory> input =
      ReadAny(flags.positional()[0]);
  if (!input.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 input.status().ToString().c_str());
    return 1;
  }
  const stcomp::Result<const stcomp::algo::AlgorithmInfo*> info =
      stcomp::algo::FindAlgorithm(algorithm);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  stcomp::algo::AlgorithmParams params;
  params.epsilon_m = epsilon;
  params.speed_threshold_mps = speed_threshold;
  // Fail with a message instead of tripping the registry wrapper's check.
  if (const stcomp::Status status = params.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid parameters: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (sweep) {
    std::vector<stcomp::Trajectory> dataset;
    dataset.push_back(*std::move(input));
    const stcomp::Result<std::vector<stcomp::SweepPoint>> points =
        stcomp::SweepThresholdsParallel(dataset, algorithm, params,
                                        stcomp::PaperThresholds(), threads);
    if (!points.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   points.status().ToString().c_str());
      return 1;
    }
    stcomp::Table table({"threshold_m", "compression_%", "mean_sync_err_m",
                         "max_sync_err_m"});
    for (const stcomp::SweepPoint& point : *points) {
      table.AddRow({stcomp::StrFormat("%.0f", point.epsilon_m),
                    stcomp::StrFormat("%.1f", point.compression_percent),
                    stcomp::StrFormat("%.2f", point.sync_error_mean_m),
                    stcomp::StrFormat("%.2f", point.sync_error_max_m)});
    }
    std::printf("%s: paper threshold sweep over %s\n%s", algorithm.c_str(),
                flags.positional()[0].c_str(), table.ToString().c_str());
    if (stats) {
      PrintKernelBackend();
      std::fputs(
          stcomp::obs::RenderMetrics(
              stcomp::obs::MetricsRegistry::Global().Snapshot(), *format)
              .c_str(),
          stdout);
    }
    return 0;
  }
  if (shards > 0) {
    // Fleet-pipeline path: the file is one object pushed fix-by-fix
    // through a ShardedFleetCompressor (DESIGN.md §16), the algorithm
    // wrapped in a BatchAdapter so batch entries work too.
    stcomp::ShardedFleetOptions options;
    options.num_shards = static_cast<size_t>(shards);
    options.instance = "tool";
    stcomp::ShardedFleetCompressor fleet(
        [&info, &params] {
          return std::make_unique<stcomp::BatchAdapter>(**info, params);
        },
        options);
    const std::string& object_id = flags.positional()[0];
    for (const stcomp::TimedPoint& point : input->points()) {
      if (const stcomp::Status status = fleet.Push(object_id, point);
          !status.ok()) {
        std::fprintf(stderr, "push failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    if (const stcomp::Status status = fleet.FinishAll(); !status.ok()) {
      std::fprintf(stderr, "finish failed: %s\n", status.ToString().c_str());
      return 1;
    }
    const stcomp::Result<stcomp::Trajectory> compressed =
        fleet.Get(object_id);
    if (!compressed.ok()) {
      std::fprintf(stderr, "read-back failed: %s\n",
                   compressed.status().ToString().c_str());
      return 1;
    }
    if (const stcomp::Status status =
            WriteAny(*compressed, flags.positional()[1]);
        !status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "%s via sharded fleet (%zu shards): %zu -> %zu points "
                 "(%.1f%% compression)\n",
                 algorithm.c_str(), fleet.num_shards(),
                 input->points().size(), compressed->size(),
                 input->points().empty()
                     ? 0.0
                     : 100.0 * (1.0 - static_cast<double>(compressed->size()) /
                                          input->points().size()));
    if (stats) {
      std::printf("sharded fleet: %zu shards\n", fleet.num_shards());
      for (const stcomp::ShardedFleetCompressor::ShardStats& shard :
           fleet.StatsSnapshot()) {
        std::printf(
            "  shard %03zu: queue_depth=%zu enqueued=%llu batches=%llu "
            "backpressure_waits=%llu active_objects=%zu fixes_in=%llu "
            "fixes_out=%llu\n",
            shard.shard, shard.queue_depth,
            static_cast<unsigned long long>(shard.enqueued),
            static_cast<unsigned long long>(shard.batches),
            static_cast<unsigned long long>(shard.backpressure_waits),
            shard.active_objects,
            static_cast<unsigned long long>(shard.fixes_in),
            static_cast<unsigned long long>(shard.fixes_out));
      }
      PrintKernelBackend();
      std::fputs(
          stcomp::obs::RenderMetrics(
              stcomp::obs::MetricsRegistry::Global().Snapshot(), *format)
              .c_str(),
          stdout);
    }
    return 0;
  }
  const stcomp::algo::IndexList kept = (*info)->run(*input, params);
  const stcomp::Result<stcomp::Evaluation> eval =
      stcomp::Evaluate(*input, kept);
  if (const stcomp::Status status =
          WriteAny(input->Subset(kept), flags.positional()[1]);
      !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (eval.ok()) {
    std::fprintf(stderr,
                 "%s: %zu -> %zu points (%.1f%% compression), mean sync "
                 "error %.2f m, max %.2f m\n",
                 algorithm.c_str(), eval->original_points, eval->kept_points,
                 eval->compression_percent, eval->sync_error_mean_m,
                 eval->sync_error_max_m);
  }
  if (stats) {
    PrintKernelBackend();
    std::fputs(
        stcomp::obs::RenderMetrics(
            stcomp::obs::MetricsRegistry::Global().Snapshot(), *format)
            .c_str(),
        stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = Run(argc, argv);
  if (g_flight_dump) {
    std::fputs(stcomp::obs::RenderFlightText(
                   stcomp::obs::FlightRecorder::Global().Snapshot())
                   .c_str(),
               stderr);
  }
  if (!g_perfetto_out.empty()) {
    std::ofstream file(g_perfetto_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   g_perfetto_out.c_str());
      return rc == 0 ? 1 : rc;
    }
    file << stcomp::obs::RenderTracePerfetto(
        stcomp::obs::TraceBuffer::Global().Snapshot());
    std::fprintf(stderr, "perfetto trace written to %s\n",
                 g_perfetto_out.c_str());
  }
  return rc;
}
