// Ingest hardening end to end (DESIGN.md §12): replay the same seeded
// fault plan twice to prove byte-identical corruption, then drive a
// FleetCompressor through a faulty multi-object feed under the repair
// policy and show the stcomp_ingest_* counters absorbing every fault.
//
//   ./ingest_faults_demo [--seed=N] [--fixes=N]
//
// Exits nonzero if determinism breaks, the fleet fails, or no fault was
// injected (the demo would then demonstrate nothing).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/testing/fault_plan.h"
#include "stcomp/testing/faulty_source.h"

namespace {

using stcomp::testing::FaultPlan;
using stcomp::testing::FaultyFeedEvent;
using stcomp::testing::FaultyFixSource;
using stcomp::testing::FleetFix;

std::vector<FleetFix> CleanFeed(int fixes_per_object) {
  std::vector<FleetFix> feed;
  for (int i = 0; i < fixes_per_object; ++i) {
    const double t = 5.0 * i;
    feed.push_back({"bus-7", {t, 3.0 * i, 40.0 + 0.5 * i}});
    feed.push_back({"tram-2", {t, -2.0 * i, 0.25 * i}});
  }
  return feed;
}

std::vector<std::string> ReplayLog(uint64_t seed,
                                   const std::vector<FleetFix>& feed) {
  FaultPlan plan(seed);
  FaultyFixSource source(feed, &plan);
  FaultyFeedEvent event;
  while (source.Next(&event)) {
  }
  return plan.log();
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20260805;
  int fixes = 400;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--fixes=", 0) == 0) {
      fixes = std::stoi(arg.substr(8));
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--fixes=N]\n", argv[0]);
      return 1;
    }
  }
  const std::vector<FleetFix> feed = CleanFeed(fixes);

  // 1. Determinism: two independent replays of the same seed must inject
  //    the exact same fault sequence.
  const std::vector<std::string> first = ReplayLog(seed, feed);
  const std::vector<std::string> second = ReplayLog(seed, feed);
  if (first != second) {
    std::fprintf(stderr, "FAIL: fault logs diverged for equal seeds\n");
    return 1;
  }
  if (first.empty()) {
    std::fprintf(stderr, "FAIL: no faults injected; raise --fixes\n");
    return 1;
  }
  std::printf("fault plan seed=%llu: %zu faults, byte-identical across two "
              "runs\n",
              static_cast<unsigned long long>(seed), first.size());
  const size_t shown = first.size() < 8 ? first.size() : 8;
  for (size_t i = 0; i < shown; ++i) {
    std::printf("  fault[%zu] %s\n", i, first[i].c_str());
  }

  // 2. The fleet under fire: repair policy with a 30 s reorder window.
  stcomp::TrajectoryStore store(stcomp::Codec::kDelta);
  stcomp::IngestPolicy policy;
  policy.mode = stcomp::IngestMode::kRepair;
  policy.reorder_window_s = 30.0;
  stcomp::FleetCompressor fleet(
      [] {
        return std::make_unique<stcomp::OpeningWindowStream>(
            10.0, stcomp::algo::BreakPolicy::kNormal,
            stcomp::StreamCriterion::kSynchronized);
      },
      &store, policy, "faults-demo");

  FaultPlan plan(seed);
  FaultyFixSource source(feed, &plan);
  FaultyFeedEvent event;
  size_t transient_errors = 0;
  while (source.Next(&event)) {
    if (event.kind == FaultyFeedEvent::Kind::kTransientError) {
      ++transient_errors;  // The source redelivers the fix afterwards.
      continue;
    }
    const stcomp::Status status = fleet.Push(event.fix.object_id,
                                             event.fix.fix);
    if (!status.ok()) {
      std::fprintf(stderr, "FAIL: push under repair policy: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  const stcomp::Status finish = fleet.FinishAll();
  if (!finish.ok()) {
    std::fprintf(stderr, "FAIL: finish: %s\n", finish.ToString().c_str());
    return 1;
  }

  std::printf("fleet survived %s\n", plan.Describe().c_str());
  std::printf("  transient io errors   %zu\n", transient_errors);
  std::printf("  fixes in / out        %zu / %zu\n", fleet.fixes_in(),
              fleet.fixes_out());
  std::printf("  ingest dropped        %zu\n", fleet.ingest_dropped());
  std::printf("  ingest repaired       %zu\n", fleet.ingest_repaired());
  std::printf("  ingest quarantined    %zu\n", fleet.ingest_quarantined());
  if (fleet.ingest_dropped() + fleet.ingest_repaired() == 0) {
    std::fprintf(stderr, "FAIL: gate absorbed nothing; demo proves nothing\n");
    return 1;
  }

  // 3. What reached storage is clean: strictly ordered, finite fixes.
  for (const std::string& id : store.ObjectIds()) {
    const stcomp::Result<stcomp::Trajectory> trajectory = store.Get(id);
    if (!trajectory.ok()) {
      std::fprintf(stderr, "FAIL: store read %s: %s\n", id.c_str(),
                   trajectory.status().ToString().c_str());
      return 1;
    }
    const std::vector<stcomp::TimedPoint>& points = trajectory->points();
    for (size_t i = 0; i < points.size(); ++i) {
      const bool finite = std::isfinite(points[i].t) &&
                          std::isfinite(points[i].position.x) &&
                          std::isfinite(points[i].position.y);
      if (!finite || (i > 0 && points[i - 1].t >= points[i].t)) {
        std::fprintf(stderr, "FAIL: %s stored a dirty fix at %zu\n",
                     id.c_str(), i);
        return 1;
      }
    }
    std::printf("  stored %-8s %zu clean ordered points\n", id.c_str(),
                points.size());
  }
  std::printf("ok\n");
  return 0;
}
