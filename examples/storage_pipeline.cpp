// End-to-end storage pipeline: GPS interchange formats in, compressed
// binary frames out — the paper's Sec. 1 storage story made concrete.
//
// Writes a trace out as GPX, reads it back, compresses it (TD-TR),
// serialises both versions with the raw and delta codecs, and prints the
// size ladder from "GPX text" down to "compressed + delta-coded binary".
//
//   ./examples/storage_pipeline [--epsilon=30]

#include <cstdio>

#include "stcomp/algo/time_ratio.h"
#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/error/evaluation.h"
#include "stcomp/exp/table.h"
#include "stcomp/gps/gpx.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/store/serialization.h"

int main(int argc, char** argv) {
  double epsilon = 30.0;
  stcomp::FlagParser flags("storage pipeline demo");
  flags.AddDouble("epsilon", &epsilon, "distance threshold in metres");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  stcomp::PaperDatasetConfig config;
  config.num_trajectories = 1;
  stcomp::Trajectory trip = stcomp::GeneratePaperDataset(config).front();

  // Round-trip through GPX, as if the trace came from a consumer device.
  const stcomp::LatLon origin{52.22, 6.89};  // Enschede.
  const std::string gpx_text = stcomp::WriteGpx(trip, origin);
  const stcomp::GpxTrack parsed = stcomp::ParseGpx(gpx_text).value();
  std::printf("GPX round-trip: %zu -> %zu points\n", trip.size(),
              parsed.trajectory.size());
  trip = parsed.trajectory;

  // Compress.
  const stcomp::algo::IndexList kept = stcomp::algo::TdTr(trip, epsilon);
  const stcomp::Trajectory compressed = trip.Subset(kept);
  const stcomp::Evaluation eval = stcomp::Evaluate(trip, kept).value();

  // Size ladder.
  const auto frame_size = [](const stcomp::Trajectory& t,
                             stcomp::Codec codec) {
    return stcomp::SerializeTrajectory(t, codec).value().size();
  };
  stcomp::Table table({"representation", "bytes", "% of GPX"});
  const double gpx_bytes = static_cast<double>(gpx_text.size());
  const auto add = [&](const char* label, size_t bytes) {
    table.AddRow({label, stcomp::StrFormat("%zu", bytes),
                  stcomp::StrFormat("%.1f", 100.0 * bytes / gpx_bytes)});
  };
  add("GPX text", gpx_text.size());
  add("binary raw", frame_size(trip, stcomp::Codec::kRaw));
  add("binary delta", frame_size(trip, stcomp::Codec::kDelta));
  add("TD-TR + raw", frame_size(compressed, stcomp::Codec::kRaw));
  add("TD-TR + delta", frame_size(compressed, stcomp::Codec::kDelta));
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf(
      "TD-TR at %.0f m keeps %zu/%zu points (%.1f%% compression) at mean "
      "sync error %.2f m\n",
      epsilon, eval.kept_points, eval.original_points,
      eval.compression_percent, eval.sync_error_mean_m);

  // Durable round trip with CRC-checked frames.
  const std::string path = "/tmp/stcomp_storage_pipeline.stct";
  STCOMP_CHECK_OK(
      stcomp::WriteTrajectoryFile(compressed, stcomp::Codec::kDelta, path));
  const stcomp::Trajectory reloaded =
      stcomp::ReadTrajectoryFile(path).value();
  std::printf("reloaded %zu points from %s (CRC verified)\n",
              reloaded.size(), path.c_str());
  return 0;
}
