// Threshold selection — the paper's conclusion: "Obtained results strongly
// depend on the chosen threshold values. Choosing a proper threshold is
// not easy and is application-dependent."
//
// For a target error budget, sweeps the threshold for each algorithm and
// reports the cheapest setting whose mean synchronous error stays within
// budget — a small decision-support tool built on the sweep harness.
//
//   ./examples/threshold_tuning [--error-budget=15]

#include <cstdio>
#include <optional>

#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/exp/sweep.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/paper_dataset.h"

int main(int argc, char** argv) {
  double error_budget = 15.0;
  stcomp::FlagParser flags("threshold tuning helper");
  flags.AddDouble("error-budget", &error_budget,
                  "maximum acceptable mean synchronous error (metres)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  stcomp::PaperDatasetConfig config;
  config.num_trajectories = 5;  // Tuning subset; fast.
  const std::vector<stcomp::Trajectory> dataset =
      stcomp::GeneratePaperDataset(config);

  // A denser grid than the paper's 15 values, since this is a tuner.
  std::vector<double> grid;
  for (double epsilon = 10.0; epsilon <= 200.0; epsilon += 10.0) {
    grid.push_back(epsilon);
  }

  std::printf(
      "best threshold per algorithm for mean sync error <= %.1f m (averaged "
      "over %zu traces)\n\n",
      error_budget, dataset.size());
  stcomp::Table table({"algorithm", "best_threshold_m", "compression_%",
                       "mean_sync_err_m"});
  const std::vector<const char*> names = {"ndp",    "nopw",  "bopw",
                                          "td-tr",  "opw-tr", "opw-sp",
                                          "td-sp",  "bottom-up-tr"};
  // All (algorithm, threshold) cells run in one thread pool.
  std::vector<stcomp::SweepRequest> requests;
  for (const char* name : names) {
    stcomp::algo::AlgorithmParams base;
    base.speed_threshold_mps = 10.0;
    requests.push_back({name, base, grid});
  }
  const std::vector<std::vector<stcomp::SweepPoint>> sweeps =
      stcomp::SweepManyParallel(dataset, requests).value();
  for (size_t s = 0; s < names.size(); ++s) {
    const char* name = names[s];
    const std::vector<stcomp::SweepPoint>& sweep = sweeps[s];
    // Errors rise (mostly) with the threshold: take the best-compressing
    // point within budget.
    std::optional<stcomp::SweepPoint> best;
    for (const stcomp::SweepPoint& point : sweep) {
      if (point.sync_error_mean_m <= error_budget &&
          (!best.has_value() ||
           point.compression_percent > best->compression_percent)) {
        best = point;
      }
    }
    if (best.has_value()) {
      table.AddRow({name, stcomp::StrFormat("%.0f", best->epsilon_m),
                    stcomp::StrFormat("%.1f", best->compression_percent),
                    stcomp::StrFormat("%.2f", best->sync_error_mean_m)});
    } else {
      table.AddRow({name, "-", "-", "over budget everywhere"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "note how the spatiotemporal algorithms meet the budget at thresholds "
      "the spatial ones cannot use at all — the paper's Fig. 11 in decision "
      "form.\n");
  return 0;
}
