// Quickstart: build a trajectory, compress it with the paper's TD-TR and
// OPW-TR algorithms, and evaluate the error/compression trade-off.
//
//   ./examples/quickstart [--epsilon=30]

#include <cstdio>

#include "stcomp/algo/registry.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/common/flags.h"
#include "stcomp/error/evaluation.h"
#include "stcomp/sim/paper_dataset.h"

int main(int argc, char** argv) {
  double epsilon = 30.0;
  stcomp::FlagParser flags("stcomp quickstart");
  flags.AddDouble("epsilon", &epsilon, "distance threshold in metres");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // 1. Get a trajectory. Here: one synthetic GPS car trip (in your code:
  //    ReadCsvTrajectoryFile / ReadGpxFile / ReadPltFile).
  stcomp::PaperDatasetConfig config;
  config.num_trajectories = 1;
  const stcomp::Trajectory trip =
      stcomp::GeneratePaperDataset(config).front();
  std::printf("trajectory '%s': %zu points, %.1f km in %.0f s\n",
              trip.name().c_str(), trip.size(), trip.Length() / 1000.0,
              trip.Duration());

  // 2. Compress. Every algorithm returns the kept original indices.
  const stcomp::algo::IndexList tdtr = stcomp::algo::TdTr(trip, epsilon);
  const stcomp::algo::IndexList opwtr = stcomp::algo::OpwTr(trip, epsilon);

  // 3. Evaluate with the paper's time-synchronous error notion.
  for (const auto& [name, kept] :
       {std::pair{"td-tr", tdtr}, std::pair{"opw-tr", opwtr}}) {
    const stcomp::Evaluation eval = stcomp::Evaluate(trip, kept).value();
    std::printf(
        "%-7s kept %3zu/%3zu points  compression %5.1f%%  mean sync error "
        "%6.2f m  max %6.2f m\n",
        name, eval.kept_points, eval.original_points,
        eval.compression_percent, eval.sync_error_mean_m,
        eval.sync_error_max_m);
  }

  // 4. The compressed trajectory is itself a Trajectory: query it.
  const stcomp::Trajectory compressed = trip.Subset(tdtr);
  const double mid_time = trip.front().t + trip.Duration() / 2.0;
  const stcomp::Vec2 original = trip.PositionAt(mid_time).value();
  const stcomp::Vec2 approx = compressed.PositionAt(mid_time).value();
  std::printf(
      "position at mid-trip: original (%.1f, %.1f), compressed (%.1f, %.1f), "
      "offset %.2f m\n",
      original.x, original.y, approx.x, approx.y,
      stcomp::Distance(original, approx));
  return 0;
}
