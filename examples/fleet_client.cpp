// Fleet ingest simulator for the STNI network path (DESIGN.md §18): N
// device threads, each a net::FleetClient with a stable client id,
// batching fixes over real TCP into an ingest server.
//
// Two modes:
//
//   --connect=PORT   drive an already-running server (e.g.
//                    `streaming_gps_feed --ingest-port=0`) and report
//                    per-client ack/reconnect stats.
//
//   --loopback-demo  self-contained: boots an in-process IngestServer
//                    backed by a ShardedFleetCompressor, runs the same
//                    client fleet against it — optionally through seeded
//                    wire chaos (--chaos) — then proves the compressed
//                    output is bitwise identical to feeding the same
//                    fixes in-process (no network). Prints PASS/FAIL;
//                    this mode is the `example_fleet_client` ctest.
//
//   ./examples/fleet_client --loopback-demo [--clients=3] [--objects=2]
//                           [--fixes=120] [--batch=32] [--chaos]
//   ./examples/fleet_client --connect=PORT [--clients=3] ...

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/net/fleet_client.h"
#include "stcomp/net/ingest_server.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/sharded_fleet.h"
#include "stcomp/testing/fault_plan.h"

namespace {

// Deterministic per-object random walk (SplitMix64 steps); the loopback
// verification regenerates the same walk on the far side, so the doubles
// must come out bit-identical — which a fixed seed guarantees.
stcomp::Trajectory MakeWalk(int fixes, uint64_t seed) {
  auto next = [state = seed]() mutable {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  auto uniform = [&next] {
    return static_cast<double>(next() >> 11) * 0x1p-53;
  };
  std::vector<stcomp::TimedPoint> points;
  points.reserve(static_cast<size_t>(fixes));
  double x = 0.0, y = 0.0, t = 0.0;
  for (int i = 0; i < fixes; ++i) {
    points.push_back({t, x, y});
    t += 1.0 + 9.0 * uniform();
    x += 40.0 * (uniform() - 0.5);
    y += 40.0 * (uniform() - 0.5);
  }
  return stcomp::Trajectory::FromPoints(std::move(points)).value();
}

std::string ObjectId(int client, int object) {
  return stcomp::StrFormat("sim-%d-%d", client, object);
}

struct ClientReport {
  stcomp::Status status = stcomp::Status::Ok();
  uint64_t fixes = 0;
  uint64_t batches = 0;
  uint64_t reconnects = 0;
};

// One device thread: interleaves its objects' walks fix-by-fix through a
// FleetClient, then flushes and says goodbye.
ClientReport RunClient(uint16_t port, int client, int objects, int fixes,
                       int batch, uint64_t seed,
                       stcomp::testing::FaultPlan* chaos) {
  stcomp::net::FleetClientOptions options;
  options.port = port;
  options.client_id = stcomp::StrFormat("device-%d", client);
  options.batch_size = static_cast<size_t>(batch);
  options.max_reconnects = 500;
  if (chaos != nullptr) {
    options.fault_hook = [chaos](size_t write_size) {
      return chaos->NextWireFault(write_size);
    };
  }
  stcomp::net::FleetClient device(std::move(options));

  std::vector<stcomp::Trajectory> walks;
  for (int o = 0; o < objects; ++o) {
    walks.push_back(MakeWalk(
        fixes, seed + static_cast<uint64_t>(client * objects + o)));
  }
  ClientReport report;
  for (int i = 0; i < fixes && report.status.ok(); ++i) {
    for (int o = 0; o < objects; ++o) {
      report.status = device.Push(ObjectId(client, o), walks[o][i]);
      if (!report.status.ok()) {
        break;
      }
    }
  }
  if (report.status.ok()) {
    report.status = device.Bye();
  }
  report.fixes = device.fixes_pushed();
  report.batches = device.batches_acked();
  report.reconnects = device.reconnects();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  int connect_port = -1;
  bool loopback_demo = false;
  int clients = 3;
  int objects = 2;
  int fixes = 120;
  int batch = 32;
  bool chaos = false;
  int seed = 20260807;
  stcomp::FlagParser flags("fleet ingest client simulator");
  flags.AddInt("connect", &connect_port,
               "port of a running ingest server (-1 = off)");
  flags.AddBool("loopback-demo", &loopback_demo,
                "boot an in-process server and verify stored bytes");
  flags.AddInt("clients", &clients, "device threads");
  flags.AddInt("objects", &objects, "objects per device");
  flags.AddInt("fixes", &fixes, "fixes per object");
  flags.AddInt("batch", &batch, "fixes per wire batch");
  flags.AddBool("chaos", &chaos,
                "route every socket write through seeded wire faults");
  flags.AddInt("seed", &seed, "walk + chaos seed");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  if ((connect_port < 0) == !loopback_demo) {
    std::fprintf(stderr,
                 "pick exactly one of --connect=PORT or --loopback-demo\n");
    return 1;
  }

  // Loopback mode owns the whole pipeline: engine, server, fleet, proof.
  std::unique_ptr<stcomp::ShardedFleetCompressor> engine;
  std::unique_ptr<stcomp::net::IngestServer> server;
  uint16_t port = static_cast<uint16_t>(connect_port);
  if (loopback_demo) {
    stcomp::ShardedFleetOptions engine_options;
    engine_options.num_shards = 2;
    engine_options.instance = "fleet-client-demo";
    engine = std::make_unique<stcomp::ShardedFleetCompressor>(
        [] {
          return std::make_unique<stcomp::OpeningWindowStream>(
              25.0, stcomp::algo::BreakPolicy::kNormal,
              stcomp::StreamCriterion::kSynchronized);
        },
        engine_options);
    stcomp::net::IngestServerOptions server_options;
    server_options.instance = "fleet-client-demo";
    server = std::make_unique<stcomp::net::IngestServer>(
        [&engine](std::string_view id, const stcomp::TimedPoint& fix) {
          return engine->Push(id, fix);
        },
        server_options);
    if (const stcomp::Status started = server->Start(0); !started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
    std::printf("loopback ingest server on 127.0.0.1:%u (%s)\n", port,
                chaos ? "seeded wire chaos ON" : "clean wire");
  }

  std::vector<std::unique_ptr<stcomp::testing::FaultPlan>> plans(
      static_cast<size_t>(clients));
  if (chaos) {
    for (int c = 0; c < clients; ++c) {
      stcomp::testing::FaultPlanOptions plan_options;
      plans[static_cast<size_t>(c)] =
          std::make_unique<stcomp::testing::FaultPlan>(
              static_cast<uint64_t>(seed) * 1000 + static_cast<uint64_t>(c),
              plan_options);
    }
  }

  std::vector<ClientReport> reports(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      reports[static_cast<size_t>(c)] =
          RunClient(port, c, objects, fixes, batch,
                    static_cast<uint64_t>(seed),
                    plans[static_cast<size_t>(c)].get());
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  bool ok = true;
  for (int c = 0; c < clients; ++c) {
    const ClientReport& report = reports[static_cast<size_t>(c)];
    std::printf(
        "device-%d: %llu fixes, %llu batches acked, %llu reconnects  %s\n", c,
        static_cast<unsigned long long>(report.fixes),
        static_cast<unsigned long long>(report.batches),
        static_cast<unsigned long long>(report.reconnects),
        report.status.ok() ? "ok" : report.status.ToString().c_str());
    ok = ok && report.status.ok();
  }

  if (loopback_demo) {
    server->Stop();
    if (const stcomp::Status finished = engine->FinishAll(); !finished.ok()) {
      std::fprintf(stderr, "engine: %s\n", finished.ToString().c_str());
      ok = false;
    }
    // The proof: a reference engine fed the same fixes in-process (no
    // network, no chaos) must hold bitwise-identical compressed output.
    // Acked batches survive chaos; Bye() flushes the rest; the wire
    // carries raw doubles — so TCP must be invisible to compression.
    stcomp::ShardedFleetOptions reference_options;
    reference_options.num_shards = 2;
    reference_options.instance = "fleet-client-ref";
    stcomp::ShardedFleetCompressor reference(
        [] {
          return std::make_unique<stcomp::OpeningWindowStream>(
              25.0, stcomp::algo::BreakPolicy::kNormal,
              stcomp::StreamCriterion::kSynchronized);
        },
        reference_options);
    for (int c = 0; c < clients && ok; ++c) {
      for (int o = 0; o < objects && ok; ++o) {
        const stcomp::Trajectory walk = MakeWalk(
            fixes, static_cast<uint64_t>(seed) +
                       static_cast<uint64_t>(c * objects + o));
        for (const stcomp::TimedPoint& fix : walk.points()) {
          if (!reference.Push(ObjectId(c, o), fix).ok()) {
            ok = false;
            break;
          }
        }
      }
    }
    if (ok && !reference.FinishAll().ok()) {
      ok = false;
    }
    size_t verified = 0;
    for (int c = 0; c < clients && ok; ++c) {
      for (int o = 0; o < objects && ok; ++o) {
        const stcomp::Result<stcomp::Trajectory> want =
            reference.Get(ObjectId(c, o));
        const stcomp::Result<stcomp::Trajectory> got =
            engine->Get(ObjectId(c, o));
        if (!want.ok() || !got.ok() || got->size() != want->size()) {
          std::fprintf(stderr, "%s: wrong size or missing\n",
                       ObjectId(c, o).c_str());
          ok = false;
          break;
        }
        for (size_t i = 0; i < want->size(); ++i) {
          if ((*want)[i].t != (*got)[i].t ||
              (*want)[i].position.x != (*got)[i].position.x ||
              (*want)[i].position.y != (*got)[i].position.y) {
            std::fprintf(stderr, "%s: point %zu differs\n",
                         ObjectId(c, o).c_str(), i);
            ok = false;
            break;
          }
        }
        ++verified;
      }
    }
    std::printf("verified %zu objects bitwise against in-process ingest\n",
                verified);
    std::printf("server: %llu sessions, %llu fixes, %llu protocol errors\n",
                static_cast<unsigned long long>(server->sessions_accepted()),
                static_cast<unsigned long long>(server->fixes_in()),
                static_cast<unsigned long long>(server->protocol_errors()));
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
