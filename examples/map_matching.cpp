// Map matching + compression: clean a noisy GPS trace by snapping it onto
// the road network, then compress the snapped trace — the full
// "infrastructure-constrained" pipeline the paper's Sec. 2 alludes to.
//
//   ./examples/map_matching [--sigma=8] [--epsilon=30]

#include <cstdio>

#include "stcomp/algo/time_ratio.h"
#include "stcomp/common/flags.h"
#include "stcomp/error/evaluation.h"
#include "stcomp/sim/gps_noise.h"
#include "stcomp/sim/map_matching.h"
#include "stcomp/sim/road_network.h"
#include "stcomp/sim/trip_generator.h"

int main(int argc, char** argv) {
  double sigma = 8.0;
  double epsilon = 30.0;
  stcomp::FlagParser flags("map matching + compression demo");
  flags.AddDouble("sigma", &sigma, "GPS noise sigma in metres");
  flags.AddDouble("epsilon", &epsilon, "compression threshold in metres");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // Ground truth: a drive over the network; observation: the noisy fixes.
  stcomp::RoadNetworkConfig network_config;
  network_config.grid_width = 16;
  network_config.grid_height = 16;
  network_config.spacing_m = 400.0;
  const stcomp::RoadNetwork network =
      stcomp::RoadNetwork::Generate(network_config, 5);
  stcomp::Rng rng(99);
  stcomp::TripConfig trip_config;
  trip_config.target_length_m = 6000.0;
  const stcomp::Trajectory truth =
      stcomp::GenerateTrip(network, trip_config, -1, &rng).value();
  stcomp::GpsNoiseConfig noise;
  noise.sigma_m = sigma;
  const stcomp::Trajectory observed =
      stcomp::AddGpsNoise(truth, noise, &rng);

  // Match.
  stcomp::MapMatchConfig match_config;
  match_config.gps_sigma_m = sigma;
  const stcomp::MapMatchResult matched =
      stcomp::MatchToNetwork(network, observed, match_config).value();

  // How much of the noise did snapping remove?
  double observed_error = 0.0;
  double snapped_error = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    observed_error +=
        stcomp::Distance(observed[i].position, truth[i].position);
    snapped_error +=
        stcomp::Distance(matched.snapped[i].position, truth[i].position);
  }
  const double n = static_cast<double>(truth.size());
  std::printf(
      "trip: %zu fixes over %.1f km\n"
      "mean error vs ground truth: observed %.2f m -> snapped %.2f m "
      "(residual to roads: %.2f m)\n",
      truth.size(), truth.Length() / 1000.0, observed_error / n,
      snapped_error / n, matched.mean_residual_m);

  // Compress raw-noisy vs snapped: snapping removes noise wiggle, so the
  // same threshold compresses further at lower error vs ground truth.
  for (const auto& [label, source] :
       {std::pair{"observed", observed}, std::pair{"snapped", matched.snapped}}) {
    const stcomp::algo::IndexList kept = stcomp::algo::TdTr(source, epsilon);
    const stcomp::Evaluation eval = stcomp::Evaluate(source, kept).value();
    std::printf(
        "TD-TR on %-8s kept %3zu/%3zu (%.1f%% compression), mean sync error "
        "%5.2f m\n",
        label, eval.kept_points, eval.original_points,
        eval.compression_percent, eval.sync_error_mean_m);
  }
  return 0;
}
