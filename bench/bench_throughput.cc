// Microbenchmarks: throughput of every registered compression algorithm at
// several trace lengths, the streaming compressors (per-push cost), the
// synchronous-error evaluators, and the storage codecs.
//
// Besides the google-benchmark tables, the run persists the process metrics
// registry — populated by the instrumented registry/codec layers while the
// benchmarks execute — as machine-readable JSON (default
// BENCH_throughput.json, override with --metrics_json=PATH, disable with
// --metrics_json=). Schema: EXPERIMENTS.md "Bench JSON schema".

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>

#include "stcomp/algo/registry.h"
#include "stcomp/error/synchronous_error.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/sim/gps_noise.h"
#include "stcomp/sim/random.h"
#include "stcomp/store/codec.h"
#include "stcomp/stream/opening_window_stream.h"

namespace {

using stcomp::Rng;
using stcomp::TimedPoint;
using stcomp::Trajectory;

// Deterministic drive-like trace used by all benchmarks.
const Trajectory& Trace(int n) {
  static std::map<int, Trajectory>* const kCache = new std::map<int, Trajectory>;
  auto it = kCache->find(n);
  if (it != kCache->end()) {
    return it->second;
  }
  Rng rng(static_cast<uint64_t>(n) * 977 + 13);
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  double heading = 0.0;
  stcomp::Vec2 position{0.0, 0.0};
  for (int i = 0; i < n; ++i) {
    points.emplace_back(10.0 * i, position);
    heading += rng.NextUniform(-0.3, 0.3);
    const double speed = rng.NextBool(0.1) ? 0.0 : 5.0 + 15.0 * rng.NextDouble();
    position += {speed * 10.0 * std::cos(heading),
                 speed * 10.0 * std::sin(heading)};
  }
  return kCache->emplace(n, Trajectory::FromPoints(std::move(points)).value())
      .first->second;
}

void BM_Algorithm(benchmark::State& state, const std::string& name) {
  const Trajectory& trace = Trace(static_cast<int>(state.range(0)));
  const stcomp::algo::AlgorithmInfo* info =
      stcomp::algo::FindAlgorithm(name).value();
  stcomp::algo::AlgorithmParams params;
  params.epsilon_m = 50.0;
  params.speed_threshold_mps = 15.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(info->run(trace, params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}

void RegisterAlgorithmBenchmarks() {
  for (const stcomp::algo::AlgorithmInfo& info :
       stcomp::algo::AllAlgorithms()) {
    auto* bench = benchmark::RegisterBenchmark(
        ("BM_" + info.name).c_str(),
        [name = info.name](benchmark::State& state) {
          BM_Algorithm(state, name);
        });
    bench->Arg(200)->Arg(2000)->Arg(20000);
  }
}

void BM_StreamingOpwTr(benchmark::State& state) {
  const Trajectory& trace = Trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    stcomp::OpeningWindowStream stream(
        50.0, stcomp::algo::BreakPolicy::kNormal,
        stcomp::StreamCriterion::kSynchronized);
    std::vector<TimedPoint> out;
    for (const TimedPoint& point : trace.points()) {
      stream.Push(point, &out);
    }
    stream.Finish(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_StreamingOpwTr)->Arg(200)->Arg(2000)->Arg(20000);

void BM_SynchronousErrorClosedForm(benchmark::State& state) {
  const Trajectory& trace = Trace(static_cast<int>(state.range(0)));
  const stcomp::algo::AlgorithmInfo* info =
      stcomp::algo::FindAlgorithm("td-tr").value();
  stcomp::algo::AlgorithmParams params;
  params.epsilon_m = 50.0;
  const Trajectory approximation = trace.Subset(info->run(trace, params));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stcomp::SynchronousError(trace, approximation).value());
  }
}
BENCHMARK(BM_SynchronousErrorClosedForm)->Arg(200)->Arg(2000)->Arg(20000);

void BM_CodecDeltaEncode(benchmark::State& state) {
  const Trajectory& trace = Trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string buffer;
    stcomp::EncodePoints(trace, stcomp::Codec::kDelta, &buffer);
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(24 * trace.size()));
}
BENCHMARK(BM_CodecDeltaEncode)->Arg(2000)->Arg(20000);

void BM_GpsNoise(benchmark::State& state) {
  const Trajectory& trace = Trace(static_cast<int>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stcomp::AddGpsNoise(trace, stcomp::GpsNoiseConfig{}, &rng));
  }
}
BENCHMARK(BM_GpsNoise)->Arg(2000);

// Strips --metrics_json[=PATH] from argv (google-benchmark rejects flags it
// does not know) and returns the requested path, "" to disable.
std::string ExtractMetricsJsonPath(int* argc, char** argv) {
  std::string path = "BENCH_throughput.json";
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--metrics_json=", 15) == 0) {
      path = argv[i] + 15;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

int WriteBenchJson(const std::string& bench_name, const std::string& path) {
  const std::string json =
      "{\n  \"bench\": \"" + bench_name +
      "\",\n  \"schema_version\": 1,\n  \"metrics\": " +
      stcomp::obs::RenderJson(stcomp::obs::MetricsRegistry::Global().Snapshot()) +
      "}\n";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  file << json;
  std::fprintf(stderr, "metrics snapshot written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_json = ExtractMetricsJsonPath(&argc, argv);
  RegisterAlgorithmBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_json.empty()) {
    return WriteBenchJson("bench_throughput", metrics_json);
  }
  return 0;
}
