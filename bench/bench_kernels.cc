// Scalar-vs-vector kernel microbenchmark plus a whole-algorithm macro
// check (DESIGN.md §14). Each batched kernel runs over the same arrays
// under the scalar reference and under the dispatched vector backend
// (min-of-repetitions wall time), with the outputs compared bitwise — the
// bench doubles as a large-n differential check. The macro section pins
// each backend process-wide and reruns registry algorithms on the paper
// dataset, asserting identical kept lists.
//
//   ./bench_kernels [--points=200000] [--repetitions=5]
//                   [--json-out=BENCH_kernels.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "stcomp/algo/registry.h"
#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/geom/kernels.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/sim/random.h"

namespace {

using stcomp::Trajectory;
using stcomp::kernels::Backend;
using stcomp::kernels::KernelDispatch;
using stcomp::kernels::KernelOps;
using stcomp::kernels::LineSegment;
using stcomp::kernels::SedSegment;

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct KernelTiming {
  std::string name;
  double scalar_seconds = 0.0;
  double vector_seconds = 0.0;
  double Speedup() const { return scalar_seconds / vector_seconds; }
};

// Times `fn` (one full pass over the arrays) as the minimum of
// `repetitions` runs.
template <typename Fn>
double TimeMin(int repetitions, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, Seconds(start));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int points = 200000;
  int repetitions = 5;
  std::string json_out = "BENCH_kernels.json";
  stcomp::FlagParser flags("scalar vs vector kernel benchmark");
  flags.AddInt("points", &points, "array length per kernel call");
  flags.AddInt("repetitions", &repetitions, "timed repetitions (min wins)");
  flags.AddString("json-out", &json_out,
                  "machine-readable result path (empty disables)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  STCOMP_CHECK(points > 1 && repetitions > 0);
  const size_t n = static_cast<size_t>(points);

  const KernelOps& scalar = stcomp::kernels::ScalarKernels();
  const Backend best = stcomp::kernels::DetectBestBackend();
  const KernelOps& vec = *stcomp::kernels::KernelsFor(best);
  std::printf("kernels: %zu points, scalar vs %s (detected best backend)\n",
              n, vec.name);

  stcomp::Rng rng(2024);
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<double> t(n);
  double clock = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.NextUniform(-5000.0, 5000.0);
    y[i] = rng.NextUniform(-5000.0, 5000.0);
    clock += rng.NextUniform(0.1, 2.0);
    t[i] = clock;
  }
  const SedSegment sed_seg{x[0], y[0], t[0], x[n - 1], y[n - 1], t[n - 1]};
  const LineSegment line_seg{x[0], y[0], x[n - 1], y[n - 1]};
  std::vector<double> out_scalar(n);
  std::vector<double> out_vector(n);

  std::vector<KernelTiming> timings;
  const auto add = [&](std::string name, auto scalar_fn, auto vector_fn) {
    KernelTiming timing;
    timing.name = std::move(name);
    scalar_fn();  // Warm-up + reference output.
    out_scalar.swap(out_vector);
    vector_fn();
    STCOMP_CHECK(BitEqual(out_scalar, out_vector));  // Differential gate.
    timing.scalar_seconds = TimeMin(repetitions, scalar_fn);
    timing.vector_seconds = TimeMin(repetitions, vector_fn);
    timings.push_back(std::move(timing));
  };

  add(
      "sed_distances",
      [&] { scalar.sed_distances(x.data(), y.data(), t.data(), n, sed_seg,
                                 out_vector.data()); },
      [&] { vec.sed_distances(x.data(), y.data(), t.data(), n, sed_seg,
                              out_vector.data()); });
  add(
      "sed_max",
      [&] {
        const auto r = scalar.sed_max(x.data(), y.data(), t.data(), n,
                                      sed_seg);
        out_vector[0] = r.value;
        out_vector[1] = static_cast<double>(r.index);
      },
      [&] {
        const auto r = vec.sed_max(x.data(), y.data(), t.data(), n, sed_seg);
        out_vector[0] = r.value;
        out_vector[1] = static_cast<double>(r.index);
      });
  add(
      "sed_first_above",
      [&] {
        // Unreachable threshold: the scan covers the full array.
        out_vector[0] = static_cast<double>(scalar.sed_first_above(
            x.data(), y.data(), t.data(), n, sed_seg, 1e300));
      },
      [&] {
        out_vector[0] = static_cast<double>(vec.sed_first_above(
            x.data(), y.data(), t.data(), n, sed_seg, 1e300));
      });
  add(
      "perp_distances",
      [&] { scalar.perp_distances(x.data(), y.data(), n, line_seg,
                                  out_vector.data()); },
      [&] { vec.perp_distances(x.data(), y.data(), n, line_seg,
                               out_vector.data()); });
  add(
      "radial_distances",
      [&] { scalar.radial_distances(x.data(), y.data(), n, x[0], y[0],
                                    out_vector.data()); },
      [&] { vec.radial_distances(x.data(), y.data(), n, x[0], y[0],
                                 out_vector.data()); });

  std::printf("  %-18s %12s %12s %9s\n", "kernel", "scalar", vec.name,
              "speedup");
  for (const KernelTiming& timing : timings) {
    std::printf("  %-18s %9.3f ms %9.3f ms %8.2fx\n", timing.name.c_str(),
                1e3 * timing.scalar_seconds, 1e3 * timing.vector_seconds,
                timing.Speedup());
  }

  // Macro: registry algorithms on the paper dataset under each pinned
  // backend; kept lists must be identical.
  stcomp::PaperDatasetConfig config;
  const std::vector<Trajectory> dataset = stcomp::GeneratePaperDataset(config);
  stcomp::algo::AlgorithmParams params;
  params.epsilon_m = 30.0;
  params.speed_threshold_mps = 10.0;
  struct MacroTiming {
    std::string name;
    double scalar_seconds = 0.0;
    double vector_seconds = 0.0;
  };
  std::vector<MacroTiming> macros;
  for (const char* name : {"opw-tr", "td-tr", "opw-sp", "td-sp", "radial"}) {
    const stcomp::algo::AlgorithmInfo& info =
        *stcomp::algo::FindAlgorithm(name).value();
    stcomp::algo::Workspace workspace;
    stcomp::algo::IndexList kept;
    std::vector<stcomp::algo::IndexList> reference;
    MacroTiming macro;
    macro.name = name;
    for (const bool use_vector : {false, true}) {
      const Backend previous = KernelDispatch::SetForTest(
          use_vector ? best : Backend::kScalar);
      for (const Trajectory& trajectory : dataset) {  // Warm-up + equality.
        info.run_view(trajectory, params, workspace, kept);
        if (!use_vector) {
          reference.push_back(kept);
        } else {
          STCOMP_CHECK(kept == reference[&trajectory - dataset.data()]);
        }
      }
      const double seconds = TimeMin(repetitions, [&] {
        for (const Trajectory& trajectory : dataset) {
          info.run_view(trajectory, params, workspace, kept);
        }
      });
      (use_vector ? macro.vector_seconds : macro.scalar_seconds) = seconds;
      KernelDispatch::SetForTest(previous);
    }
    macros.push_back(std::move(macro));
  }
  std::printf("  macro (paper dataset, kept lists identical):\n");
  for (const MacroTiming& macro : macros) {
    std::printf("  %-18s %9.3f ms %9.3f ms %8.2fx\n", macro.name.c_str(),
                1e3 * macro.scalar_seconds, 1e3 * macro.vector_seconds,
                macro.scalar_seconds / macro.vector_seconds);
  }

  if (!json_out.empty()) {
    std::string entries;
    char line[256];
    for (const KernelTiming& timing : timings) {
      std::snprintf(line, sizeof(line),
                    "    {\"kernel\": \"%s\", \"scalar_seconds\": %.9f, "
                    "\"vector_seconds\": %.9f, \"speedup\": %.3f},\n",
                    timing.name.c_str(), timing.scalar_seconds,
                    timing.vector_seconds, timing.Speedup());
      entries += line;
    }
    for (const MacroTiming& macro : macros) {
      std::snprintf(line, sizeof(line),
                    "    {\"algorithm\": \"%s\", \"scalar_seconds\": %.9f, "
                    "\"vector_seconds\": %.9f, \"speedup\": %.3f},\n",
                    macro.name.c_str(), macro.scalar_seconds,
                    macro.vector_seconds,
                    macro.scalar_seconds / macro.vector_seconds);
      entries += line;
    }
    if (!entries.empty()) {
      entries.erase(entries.size() - 2, 1);  // Trailing comma.
    }
    char header[256];
    std::snprintf(header, sizeof(header),
                  "  \"points\": %zu,\n  \"repetitions\": %d,\n"
                  "  \"scalar_backend\": \"%s\",\n"
                  "  \"vector_backend\": \"%s\",\n",
                  n, repetitions, scalar.name, vec.name);
    const std::string json =
        "{\n  \"bench\": \"bench_kernels\",\n  \"schema_version\": 1,\n" +
        std::string(header) + "  \"kernels\": [\n" + entries + "  ],\n" +
        "  \"metrics\": " +
        stcomp::obs::RenderJson(
            stcomp::obs::MetricsRegistry::Global().Snapshot()) +
        "}\n";
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    file << json;
    std::printf("result written to %s\n", json_out.c_str());
  }
  return 0;
}
