// Sharded fleet ingest-scaling benchmark (DESIGN.md §16): aggregate
// fixes/sec pushed through ShardedFleetCompressor at 1, 2, 4, ... shards,
// on a uniform fleet and on a Zipf(s)-skewed one — the success metric of
// the shard-per-core refactor. The JSON lands in BENCH_fleet_scale.json
// (schema in EXPERIMENTS.md) with the two acceptance numbers pulled out:
// uniform_speedup_at_max (target: near-linear, >=3x at 4+ shards) and
// skew_ratio_at_max (skewed throughput within 2x of uniform).
//
// Feed construction is fully precomputed and deterministic: each object
// is a seeded random walk; the uniform fleet interleaves objects
// round-robin, the skewed fleet draws arrivals from a Zipf(s)
// distribution over object ranks. Producer threads (one per shard) own
// disjoint object subsets, so per-object fix order is preserved — the
// same contract the differential test locks in. The timed region is
// Push()...Flush(); FinishObject tails are excluded (they are O(objects),
// not per-fix work).
//
//   ./bench_fleet_scale [--objects=512] [--fixes-per-object=200]
//                       [--max-shards=0 (0 = min(cores, 8))]
//                       [--queue-capacity=8192] [--max-batch=256]
//                       [--epsilon=25] [--zipf-s=1.0] [--seed=42]
//                       [--json-out=BENCH_fleet_scale.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/sim/random.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/sharded_fleet.h"

namespace {

using stcomp::Rng;
using stcomp::ShardedFleetCompressor;
using stcomp::ShardedFleetOptions;
using stcomp::TimedPoint;

// (object index, fix) in global arrival order.
using Feed = std::vector<std::pair<uint32_t, TimedPoint>>;

// Per-object seeded random walks, drive-like steps.
std::vector<std::vector<TimedPoint>> BuildWalks(int objects,
                                                int fixes_per_object,
                                                uint64_t seed) {
  std::vector<std::vector<TimedPoint>> walks(
      static_cast<size_t>(objects));
  for (int i = 0; i < objects; ++i) {
    Rng rng(seed + static_cast<uint64_t>(i));
    std::vector<TimedPoint>& walk = walks[static_cast<size_t>(i)];
    walk.reserve(static_cast<size_t>(fixes_per_object));
    double t = 0.0;
    double x = 0.0;
    double y = 0.0;
    for (int k = 0; k < fixes_per_object; ++k) {
      walk.emplace_back(t, x, y);
      t += 1.0 + rng.NextDouble();
      x += 30.0 * (rng.NextDouble() - 0.3);
      y += 30.0 * (rng.NextDouble() - 0.5);
    }
  }
  return walks;
}

Feed UniformFeed(const std::vector<std::vector<TimedPoint>>& walks) {
  Feed feed;
  const size_t fixes = walks.empty() ? 0 : walks[0].size();
  feed.reserve(walks.size() * fixes);
  for (size_t k = 0; k < fixes; ++k) {
    for (size_t i = 0; i < walks.size(); ++i) {
      feed.emplace_back(static_cast<uint32_t>(i), walks[i][k]);
    }
  }
  return feed;
}

// Zipf(s) arrival order over object ranks: object i draws with weight
// 1/(i+1)^s. Exhausted objects pass their draws on, so the totals match
// the uniform feed exactly and only the interleaving (the skew) differs.
Feed ZipfFeed(const std::vector<std::vector<TimedPoint>>& walks, double s,
              uint64_t seed) {
  std::vector<double> cdf(walks.size());
  double total = 0.0;
  for (size_t i = 0; i < walks.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  Rng rng(seed);
  std::vector<size_t> next(walks.size(), 0);
  size_t remaining = 0;
  for (const auto& walk : walks) {
    remaining += walk.size();
  }
  Feed feed;
  feed.reserve(remaining);
  while (remaining > 0) {
    const double u = rng.NextDouble() * total;
    size_t pick = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (pick >= walks.size()) {
      pick = walks.size() - 1;
    }
    size_t scanned = 0;
    while (next[pick] >= walks[pick].size() && scanned < walks.size()) {
      pick = (pick + 1) % walks.size();
      ++scanned;
    }
    if (next[pick] >= walks[pick].size()) {
      break;
    }
    feed.emplace_back(static_cast<uint32_t>(pick), walks[pick][next[pick]++]);
    --remaining;
  }
  return feed;
}

struct RunResult {
  std::string fleet;
  size_t shards = 0;
  size_t producers = 0;
  size_t fixes = 0;
  double seconds = 0.0;
  double fixes_per_second = 0.0;
  double speedup_vs_1 = 0.0;
  uint64_t backpressure_waits = 0;
};

// One timed configuration: `shards` shards, one producer per shard, each
// producer owning objects with index % producers == its slot. Objects are
// pre-split per producer (ids prebuilt too) so the timed loop is pure
// Push traffic.
RunResult TimeRun(const std::string& fleet_name, const Feed& feed,
                  size_t shards, double epsilon, size_t queue_capacity,
                  size_t max_batch) {
  ShardedFleetOptions options;
  options.num_shards = shards;
  options.queue_capacity = queue_capacity;
  options.max_batch = max_batch;
  options.instance =
      stcomp::StrFormat("bench-%s-%zu", fleet_name.c_str(), shards);
  ShardedFleetCompressor engine(
      [epsilon] {
        return std::make_unique<stcomp::OpeningWindowStream>(
            epsilon, stcomp::algo::BreakPolicy::kNormal,
            stcomp::StreamCriterion::kSynchronized);
      },
      options);

  const size_t producers = shards;
  std::vector<Feed> per_producer(producers);
  std::vector<std::vector<std::string>> ids(producers);
  for (size_t p = 0; p < producers; ++p) {
    per_producer[p].reserve(feed.size() / producers + 1);
  }
  uint32_t max_object = 0;
  for (const auto& [object, fix] : feed) {
    max_object = std::max(max_object, object);
    per_producer[object % producers].emplace_back(object, fix);
  }
  for (size_t p = 0; p < producers; ++p) {
    ids[p].resize(static_cast<size_t>(max_object) + 1);
    for (const auto& [object, fix] : per_producer[p]) {
      if (ids[p][object].empty()) {
        ids[p][object] = "veh-" + std::to_string(object);
      }
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&engine, &per_producer, &ids, p] {
      for (const auto& [object, fix] : per_producer[p]) {
        STCOMP_CHECK_OK(engine.Push(ids[p][object], fix));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  STCOMP_CHECK_OK(engine.Flush());
  const auto end = std::chrono::steady_clock::now();
  STCOMP_CHECK_OK(engine.FinishAll());
  STCOMP_CHECK(engine.fixes_in() == feed.size());

  RunResult result;
  result.fleet = fleet_name;
  result.shards = shards;
  result.producers = producers;
  result.fixes = feed.size();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.fixes_per_second =
      result.seconds > 0.0
          ? static_cast<double>(result.fixes) / result.seconds
          : 0.0;
  for (const auto& shard : engine.StatsSnapshot()) {
    result.backpressure_waits += shard.backpressure_waits;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int objects = 512;
  int fixes_per_object = 200;
  int max_shards = 0;
  int queue_capacity = 8192;
  int max_batch = 256;
  double epsilon = 25.0;
  double zipf_s = 1.0;
  int seed = 42;
  std::string json_out = "BENCH_fleet_scale.json";
  stcomp::FlagParser flags("Sharded fleet ingest scaling (fixes/sec)");
  flags.AddInt("objects", &objects, "objects in the fleet");
  flags.AddInt("fixes-per-object", &fixes_per_object, "fixes per object");
  flags.AddInt("max-shards", &max_shards,
               "largest shard count timed (0 = min(cores, 8))");
  flags.AddInt("queue-capacity", &queue_capacity,
               "per-shard ingest queue capacity");
  flags.AddInt("max-batch", &max_batch, "worker batch-handoff size");
  flags.AddDouble("epsilon", &epsilon,
                  "opening-window tolerance in metres (per-fix work)");
  flags.AddDouble("zipf-s", &zipf_s, "skew exponent of the skewed fleet");
  flags.AddInt("seed", &seed, "feed generation seed");
  flags.AddString("json-out", &json_out,
                  "machine-readable result path (empty disables)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  STCOMP_CHECK(objects > 0 && fixes_per_object > 0 && queue_capacity > 0 &&
               max_batch > 0);

  const unsigned cores = std::thread::hardware_concurrency();
  size_t top = static_cast<size_t>(max_shards);
  if (top == 0) {
    top = std::min<size_t>(cores > 0 ? cores : 1, 8);
  }
  std::vector<size_t> shard_counts;
  for (size_t n = 1; n < top; n *= 2) {
    shard_counts.push_back(n);
  }
  shard_counts.push_back(top);

  const auto walks =
      BuildWalks(objects, fixes_per_object, static_cast<uint64_t>(seed));
  const Feed uniform = UniformFeed(walks);
  const Feed skewed =
      ZipfFeed(walks, zipf_s, static_cast<uint64_t>(seed) + 1);
  STCOMP_CHECK(uniform.size() == skewed.size());
  std::printf("fleet: %d objects x %d fixes = %zu fixes, %u cores, "
              "epsilon=%.1f, zipf-s=%.2f\n",
              objects, fixes_per_object, uniform.size(), cores, epsilon,
              zipf_s);

  std::vector<RunResult> runs;
  double uniform_base = 0.0;
  double skewed_base = 0.0;
  for (const size_t shards : shard_counts) {
    for (const bool is_skewed : {false, true}) {
      RunResult run = TimeRun(is_skewed ? "zipf" : "uniform",
                              is_skewed ? skewed : uniform, shards, epsilon,
                              static_cast<size_t>(queue_capacity),
                              static_cast<size_t>(max_batch));
      double& base = is_skewed ? skewed_base : uniform_base;
      if (shards == 1) {
        base = run.fixes_per_second;
      }
      run.speedup_vs_1 =
          base > 0.0 ? run.fixes_per_second / base : 0.0;
      std::printf(
          "  %-7s %2zu shards: %10.0f fixes/s  (%5.2fx vs 1 shard, "
          "%llu backpressure waits)\n",
          run.fleet.c_str(), run.shards, run.fixes_per_second,
          run.speedup_vs_1,
          static_cast<unsigned long long>(run.backpressure_waits));
      runs.push_back(std::move(run));
    }
  }

  double uniform_at_max = 0.0;
  double skewed_at_max = 0.0;
  double uniform_speedup_at_max = 0.0;
  for (const RunResult& run : runs) {
    if (run.shards != top) {
      continue;
    }
    if (run.fleet == "uniform") {
      uniform_at_max = run.fixes_per_second;
      uniform_speedup_at_max = run.speedup_vs_1;
    } else {
      skewed_at_max = run.fixes_per_second;
    }
  }
  const double skew_ratio_at_max =
      skewed_at_max > 0.0 ? uniform_at_max / skewed_at_max : 0.0;
  std::printf("uniform speedup at %zu shards: %.2fx; uniform/skewed "
              "throughput ratio: %.2fx (budget: 2x)\n",
              top, uniform_speedup_at_max, skew_ratio_at_max);

  if (!json_out.empty()) {
    std::string runs_json = "[";
    for (size_t i = 0; i < runs.size(); ++i) {
      const RunResult& run = runs[i];
      runs_json += stcomp::StrFormat(
          "%s\n    {\"fleet\": \"%s\", \"shards\": %zu, \"producers\": %zu, "
          "\"fixes\": %zu, \"seconds\": %.6f, \"fixes_per_second\": %.0f, "
          "\"speedup_vs_1\": %.4f, \"backpressure_waits\": %llu}",
          i == 0 ? "" : ",", run.fleet.c_str(), run.shards, run.producers,
          run.fixes, run.seconds, run.fixes_per_second, run.speedup_vs_1,
          static_cast<unsigned long long>(run.backpressure_waits));
    }
    runs_json += "\n  ]";
    const std::string json = stcomp::StrFormat(
        "{\n  \"bench\": \"bench_fleet_scale\",\n  \"schema_version\": 1,\n"
        "  \"objects\": %d,\n  \"fixes_per_object\": %d,\n"
        "  \"hardware_threads\": %u,\n  \"max_shards\": %zu,\n"
        "  \"queue_capacity\": %d,\n  \"max_batch\": %d,\n"
        "  \"epsilon_m\": %.3f,\n  \"zipf_s\": %.3f,\n  \"seed\": %d,\n"
        "  \"uniform_speedup_at_max\": %.4f,\n"
        "  \"skew_ratio_at_max\": %.4f,\n"
        "  \"runs\": %s,\n  \"metrics\": %s}\n",
        objects, fixes_per_object, cores, top, queue_capacity, max_batch,
        epsilon, zipf_s, seed, uniform_speedup_at_max, skew_ratio_at_max,
        runs_json.c_str(),
        stcomp::obs::RenderJson(
            stcomp::obs::MetricsRegistry::Global().Snapshot())
            .c_str());
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    file << json;
    std::printf("result written to %s\n", json_out.c_str());
  }
  return 0;
}
