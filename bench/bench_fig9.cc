// Reproduces paper Figure 9. See DESIGN.md Sec. 6 for the experiment
// index and EXPERIMENTS.md for the paper-vs-measured shape discussion.

#include <cstdio>
#include <cstdlib>

#include "stcomp/exp/figures.h"
#include "stcomp/sim/paper_dataset.h"

int main() {
  stcomp::PaperDatasetConfig config;
  const std::vector<stcomp::Trajectory> dataset =
      stcomp::GeneratePaperDataset(config);
  const stcomp::Result<std::string> rendered =
      stcomp::RenderFigure9(dataset);
  if (!rendered.ok()) {
    std::fprintf(stderr, "figure 9 failed: %s\n",
                 rendered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", rendered->c_str());
  return 0;
}
