// Measures what the obs layer costs on the ingestion hot path — the
// guard-rail for "instrumentation must stay under 5% of the work it
// observes".
//
// Two per-push timings over the same interleaved fleet workload:
//   instrumented — the real FleetCompressor (sampled push timer, fixes
//                  counters, gauges, finish spans, store/codec metrics);
//   baseline     — a replica of the pre-obs FleetCompressor drain loop with
//                  no fleet-layer instrumentation. Store/codec counters
//                  fire in both paths, so the reported overhead isolates
//                  the fleet-layer obs cost; primitive costs below bound
//                  the rest (a store append adds one exact counter + a
//                  sampled timer).
//
// Building with -DSTCOMP_DISABLE_METRICS=ON compiles the macros out of the
// same binary; comparing the emitted JSON across the two builds gives the
// exact enabled-vs-compiled-out delta (scripts/check.sh's third pass builds
// that configuration).
//
// The instrumented side now includes the PR-7 span-context and
// flight-recorder hot path: every FleetCompressor::Push opens a
// head-sampled root span, and flight events fire at pipeline transitions
// (object arrival, each committed batch), so the reported overhead covers
// tracing + flight recording, not just metrics. Primitive timings break
// the budget down further: a flight-recorder Record, an inactive sampled
// span (the 63-in-64 case) and an active one.
//
//   ./bench_obs_overhead [--objects=16] [--fixes=2000] [--repetitions=7]
//                        [--json-out=BENCH_obs.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/common/status.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/timer.h"
#include "stcomp/obs/trace.h"
#include "stcomp/sim/random.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"

namespace {

using stcomp::OnlineCompressor;
using stcomp::Rng;
using stcomp::Status;
using stcomp::TimedPoint;
using stcomp::Trajectory;
using stcomp::TrajectoryStore;

// Keeps a value alive past the optimiser without google-benchmark.
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

Trajectory DriveTrace(int n, uint64_t seed) {
  Rng rng(seed * 977 + 13);
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  double heading = 0.0;
  stcomp::Vec2 position{0.0, 0.0};
  for (int i = 0; i < n; ++i) {
    points.emplace_back(10.0 * i, position);
    heading += rng.NextUniform(-0.3, 0.3);
    const double speed =
        rng.NextBool(0.1) ? 0.0 : 5.0 + 15.0 * rng.NextDouble();
    position += {speed * 10.0 * std::cos(heading),
                 speed * 10.0 * std::sin(heading)};
  }
  return Trajectory::FromPoints(std::move(points)).value();
}

std::unique_ptr<OnlineCompressor> MakeOpwTr() {
  return std::make_unique<stcomp::OpeningWindowStream>(
      50.0, stcomp::algo::BreakPolicy::kNormal,
      stcomp::StreamCriterion::kSynchronized);
}

// The pre-obs FleetCompressor, kept verbatim as the uninstrumented control.
class BaselineFleet {
 public:
  explicit BaselineFleet(TrajectoryStore* store) : store_(store) {}

  Status Push(const std::string& object_id, const TimedPoint& fix) {
    auto it = compressors_.find(object_id);
    if (it == compressors_.end()) {
      it = compressors_.emplace(object_id, MakeOpwTr()).first;
    }
    ++fixes_in_;
    std::vector<TimedPoint> committed;
    STCOMP_RETURN_IF_ERROR(it->second->Push(fix, &committed));
    return Drain(object_id, &committed);
  }

  Status FinishAll() {
    while (!compressors_.empty()) {
      const std::string id = compressors_.begin()->first;
      std::vector<TimedPoint> committed;
      compressors_.begin()->second->Finish(&committed);
      STCOMP_RETURN_IF_ERROR(Drain(id, &committed));
      compressors_.erase(compressors_.begin());
    }
    return Status::Ok();
  }

  size_t fixes_out() const { return fixes_out_; }

 private:
  Status Drain(const std::string& object_id,
               std::vector<TimedPoint>* committed) {
    for (const TimedPoint& point : *committed) {
      STCOMP_RETURN_IF_ERROR(store_->Append(object_id, point));
      ++fixes_out_;
    }
    committed->clear();
    return Status::Ok();
  }

  TrajectoryStore* store_;
  std::map<std::string, std::unique_ptr<OnlineCompressor>> compressors_;
  size_t fixes_in_ = 0;
  size_t fixes_out_ = 0;
};

struct Workload {
  std::vector<std::string> ids;
  std::vector<Trajectory> traces;
  size_t fixes_per_object = 0;
  size_t total_pushes() const { return ids.size() * fixes_per_object; }
};

Workload MakeWorkload(int objects, int fixes) {
  Workload workload;
  workload.fixes_per_object = static_cast<size_t>(fixes);
  for (int i = 0; i < objects; ++i) {
    workload.ids.push_back("veh-" + std::to_string(i));
    workload.traces.push_back(DriveTrace(fixes, 1000 + i));
  }
  return workload;
}

// Runs `push(id, fix)` over the interleaved workload and returns ns/push.
template <typename PushFn, typename FinishFn>
double TimeRun(const Workload& workload, PushFn push, FinishFn finish) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t step = 0; step < workload.fixes_per_object; ++step) {
    for (size_t object = 0; object < workload.ids.size(); ++object) {
      STCOMP_CHECK_OK(push(workload.ids[object], workload.traces[object][step]));
    }
  }
  finish();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(workload.total_pushes());
}

double OneInstrumentedRun(const Workload& workload, int rep) {
  TrajectoryStore store;
  stcomp::FleetCompressor fleet([] { return MakeOpwTr(); }, &store,
                                "obs-overhead-" + std::to_string(rep));
  return TimeRun(
      workload,
      [&fleet](const std::string& id, const TimedPoint& fix) {
        return fleet.Push(id, fix);
      },
      [&fleet] { STCOMP_CHECK_OK(fleet.FinishAll()); });
}

double OneBaselineRun(const Workload& workload) {
  TrajectoryStore store;
  BaselineFleet fleet(&store);
  const double ns = TimeRun(
      workload,
      [&fleet](const std::string& id, const TimedPoint& fix) {
        return fleet.Push(id, fix);
      },
      [&fleet] { STCOMP_CHECK_OK(fleet.FinishAll()); });
  DoNotOptimize(fleet.fixes_out());
  return ns;
}

struct OverheadResult {
  double baseline_ns = 0.0;      // min over repetitions
  double instrumented_ns = 0.0;  // min over repetitions
  double overhead_percent = 0.0; // median of per-pair overheads
};

// Runs baseline/instrumented as adjacent pairs (alternating which goes
// first) so clock-frequency drift hits both sides of a pair about equally,
// then reports the *median of per-pair overheads* — far more drift-robust
// than comparing two independently-taken minima. The ns numbers reported
// alongside are the per-side minima. Each repetition runs on fresh fleet +
// store state.
OverheadResult MeasureOverhead(const Workload& workload, int repetitions) {
  std::vector<double> baseline;
  std::vector<double> instrumented;
  std::vector<double> pair_overheads;
  for (int rep = 0; rep < repetitions; ++rep) {
    double base_ns = 0.0;
    double instr_ns = 0.0;
    if (rep % 2 == 0) {
      base_ns = OneBaselineRun(workload);
      instr_ns = OneInstrumentedRun(workload, rep);
    } else {
      instr_ns = OneInstrumentedRun(workload, rep);
      base_ns = OneBaselineRun(workload);
    }
    baseline.push_back(base_ns);
    instrumented.push_back(instr_ns);
    pair_overheads.push_back((instr_ns - base_ns) / base_ns * 100.0);
  }
  std::sort(pair_overheads.begin(), pair_overheads.end());
  return {*std::min_element(baseline.begin(), baseline.end()),
          *std::min_element(instrumented.begin(), instrumented.end()),
          pair_overheads[pair_overheads.size() / 2]};
}

// ns per operation of one obs primitive, measured over `iterations` calls.
template <typename Op>
double TimePrimitive(size_t iterations, Op op) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iterations; ++i) {
    op(i);
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  int objects = 16;
  int fixes = 2000;
  int repetitions = 7;
  std::string json_out = "BENCH_obs.json";
  stcomp::FlagParser flags(
      "obs-layer overhead on the fleet ingestion hot path");
  flags.AddInt("objects", &objects, "concurrently streaming objects");
  flags.AddInt("fixes", &fixes, "fixes per object");
  flags.AddInt("repetitions", &repetitions, "timed repetitions (median wins)");
  flags.AddString("json-out", &json_out,
                  "machine-readable result path (empty disables)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  STCOMP_CHECK(objects > 0 && fixes > 1 && repetitions > 0);

  const Workload workload = MakeWorkload(objects, fixes);
  std::printf("workload: %d objects x %d fixes, %d repetitions, metrics %s\n",
              objects, fixes, repetitions,
              STCOMP_METRICS_ENABLED ? "ENABLED" : "COMPILED OUT");

  // Warm-up pass (not timed): page in code and data, settle the clock.
  OneBaselineRun(workload);
  OneInstrumentedRun(workload, -1);
  const OverheadResult result = MeasureOverhead(workload, repetitions);
  const double baseline_ns = result.baseline_ns;
  const double instrumented_ns = result.instrumented_ns;
  const double overhead_percent = result.overhead_percent;

  std::printf("  baseline      %8.1f ns/push\n", baseline_ns);
  std::printf("  instrumented  %8.1f ns/push\n", instrumented_ns);
  std::printf("  overhead      %+7.2f %%  (budget: 5%%)  -> %s\n",
              overhead_percent, overhead_percent <= 5.0 ? "PASS" : "WARN");

  // Primitive costs: what one unit of each obs building block costs.
  auto& registry = stcomp::obs::MetricsRegistry::Global();
  auto* counter = registry.GetCounter("bench_obs_primitive_counter_total");
  auto* histogram = registry.GetHistogram(
      "bench_obs_primitive_seconds", {}, stcomp::obs::LatencyBucketsSeconds());
  stcomp::obs::TraceBuffer trace_buffer(256);
  constexpr size_t kIterations = 1 << 20;
  const double counter_ns =
      TimePrimitive(kIterations, [&](size_t) { counter->Increment(); });
  const double observe_ns = TimePrimitive(kIterations, [&](size_t i) {
    histogram->Observe(1e-7 * static_cast<double>(i % 1024));
  });
  const double scoped_timer_ns = TimePrimitive(kIterations, [&](size_t) {
    stcomp::obs::ScopedTimer timer(histogram);
    DoNotOptimize(timer);
  });
  const double sampled_timer_ns = TimePrimitive(kIterations, [&](size_t) {
    stcomp::obs::SampledScopedTimer timer(histogram);
    DoNotOptimize(timer);
  });
  const double trace_span_ns = TimePrimitive(kIterations / 16, [&](size_t) {
    stcomp::obs::TraceSpan span("bench.primitive", {}, &trace_buffer);
  });
  // PR-7 hot-path primitives: a lock-free flight-recorder Record, and the
  // two faces of a head-sampled root span — the common not-sampled branch
  // (a thread-local counter bump, no allocation) and the sampled one.
  stcomp::obs::FlightRecorder flight(4096, 8);
  const double flight_record_ns = TimePrimitive(kIterations, [&](size_t i) {
    flight.Record(stcomp::obs::FlightCode::kProbe, "bench-object-id", i, 0);
  });
  const uint64_t saved_period =
      stcomp::obs::TraceBuffer::SetSampledRootPeriod(uint64_t{1} << 40);
  const double span_inactive_ns = TimePrimitive(kIterations, [&](size_t) {
    stcomp::obs::TraceSpan span("bench.sampled", "obj", &trace_buffer,
                                /*sampled_root=*/true);
    DoNotOptimize(span);
  });
  stcomp::obs::TraceBuffer::SetSampledRootPeriod(1);
  const double span_active_ns = TimePrimitive(kIterations / 16, [&](size_t) {
    stcomp::obs::TraceSpan span("bench.sampled", "obj", &trace_buffer,
                                /*sampled_root=*/true);
    DoNotOptimize(span);
  });
  stcomp::obs::TraceBuffer::SetSampledRootPeriod(saved_period);
  std::printf("primitives (ns/op):\n");
  std::printf("  counter increment      %7.2f\n", counter_ns);
  std::printf("  histogram observe      %7.2f\n", observe_ns);
  std::printf("  scoped timer           %7.2f\n", scoped_timer_ns);
  std::printf("  sampled scoped timer   %7.2f (1/%llu sampling)\n",
              sampled_timer_ns,
              static_cast<unsigned long long>(
                  stcomp::obs::SampledScopedTimer::kSamplePeriod));
  std::printf("  trace span             %7.2f\n", trace_span_ns);
  std::printf("  flight record          %7.2f (%llu dropped)\n",
              flight_record_ns,
              static_cast<unsigned long long>(flight.dropped()));
  std::printf("  sampled span, skipped  %7.2f\n", span_inactive_ns);
  std::printf("  sampled span, recorded %7.2f\n", span_active_ns);

  if (!json_out.empty()) {
    char numbers[768];
    std::snprintf(
        numbers, sizeof(numbers),
        "  \"metrics_enabled\": %s,\n  \"objects\": %d,\n"
        "  \"fixes_per_object\": %d,\n  \"repetitions\": %d,\n"
        "  \"baseline_ns_per_push\": %.2f,\n"
        "  \"instrumented_ns_per_push\": %.2f,\n"
        "  \"overhead_percent\": %.3f,\n"
        "  \"overhead_budget_percent\": 5.0,\n"
        "  \"primitives_ns\": {\"counter_increment\": %.3f, "
        "\"histogram_observe\": %.3f, \"scoped_timer\": %.3f, "
        "\"sampled_scoped_timer\": %.3f, \"trace_span\": %.3f, "
        "\"flight_record\": %.3f, \"sampled_span_skipped\": %.3f, "
        "\"sampled_span_recorded\": %.3f},\n",
        STCOMP_METRICS_ENABLED ? "true" : "false", objects, fixes,
        repetitions, baseline_ns, instrumented_ns, overhead_percent,
        counter_ns, observe_ns, scoped_timer_ns, sampled_timer_ns,
        trace_span_ns, flight_record_ns, span_inactive_ns, span_active_ns);
    const std::string json =
        "{\n  \"bench\": \"bench_obs_overhead\",\n  \"schema_version\": 2,\n" +
        std::string(numbers) + "  \"metrics\": " +
        stcomp::obs::RenderJson(registry.Snapshot()) + "}\n";
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    file << json;
    std::printf("result written to %s\n", json_out.c_str());
  }
  return 0;
}
