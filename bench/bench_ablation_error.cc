// Ablation: the closed-form synchronous error (paper Sec. 4.2 case
// analysis) vs adaptive Simpson quadrature — agreement and speedup.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "stcomp/algo/time_ratio.h"
#include "stcomp/error/synchronous_error.h"
#include "stcomp/common/strings.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/paper_dataset.h"

int main() {
  stcomp::PaperDatasetConfig config;
  const std::vector<stcomp::Trajectory> dataset =
      stcomp::GeneratePaperDataset(config);
  std::printf(
      "Ablation: closed-form synchronous error vs adaptive Simpson "
      "(tolerance 1e-9)\n\n");
  stcomp::Table table({"trace", "points", "closed_form_m", "numeric_m",
                       "rel_diff", "closed_us", "numeric_us", "speedup"});
  for (const stcomp::Trajectory& trajectory : dataset) {
    const stcomp::Trajectory approximation =
        trajectory.Subset(stcomp::algo::TdTr(trajectory, 50.0));
    double closed = 0.0;
    double numeric = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < 50; ++r) {
      closed = stcomp::SynchronousError(trajectory, approximation).value();
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < 5; ++r) {
      numeric =
          stcomp::SynchronousErrorNumeric(trajectory, approximation, 1e-9)
              .value();
    }
    const auto t2 = std::chrono::steady_clock::now();
    const double closed_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / 50;
    const double numeric_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / 5;
    table.AddRow(
        {trajectory.name(), stcomp::StrFormat("%zu", trajectory.size()),
         stcomp::StrFormat("%.6f", closed),
         stcomp::StrFormat("%.6f", numeric),
         stcomp::StrFormat("%.2e",
                           std::abs(closed - numeric) / (numeric + 1e-300)),
         stcomp::StrFormat("%.1f", closed_us),
         stcomp::StrFormat("%.1f", numeric_us),
         stcomp::StrFormat("%.0fx", numeric_us / closed_us)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
