// Ablation: linear vs cubic (Catmull-Rom) reconstruction in the error
// notion — the paper's future-work question "other, more advanced,
// interpolation techniques and consequently other error notions" made
// measurable. For each trace and threshold, compare the standard
// synchronous error with the cubic-reconstruction variant.

#include <cstdio>

#include "stcomp/algo/time_ratio.h"
#include "stcomp/common/strings.h"
#include "stcomp/error/cubic_error.h"
#include "stcomp/error/synchronous_error.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/paper_dataset.h"

int main() {
  stcomp::PaperDatasetConfig config;
  const std::vector<stcomp::Trajectory> dataset =
      stcomp::GeneratePaperDataset(config);
  std::printf(
      "Ablation: synchronous error under linear vs cubic reconstruction of "
      "the original trace\n(TD-TR approximations; averages over %zu "
      "traces)\n\n",
      dataset.size());
  stcomp::Table table({"threshold_m", "linear_error_m", "cubic_error_m",
                       "cubic/linear"});
  for (double epsilon : {30.0, 50.0, 70.0, 100.0}) {
    double linear_sum = 0.0;
    double cubic_sum = 0.0;
    for (const stcomp::Trajectory& trajectory : dataset) {
      const stcomp::Trajectory approximation =
          trajectory.Subset(stcomp::algo::TdTr(trajectory, epsilon));
      linear_sum +=
          stcomp::SynchronousError(trajectory, approximation).value();
      cubic_sum +=
          stcomp::CubicSynchronousError(trajectory, approximation, 1e-6)
              .value();
    }
    const double n = static_cast<double>(dataset.size());
    table.AddRow({stcomp::StrFormat("%.0f", epsilon),
                  stcomp::StrFormat("%.3f", linear_sum / n),
                  stcomp::StrFormat("%.3f", cubic_sum / n),
                  stcomp::StrFormat("%.3f", cubic_sum / linear_sum)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The cubic notion is slightly larger: the spline reconstructs the "
      "rounded corners the 10 s sampling cut off, which the piecewise-"
      "linear approximation cannot follow. The ranking of algorithms is "
      "unchanged — the paper's conclusions are robust to the "
      "interpolation model.\n");
  return 0;
}
