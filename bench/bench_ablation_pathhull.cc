// Ablation: naive O(n^2)-worst-case Douglas-Peucker vs the Hershberger-
// Snoeyink path-hull variant. Outputs are asserted identical on every run
// (simple chains; see path_hull.h).
//
// Two workloads:
//  - "drive": a smooth x-monotone drive-like trace. Splits are balanced,
//    so the naive scan is already near-linear and the two are comparable.
//  - "sawtooth": alternating deviations with slowly growing amplitude.
//    Every split peels one point off the right end, so the naive scan
//    degenerates to O(n^2) while the path hull stays near-linear — the
//    asymmetric regime the 1992 speedup targets.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/path_hull.h"
#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/random.h"

namespace {

using stcomp::Rng;
using stcomp::TimedPoint;
using stcomp::Trajectory;

// A long correlated walk (smooth heading drift) kept x-monotone, i.e.
// simple, so both implementations are guaranteed identical.
Trajectory DriveTrace(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  double heading = 0.0;
  stcomp::Vec2 position{0.0, 0.0};
  for (int i = 0; i < n; ++i) {
    points.emplace_back(10.0 * i, position);
    heading = std::clamp(heading + rng.NextUniform(-0.25, 0.25), -1.0, 1.0);
    const double speed = 8.0 + 8.0 * rng.NextDouble();
    position += {speed * 10.0 * std::cos(heading),
                 speed * 10.0 * std::sin(heading)};
  }
  return Trajectory::FromPoints(std::move(points)).value();
}

// Alternating +-amplitude with a slow linear ramp: the farthest point of
// every range sits next to the range's right end, so naive DP peels one
// point per O(range) rescan. The tiny jitter keeps points in generic
// position; the near-collinear crests keep the hulls a handful of vertices.
Trajectory SawtoothTrace(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double amplitude = 100.0 + 0.01 * i + 1e-4 * rng.NextDouble();
    const double y = (i % 2 == 0 ? 1.0 : -1.0) * amplitude;
    points.emplace_back(10.0 * i, 20.0 * i, y);
  }
  return Trajectory::FromPoints(std::move(points)).value();
}

template <typename F>
double TimeMs(const F& run, int repetitions) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repetitions; ++r) {
    run();
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         repetitions;
}

void RunWorkload(const char* name, Trajectory (*make)(int, uint64_t),
                 double epsilon, const std::vector<int>& sizes) {
  std::printf("workload: %s (epsilon = %.0f m)\n", name, epsilon);
  stcomp::Table table(
      {"points", "naive_ms", "hull_ms", "speedup", "kept_points"});
  for (int n : sizes) {
    const Trajectory trace = make(n, 42 + static_cast<uint64_t>(n));
    std::vector<int> naive_kept;
    std::vector<int> hull_kept;
    const int repetitions = n <= 2000 ? 5 : 2;
    const double naive_ms = TimeMs(
        [&] { naive_kept = stcomp::algo::DouglasPeucker(trace, epsilon); },
        repetitions);
    const double hull_ms = TimeMs(
        [&] {
          hull_kept = stcomp::algo::DouglasPeuckerHull(trace, epsilon);
        },
        repetitions);
    STCOMP_CHECK(naive_kept == hull_kept);
    table.AddRow({stcomp::StrFormat("%d", n),
                  stcomp::StrFormat("%.2f", naive_ms),
                  stcomp::StrFormat("%.2f", hull_ms),
                  stcomp::StrFormat("%.2fx", naive_ms / hull_ms),
                  stcomp::StrFormat("%zu", naive_kept.size())});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Ablation: Douglas-Peucker, naive farthest-point scan vs Hershberger-"
      "Snoeyink path hulls\n(outputs asserted identical on every run)\n\n");
  RunWorkload("drive-like trace", DriveTrace, 50.0,
              {500, 1000, 2000, 5000, 10000, 20000, 50000});
  RunWorkload("adversarial sawtooth", SawtoothTrace, 90.0,
              {500, 1000, 2000, 5000, 10000, 20000, 50000});
  return 0;
}
