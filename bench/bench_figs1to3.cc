// Reproduces the paper's illustrative Figures 1-3: how top-down
// Douglas-Peucker and the two opening-window break strategies cut a
// 19-point data series. The paper's figures use an unspecified hand-drawn
// series; we construct a 19-point series with the same qualitative shape
// (four gentle bends) and print which data points each algorithm keeps,
// mirroring the captions:
//   Fig. 1: DP recursively cuts the series (at 16, 12, 8, 4 in the paper);
//   Fig. 2: NOPW breaks at the threshold-exceeding points;
//   Fig. 3: BOPW breaks just before the float.

#include <cmath>
#include <cstdio>

#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/opening_window.h"
#include "stcomp/common/strings.h"

namespace {

// 19 points: a wavy line whose bends sit near indices 4, 8, 12, 16, like
// the paper's sketch.
stcomp::Trajectory PaperSketchSeries() {
  std::vector<stcomp::TimedPoint> points;
  for (int i = 0; i < 19; ++i) {
    const double x = 10.0 * i;
    const double y = 12.0 * std::sin(i * 3.14159265358979323846 / 4.0);
    points.emplace_back(i, x, y);
  }
  return stcomp::Trajectory::FromPoints(std::move(points)).value();
}

void PrintKept(const char* label, const std::vector<int>& kept) {
  std::string line = stcomp::StrFormat("%-28s kept:", label);
  for (int index : kept) {
    line += stcomp::StrFormat(" %d", index);
  }
  std::printf("%s\n", line.c_str());
}

}  // namespace

int main() {
  const stcomp::Trajectory series = PaperSketchSeries();
  std::printf(
      "Figures 1-3: cut-point behaviour on a 19-point series (threshold "
      "%.0f m)\n\n",
      8.0);
  PrintKept("Fig.1 Douglas-Peucker (DP)",
            stcomp::algo::DouglasPeucker(series, 8.0));
  PrintKept("Fig.2 NOPW (break at excess)",
            stcomp::algo::Nopw(series, 8.0));
  PrintKept("Fig.3 BOPW (break before)",
            stcomp::algo::Bopw(series, 8.0));
  std::printf(
      "\nAs in the paper: DP picks the bend apices top-down; NOPW cuts at "
      "the first point violating the window; BOPW cuts one before the "
      "float, advancing further per segment (higher compression, worse "
      "error — Fig. 8).\n");
  return 0;
}
