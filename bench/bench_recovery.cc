// Recovery microbenchmark: how long SegmentStore::Open takes to bring a
// crashed store back, as a function of the WAL left behind — the number
// EXPERIMENTS.md's "Recovery bench" section documents.
//
// Build phase (not timed): populate a store directory with `--commits`
// committed batches of one fix per object (`--objects`), checkpointing
// every `--checkpoint-every` commits (0 = never, so the whole history
// replays from the log). With `--corrupt` one byte in the middle of the
// WAL is flipped afterwards, turning the timed runs into salvage
// recoveries that skip exactly one frame.
//
// Measure phase: `--repetitions` fresh SegmentStore instances Open() the
// same directory; recovery does not mutate the files, so every repetition
// replays identical bytes. Reported recovery_seconds is the same value
// the stcomp_wal_recovery_seconds histogram observes.
//
//   ./bench_recovery [--objects=8] [--commits=400] [--checkpoint-every=0]
//                    [--corrupt] [--repetitions=5]
//                    [--json-out=BENCH_recovery.json]

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/store/durable_file.h"
#include "stcomp/store/segment_store.h"

namespace {

using stcomp::SegmentStore;
using stcomp::TimedPoint;

SegmentStore::Options StoreOptions() {
  SegmentStore::Options options;
  options.codec = stcomp::Codec::kRaw;
  return options;
}

// Writes the workload into `dir` and returns the WAL size in bytes.
size_t BuildStore(const std::string& dir, int objects, int commits,
                  int checkpoint_every) {
  SegmentStore store(StoreOptions());
  STCOMP_CHECK_OK(store.Open(dir));
  for (int commit = 0; commit < commits; ++commit) {
    const double t = 10.0 * commit;
    for (int object = 0; object < objects; ++object) {
      STCOMP_CHECK_OK(store.Append(
          "veh-" + std::to_string(object),
          TimedPoint{t, {25.0 * commit, 3.0 * object - 0.5 * commit}}));
    }
    STCOMP_CHECK_OK(store.Commit());
    // Never checkpoint after the final batch: the timed recovery should
    // always have a non-empty log tail to replay (and to corrupt).
    if (checkpoint_every > 0 && (commit + 1) % checkpoint_every == 0 &&
        commit + 1 < commits) {
      STCOMP_CHECK_OK(store.Checkpoint());
    }
  }
  return static_cast<size_t>(
      std::filesystem::file_size(std::filesystem::path(dir) / "wal.stwal"));
}

void CorruptWalMiddleByte(const std::string& dir) {
  const std::string path =
      (std::filesystem::path(dir) / "wal.stwal").string();
  auto bytes = stcomp::ReadFileToString(path);
  STCOMP_CHECK_OK(bytes.status());
  STCOMP_CHECK(bytes->size() > 2);
  (*bytes)[bytes->size() / 2] ^= 0x5a;
  STCOMP_CHECK_OK(stcomp::AtomicWriteFile(path, *bytes));
}

}  // namespace

int main(int argc, char** argv) {
  int objects = 8;
  int commits = 400;
  int checkpoint_every = 0;
  bool corrupt = false;
  int repetitions = 5;
  std::string json_out = "BENCH_recovery.json";
  stcomp::FlagParser flags("SegmentStore recovery latency vs WAL size");
  flags.AddInt("objects", &objects, "objects appended per commit batch");
  flags.AddInt("commits", &commits, "committed batches in the log");
  flags.AddInt("checkpoint-every", &checkpoint_every,
               "checkpoint period in commits (0 = replay everything)");
  flags.AddBool("corrupt", &corrupt,
                "flip one mid-WAL byte so recovery must salvage");
  flags.AddInt("repetitions", &repetitions, "timed Open() repetitions");
  flags.AddString("json-out", &json_out,
                  "machine-readable result path (empty disables)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  STCOMP_CHECK(objects > 0 && commits > 0 && repetitions > 0);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_recovery_store")
          .string();
  std::filesystem::remove_all(dir);
  const size_t wal_bytes =
      BuildStore(dir, objects, commits, checkpoint_every);
  if (corrupt) {
    CorruptWalMiddleByte(dir);
  }
  std::printf(
      "workload: %d objects x %d commits, checkpoint-every=%d, "
      "wal=%zu bytes%s\n",
      objects, commits, checkpoint_every, wal_bytes,
      corrupt ? ", one byte corrupted" : "");

  std::vector<double> seconds;
  stcomp::RecoveryReport last;
  for (int rep = 0; rep < repetitions; ++rep) {
    SegmentStore store(StoreOptions());
    STCOMP_CHECK_OK(store.Open(dir));
    last = store.last_recovery();
    seconds.push_back(last.recovery_seconds);
  }
  std::sort(seconds.begin(), seconds.end());
  const double min_s = seconds.front();
  const double median_s = seconds[seconds.size() / 2];
  const double replayed_per_second =
      min_s > 0.0 ? static_cast<double>(last.wal_records_replayed) / min_s
                  : 0.0;

  std::printf("  recovery       %9.3f ms min, %9.3f ms median\n",
              1e3 * min_s, 1e3 * median_s);
  std::printf("  replayed       %zu records (%.0f records/s)\n",
              last.wal_records_replayed, replayed_per_second);
  std::printf("  salvaged       %zu frames, torn tail: %s, clean: %s\n",
              last.wal_frames_salvaged, last.wal_torn_tail ? "yes" : "no",
              last.clean() ? "yes" : "no");

  if (!json_out.empty()) {
    char numbers[512];
    std::snprintf(
        numbers, sizeof(numbers),
        "  \"objects\": %d,\n  \"commits\": %d,\n"
        "  \"checkpoint_every\": %d,\n  \"corrupt\": %s,\n"
        "  \"repetitions\": %d,\n  \"wal_bytes\": %zu,\n"
        "  \"recovery_seconds_min\": %.6f,\n"
        "  \"recovery_seconds_median\": %.6f,\n"
        "  \"wal_records_replayed\": %zu,\n"
        "  \"wal_frames_salvaged\": %zu,\n"
        "  \"replayed_records_per_second\": %.0f,\n",
        objects, commits, checkpoint_every, corrupt ? "true" : "false",
        repetitions, wal_bytes, min_s, median_s, last.wal_records_replayed,
        last.wal_frames_salvaged, replayed_per_second);
    const std::string json =
        "{\n  \"bench\": \"bench_recovery\",\n  \"schema_version\": 1,\n" +
        std::string(numbers) + "  \"metrics\": " +
        stcomp::obs::RenderJson(
            stcomp::obs::MetricsRegistry::Global().Snapshot()) +
        "}\n";
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    file << json;
    std::printf("result written to %s\n", json_out.c_str());
  }
  std::filesystem::remove_all(dir);
  return 0;
}
