// Reproduces paper Table 2: statistics of the trajectory dataset.
// The dataset itself is the documented substitution (DESIGN.md Sec. 5):
// 10 synthetic car trips in place of the paper's 10 real GPS traces.

#include <cstdio>

#include "stcomp/exp/figures.h"
#include "stcomp/sim/paper_dataset.h"

int main() {
  stcomp::PaperDatasetConfig config;
  const std::vector<stcomp::Trajectory> dataset =
      stcomp::GeneratePaperDataset(config);
  std::printf("%s\n", stcomp::RenderTable2(dataset).c_str());
  return 0;
}
