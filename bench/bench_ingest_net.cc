// Network-ingest throughput (DESIGN.md §18): fixes/second through the
// full STNI path — FleetClient batching, loopback TCP, the poll-thread
// IngestServer, a ShardedFleetCompressor — as the concurrent-connection
// count grows. The single-connection run is the protocol-overhead
// baseline; the scaling curve shows where the one-poll-thread server
// saturates (by design it is the fan-in bottleneck, the engine behind it
// shards per core — see bench_fleet_scale for the engine's own curve).
//
//   ./bench/bench_ingest_net [--fixes-per-client=20000]
//                            [--objects-per-client=4] [--batch=64]
//                            [--max-conns=8] [--epsilon=25]
//                            [--json-out=BENCH_ingest_net.json]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/net/fleet_client.h"
#include "stcomp/net/ingest_server.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/sharded_fleet.h"

namespace {

// Deterministic walk (SplitMix64): the bench pushes realistic doubles,
// not constants, so delta encoding and the compressor do real work.
stcomp::Trajectory MakeWalk(int fixes, uint64_t seed) {
  auto next = [state = seed]() mutable {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  auto uniform = [&next] {
    return static_cast<double>(next() >> 11) * 0x1p-53;
  };
  std::vector<stcomp::TimedPoint> points;
  points.reserve(static_cast<size_t>(fixes));
  double x = 0.0, y = 0.0, t = 0.0;
  for (int i = 0; i < fixes; ++i) {
    points.push_back({t, x, y});
    t += 1.0 + 9.0 * uniform();
    x += 40.0 * (uniform() - 0.5);
    y += 40.0 * (uniform() - 0.5);
  }
  return stcomp::Trajectory::FromPoints(std::move(points)).value();
}

struct RunResult {
  size_t connections = 0;
  size_t fixes = 0;
  double seconds = 0.0;
  double fixes_per_second = 0.0;
  uint64_t batches_acked = 0;
  double speedup_vs_1 = 0.0;
};

RunResult TimeRun(size_t connections, int fixes_per_client,
                  int objects_per_client, int batch, double epsilon,
                  uint64_t seed) {
  stcomp::ShardedFleetOptions engine_options;
  engine_options.instance =
      stcomp::StrFormat("bench-net-%zu", connections);
  stcomp::ShardedFleetCompressor engine(
      [epsilon] {
        return std::make_unique<stcomp::OpeningWindowStream>(
            epsilon, stcomp::algo::BreakPolicy::kNormal,
            stcomp::StreamCriterion::kSynchronized);
      },
      engine_options);
  stcomp::net::IngestServerOptions server_options;
  server_options.instance = engine_options.instance;
  stcomp::net::IngestServer server(
      [&engine](std::string_view id, const stcomp::TimedPoint& fix) {
        return engine.Push(id, fix);
      },
      server_options);
  STCOMP_CHECK_OK(server.Start(0));

  // Walks are generated (and clients constructed + connected) outside
  // the timed window: this measures the wire path, not setup.
  std::vector<std::vector<stcomp::Trajectory>> walks(connections);
  std::vector<std::unique_ptr<stcomp::net::FleetClient>> clients;
  for (size_t c = 0; c < connections; ++c) {
    for (int o = 0; o < objects_per_client; ++o) {
      walks[c].push_back(MakeWalk(
          fixes_per_client,
          seed + c * static_cast<uint64_t>(objects_per_client) +
              static_cast<uint64_t>(o)));
    }
    stcomp::net::FleetClientOptions client_options;
    client_options.port = server.port();
    client_options.client_id = stcomp::StrFormat("bench-%zu-%zu",
                                                 connections, c);
    client_options.batch_size = static_cast<size_t>(batch);
    clients.push_back(std::make_unique<stcomp::net::FleetClient>(
        std::move(client_options)));
    STCOMP_CHECK_OK(clients.back()->Connect());
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      stcomp::net::FleetClient& client = *clients[c];
      for (int i = 0; i < fixes_per_client; ++i) {
        for (int o = 0; o < objects_per_client; ++o) {
          STCOMP_CHECK_OK(client.Push(
              stcomp::StrFormat("veh-%zu-%d", c, o), walks[c][o][i]));
        }
      }
      STCOMP_CHECK_OK(client.Flush());
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (auto& client : clients) {
    STCOMP_CHECK_OK(client->Bye());
  }
  server.Stop();
  STCOMP_CHECK_OK(engine.FinishAll());

  RunResult run;
  run.connections = connections;
  run.fixes = connections * static_cast<size_t>(fixes_per_client) *
              static_cast<size_t>(objects_per_client);
  STCOMP_CHECK(server.fixes_in() == run.fixes);
  run.seconds = seconds;
  run.fixes_per_second = seconds > 0.0 ? run.fixes / seconds : 0.0;
  run.batches_acked = server.batches_acked();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  int fixes_per_client = 20000;
  int objects_per_client = 4;
  int batch = 64;
  int max_conns = 8;
  double epsilon = 25.0;
  int seed = 20260807;
  std::string json_out;
  stcomp::FlagParser flags("STNI network-ingest throughput");
  flags.AddInt("fixes-per-client", &fixes_per_client,
               "fixes pushed per object per connection");
  flags.AddInt("objects-per-client", &objects_per_client,
               "objects multiplexed on each connection");
  flags.AddInt("batch", &batch, "fixes per wire batch");
  flags.AddInt("max-conns", &max_conns,
               "largest concurrent-connection count timed");
  flags.AddDouble("epsilon", &epsilon,
                  "opening-window tolerance in metres (per-fix work)");
  flags.AddInt("seed", &seed, "walk generation seed");
  flags.AddString("json-out", &json_out,
                  "machine-readable result path (empty disables)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  STCOMP_CHECK(fixes_per_client > 0 && objects_per_client > 0 && batch > 0 &&
               max_conns > 0);

  std::vector<size_t> counts;
  for (size_t n = 1; n < static_cast<size_t>(max_conns); n *= 2) {
    counts.push_back(n);
  }
  counts.push_back(static_cast<size_t>(max_conns));

  std::printf("ingest over loopback TCP: %d objects x %d fixes per "
              "connection, batch=%d, epsilon=%.1f\n",
              objects_per_client, fixes_per_client, batch, epsilon);
  std::vector<RunResult> runs;
  double base = 0.0;
  for (const size_t connections : counts) {
    RunResult run = TimeRun(connections, fixes_per_client, objects_per_client,
                            batch, epsilon, static_cast<uint64_t>(seed));
    if (connections == 1) {
      base = run.fixes_per_second;
    }
    run.speedup_vs_1 = base > 0.0 ? run.fixes_per_second / base : 0.0;
    std::printf("  %2zu connection(s): %10.0f fixes/s  (%5.2fx vs 1, "
                "%llu batches acked)\n",
                run.connections, run.fixes_per_second, run.speedup_vs_1,
                static_cast<unsigned long long>(run.batches_acked));
    runs.push_back(run);
  }

  if (!json_out.empty()) {
    std::string runs_json = "[";
    for (size_t i = 0; i < runs.size(); ++i) {
      const RunResult& run = runs[i];
      runs_json += stcomp::StrFormat(
          "%s\n    {\"connections\": %zu, \"fixes\": %zu, "
          "\"seconds\": %.6f, \"fixes_per_second\": %.0f, "
          "\"batches_acked\": %llu, \"speedup_vs_1\": %.4f}",
          i == 0 ? "" : ",", run.connections, run.fixes, run.seconds,
          run.fixes_per_second,
          static_cast<unsigned long long>(run.batches_acked),
          run.speedup_vs_1);
    }
    runs_json += "\n  ]";
    const std::string json = stcomp::StrFormat(
        "{\n  \"bench\": \"bench_ingest_net\",\n  \"schema_version\": 1,\n"
        "  \"fixes_per_client\": %d,\n  \"objects_per_client\": %d,\n"
        "  \"batch\": %d,\n  \"max_conns\": %d,\n  \"epsilon_m\": %.3f,\n"
        "  \"seed\": %d,\n  \"runs\": %s,\n  \"metrics\": %s}\n",
        fixes_per_client, objects_per_client, batch, max_conns, epsilon, seed,
        runs_json.c_str(),
        stcomp::obs::RenderJson(
            stcomp::obs::MetricsRegistry::Global().Snapshot())
            .c_str());
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    file << json;
    std::printf("result written to %s\n", json_out.c_str());
  }
  return 0;
}
