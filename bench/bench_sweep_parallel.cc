// Serial-vs-parallel sweep driver benchmark: the same (algorithm,
// threshold) grid the figure benches run, once through the serial
// SweepThresholds loop and once through SweepManyParallel's thread pool.
//
// Beyond the speedup number, this is the equality harness for the parallel
// driver: every SweepPoint must match its serial counterpart *exactly*
// (bitwise doubles) — the workers run the same zero-copy entry points over
// the same shared dataset, so any divergence is a scheduling bug.
//
//   ./bench_sweep_parallel [--trajectories=6] [--threads=0]
//                          [--repetitions=3] [--json-out=BENCH_sweep.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/exp/sweep.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/sim/paper_dataset.h"

namespace {

using stcomp::SweepPoint;
using stcomp::SweepRequest;
using stcomp::Trajectory;

std::vector<SweepRequest> MakeRequests() {
  std::vector<SweepRequest> requests;
  for (const char* name : {"ndp", "td-tr", "nopw", "bopw", "opw-tr",
                           "opw-sp", "td-sp", "bottom-up-tr"}) {
    stcomp::algo::AlgorithmParams base;
    base.speed_threshold_mps = 10.0;
    requests.push_back({name, base, stcomp::PaperThresholds()});
  }
  return requests;
}

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool PointsEqual(const SweepPoint& a, const SweepPoint& b) {
  return a.epsilon_m == b.epsilon_m &&
         a.speed_threshold_mps == b.speed_threshold_mps &&
         a.compression_percent == b.compression_percent &&
         a.sync_error_mean_m == b.sync_error_mean_m &&
         a.sync_error_max_m == b.sync_error_max_m &&
         a.perp_error_mean_m == b.perp_error_mean_m &&
         a.area_error_m == b.area_error_m;
}

}  // namespace

int main(int argc, char** argv) {
  int trajectories = 6;
  int threads = 0;
  int repetitions = 3;
  std::string json_out = "BENCH_sweep.json";
  stcomp::FlagParser flags("serial vs parallel threshold-sweep driver");
  flags.AddInt("trajectories", &trajectories, "dataset size");
  flags.AddInt("threads", &threads,
               "parallel workers (0 = hardware concurrency)");
  flags.AddInt("repetitions", &repetitions, "timed repetitions (min wins)");
  flags.AddString("json-out", &json_out,
                  "machine-readable result path (empty disables)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  STCOMP_CHECK(trajectories > 0 && repetitions > 0);

  stcomp::PaperDatasetConfig config;
  config.num_trajectories = static_cast<size_t>(trajectories);
  const std::vector<Trajectory> dataset = stcomp::GeneratePaperDataset(config);
  const std::vector<SweepRequest> requests = MakeRequests();
  size_t cells = 0;
  for (const SweepRequest& request : requests) {
    cells += request.thresholds.size();
  }
  const int effective_threads =
      threads > 0 ? threads
                  : static_cast<int>(
                        std::max(1u, std::thread::hardware_concurrency()));
  std::printf("sweep: %zu algorithms x %zu thresholds = %zu cells over %d "
              "trajectories, %d threads\n",
              requests.size(), requests.front().thresholds.size(), cells,
              trajectories, effective_threads);

  // Warm-up (untimed): page in code, grow the thread-local workspaces.
  std::vector<std::vector<SweepPoint>> serial;
  for (const SweepRequest& request : requests) {
    serial.push_back(stcomp::SweepThresholds(dataset, request.algorithm,
                                             request.base, request.thresholds)
                         .value());
  }

  double serial_seconds = 1e300;
  double parallel_seconds = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    {
      const auto start = std::chrono::steady_clock::now();
      for (const SweepRequest& request : requests) {
        const auto points =
            stcomp::SweepThresholds(dataset, request.algorithm, request.base,
                                    request.thresholds)
                .value();
        STCOMP_CHECK(points.size() == request.thresholds.size());
      }
      serial_seconds = std::min(serial_seconds, Seconds(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<std::vector<SweepPoint>> parallel =
          stcomp::SweepManyParallel(dataset, requests, threads).value();
      parallel_seconds = std::min(parallel_seconds, Seconds(start));
      // Exact equality with the serial reference, every repetition.
      STCOMP_CHECK(parallel.size() == serial.size());
      for (size_t r = 0; r < serial.size(); ++r) {
        STCOMP_CHECK(parallel[r].size() == serial[r].size());
        for (size_t k = 0; k < serial[r].size(); ++k) {
          STCOMP_CHECK(PointsEqual(parallel[r][k], serial[r][k]));
        }
      }
    }
  }
  const double speedup = serial_seconds / parallel_seconds;
  std::printf("  serial    %8.3f s\n", serial_seconds);
  std::printf("  parallel  %8.3f s\n", parallel_seconds);
  std::printf("  speedup   %8.2fx (%d threads)\n", speedup, effective_threads);
  std::printf("  results   identical to serial (exact doubles)\n");

  if (!json_out.empty()) {
    char numbers[384];
    std::snprintf(numbers, sizeof(numbers),
                  "  \"threads\": %d,\n  \"cells\": %zu,\n"
                  "  \"trajectories\": %d,\n  \"repetitions\": %d,\n"
                  "  \"serial_seconds\": %.6f,\n"
                  "  \"parallel_seconds\": %.6f,\n  \"speedup\": %.3f,\n",
                  effective_threads, cells, trajectories, repetitions,
                  serial_seconds, parallel_seconds, speedup);
    const std::string json =
        "{\n  \"bench\": \"bench_sweep_parallel\",\n  \"schema_version\": "
        "1,\n" +
        std::string(numbers) + "  \"metrics\": " +
        stcomp::obs::RenderJson(
            stcomp::obs::MetricsRegistry::Global().Snapshot()) +
        "}\n";
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    file << json;
    std::printf("result written to %s\n", json_out.c_str());
  }
  return 0;
}
