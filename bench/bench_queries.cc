// Query-engine benchmark: index-accelerated RunQuery vs the brute-force
// decode-everything oracle across a selectivity x dataset-size matrix.
// Every timed pair is also checked for bitwise-equal answers, so this
// doubles as a large-input differential smoke. The JSON lands in
// BENCH_queries.json (schema gated by scripts/validate_bench.py); the
// headline number is low_selectivity_speedup — block skipping must beat
// full decompression when the query touches little of the data.
//
//   bench_queries [--objects=64] [--queries=40] [--epsilon=30]
//                 [--json-out=BENCH_queries.json]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "stcomp/algo/time_ratio.h"
#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/exp/table.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/store/query.h"
#include "stcomp/store/st_index.h"
#include "stcomp/store/trajectory_store.h"

namespace {

struct CellResult {
  size_t objects = 0;
  std::string selectivity;
  size_t queries = 0;
  size_t hits = 0;
  double engine_us = 0.0;
  double oracle_us = 0.0;
  double speedup = 0.0;
  double decoded_fraction = 0.0;  // blocks decoded / blocks total
};

template <typename F>
double TimeUs(const F& run, int repetitions) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repetitions; ++r) {
    run();
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() /
         repetitions;
}

}  // namespace

int main(int argc, char** argv) {
  int max_objects = 64;
  int num_queries = 40;
  double epsilon = 30.0;
  std::string json_out = "BENCH_queries.json";
  stcomp::FlagParser flags(
      "Index-accelerated queries vs the brute-force oracle across a "
      "selectivity x fleet-size matrix");
  flags.AddInt("objects", &max_objects,
               "largest fleet size (the matrix runs objects/4, objects/2, "
               "objects)");
  flags.AddInt("queries", &num_queries, "random queries per matrix cell");
  flags.AddDouble("epsilon", &epsilon,
                  "TD-TR simplification tolerance (m) applied before insert");
  flags.AddString("json-out", &json_out,
                  "result snapshot path; empty disables the JSON dump");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  STCOMP_CHECK(max_objects >= 4);

  // Selectivity is controlled by the query box edge: a 500 m box touches a
  // handful of blocks; a 16 km box touches most of the fleet's extent.
  struct Shape {
    const char* label;
    double edge_m;
  };
  const std::vector<Shape> shapes = {
      {"low", 500.0}, {"mid", 4000.0}, {"high", 16000.0}};
  const std::vector<size_t> fleets = {static_cast<size_t>(max_objects) / 4,
                                      static_cast<size_t>(max_objects) / 2,
                                      static_cast<size_t>(max_objects)};

  std::printf(
      "Range queries on the compressed store: block-skipping engine vs "
      "decode-everything oracle (%d queries/cell, eps=%.0f m)\n\n",
      num_queries, epsilon);
  stcomp::Table table({"objects", "selectivity", "hits", "engine_us",
                       "oracle_us", "speedup", "decoded_blocks"});
  std::vector<CellResult> cells;
  double low_selectivity_speedup = 0.0;
  for (const size_t fleet : fleets) {
    stcomp::PaperDatasetConfig config;
    config.num_trajectories = fleet;
    const std::vector<stcomp::Trajectory> dataset =
        stcomp::GeneratePaperDataset(config);
    stcomp::TrajectoryStore store;
    for (const stcomp::Trajectory& trip : dataset) {
      STCOMP_CHECK_OK(store.Insert(
          trip.name(), trip.Subset(stcomp::algo::TdTr(trip, epsilon))));
    }
    const stcomp::SpatioTemporalIndex index =
        stcomp::SpatioTemporalIndex::BuildFromStore(store);

    for (const Shape& shape : shapes) {
      stcomp::Rng rng(9 + fleet);
      std::vector<stcomp::QueryRequest> requests;
      for (int q = 0; q < num_queries; ++q) {
        stcomp::QueryRequest request;
        request.type = stcomp::QueryType::kRange;
        request.declared_error_m = epsilon;
        const stcomp::Vec2 corner{rng.NextUniform(-5000.0, 25000.0),
                                  rng.NextUniform(-5000.0, 25000.0)};
        request.box = {corner,
                       corner + stcomp::Vec2{shape.edge_m, shape.edge_m}};
        requests.push_back(request);
      }

      // Answers must agree bit for bit before either side is timed.
      size_t hits = 0;
      uint64_t blocks_total = 0;
      uint64_t blocks_decoded = 0;
      for (const stcomp::QueryRequest& request : requests) {
        const stcomp::Result<stcomp::QueryAnswer> engine =
            stcomp::RunQuery(store, index, request);
        const stcomp::Result<stcomp::QueryAnswer> oracle =
            stcomp::BruteForceQuery(store, request);
        STCOMP_CHECK_OK(engine.status());
        STCOMP_CHECK_OK(oracle.status());
        STCOMP_CHECK(engine->hits.size() == oracle->hits.size());
        for (size_t i = 0; i < engine->hits.size(); ++i) {
          STCOMP_CHECK(engine->hits[i].id == oracle->hits[i].id);
          STCOMP_CHECK(engine->hits[i].first_hit_t ==
                       oracle->hits[i].first_hit_t);
        }
        hits += engine->hits.size();
        blocks_total += engine->stats.blocks_total;
        blocks_decoded += engine->stats.blocks_decoded;
      }

      const int repetitions = 5;
      const double engine_us = TimeUs(
          [&] {
            for (const stcomp::QueryRequest& request : requests) {
              STCOMP_CHECK_OK(stcomp::RunQuery(store, index, request).status());
            }
          },
          repetitions);
      const double oracle_us = TimeUs(
          [&] {
            for (const stcomp::QueryRequest& request : requests) {
              STCOMP_CHECK_OK(stcomp::BruteForceQuery(store, request).status());
            }
          },
          repetitions);

      CellResult cell;
      cell.objects = fleet;
      cell.selectivity = shape.label;
      cell.queries = static_cast<size_t>(num_queries);
      cell.hits = hits;
      cell.engine_us = engine_us;
      cell.oracle_us = oracle_us;
      cell.speedup = engine_us > 0.0 ? oracle_us / engine_us : 0.0;
      cell.decoded_fraction =
          blocks_total > 0
              ? static_cast<double>(blocks_decoded) / blocks_total
              : 0.0;
      cells.push_back(cell);
      if (shape.label == std::string("low") && fleet == fleets.back()) {
        low_selectivity_speedup = cell.speedup;
      }
      table.AddRow({stcomp::StrFormat("%zu", fleet), shape.label,
                    stcomp::StrFormat("%zu", hits),
                    stcomp::StrFormat("%.0f", engine_us),
                    stcomp::StrFormat("%.0f", oracle_us),
                    stcomp::StrFormat("%.1fx", cell.speedup),
                    stcomp::StrFormat("%.0f%%", 100.0 * cell.decoded_fraction)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("low-selectivity speedup at %d objects: %.2fx\n", max_objects,
              low_selectivity_speedup);

  if (!json_out.empty()) {
    std::string cells_json = "[";
    for (size_t i = 0; i < cells.size(); ++i) {
      const CellResult& cell = cells[i];
      cells_json += stcomp::StrFormat(
          "%s\n    {\"objects\": %zu, \"selectivity\": \"%s\", "
          "\"queries\": %zu, \"hits\": %zu, \"engine_us\": %.3f, "
          "\"oracle_us\": %.3f, \"speedup\": %.4f, "
          "\"decoded_block_fraction\": %.6f}",
          i == 0 ? "" : ",", cell.objects, cell.selectivity.c_str(),
          cell.queries, cell.hits, cell.engine_us, cell.oracle_us,
          cell.speedup, cell.decoded_fraction);
    }
    cells_json += "\n  ]";
    const std::string json = stcomp::StrFormat(
        "{\n  \"bench\": \"bench_queries\",\n  \"schema_version\": 1,\n"
        "  \"epsilon_m\": %.3f,\n  \"queries_per_cell\": %d,\n"
        "  \"max_objects\": %d,\n"
        "  \"low_selectivity_speedup\": %.4f,\n"
        "  \"cells\": %s,\n  \"metrics\": %s}\n",
        epsilon, num_queries, max_objects, low_selectivity_speedup,
        cells_json.c_str(),
        stcomp::obs::RenderJson(
            stcomp::obs::MetricsRegistry::Global().Snapshot())
            .c_str());
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    file << json;
    std::printf("result written to %s\n", json_out.c_str());
  }
  return 0;
}
