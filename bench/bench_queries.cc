// Store query benchmark: box queries via linear scan (TrajectoryStore's
// baseline) vs the uniform grid index, across fleet sizes — the database-
// side payoff of keeping trajectories compressed AND indexed.

#include <chrono>
#include <cstdio>

#include "stcomp/algo/time_ratio.h"
#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/store/grid_index.h"

namespace {

template <typename F>
double TimeUs(const F& run, int repetitions) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repetitions; ++r) {
    run();
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() /
         repetitions;
}

}  // namespace

int main() {
  std::printf(
      "Store box queries: linear scan vs 500 m grid index (fleet of "
      "compressed trajectories; 100 random 2x2 km boxes per row)\n\n");
  stcomp::Table table({"objects", "points", "scan_us", "grid_us", "speedup"});
  for (size_t fleet : {10u, 40u, 160u}) {
    stcomp::PaperDatasetConfig config;
    config.num_trajectories = fleet;
    const std::vector<stcomp::Trajectory> dataset =
        stcomp::GeneratePaperDataset(config);
    stcomp::TrajectoryStore store;
    stcomp::GridIndex index(500.0);
    size_t total_points = 0;
    for (size_t object = 0; object < dataset.size(); ++object) {
      const stcomp::Trajectory compressed = dataset[object].Subset(
          stcomp::algo::TdTr(dataset[object], 30.0));
      STCOMP_CHECK_OK(store.Insert(dataset[object].name(), compressed));
      for (const stcomp::TimedPoint& point : compressed.points()) {
        index.Insert(static_cast<int64_t>(object), point.position);
      }
      total_points += compressed.size();
    }
    stcomp::Rng rng(9);
    std::vector<stcomp::BoundingBox> boxes;
    for (int q = 0; q < 100; ++q) {
      const stcomp::Vec2 corner{rng.NextUniform(0.0, 20000.0),
                                rng.NextUniform(0.0, 20000.0)};
      boxes.push_back({corner, corner + stcomp::Vec2{2000.0, 2000.0}});
    }
    size_t scan_hits = 0;
    size_t grid_hits = 0;
    const double scan_us = TimeUs(
        [&] {
          scan_hits = 0;
          for (const auto& box : boxes) {
            scan_hits += store.ObjectsInBox(box).size();
          }
        },
        5);
    const double grid_us = TimeUs(
        [&] {
          grid_hits = 0;
          for (const auto& box : boxes) {
            grid_hits += index.QueryBox(box).size();
          }
        },
        5);
    STCOMP_CHECK(scan_hits == grid_hits);
    table.AddRow({stcomp::StrFormat("%zu", fleet),
                  stcomp::StrFormat("%zu", total_points),
                  stcomp::StrFormat("%.0f", scan_us),
                  stcomp::StrFormat("%.0f", grid_us),
                  stcomp::StrFormat("%.1fx", scan_us / grid_us)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
