// Reproduces the Sec. 1 storage motivation (raw <t,x,y> stream volumes)
// and reports the store codec sizes on the experiment dataset.

#include <cstdio>

#include "stcomp/exp/figures.h"
#include "stcomp/sim/paper_dataset.h"

int main() {
  stcomp::PaperDatasetConfig config;
  const std::vector<stcomp::Trajectory> dataset =
      stcomp::GeneratePaperDataset(config);
  const stcomp::Result<std::string> rendered =
      stcomp::RenderStorageTable(dataset);
  if (!rendered.ok()) {
    std::fprintf(stderr, "storage table failed: %s\n",
                 rendered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", rendered->c_str());
  return 0;
}
