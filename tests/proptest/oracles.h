// Contract oracles for the property-based differential harness. Each
// oracle returns "" on success, or a human-readable violation description
// (the caller prepends the generator seed / algorithm / parameters so any
// failure is reproducible from the message alone).
//
// Two kinds of contract:
//  - universal: must hold for every algorithm in the registry, including
//    ones registered in the future (the runner enumerates AllAlgorithms()).
//  - per-class: guaranteed only by particular algorithm families
//    (opening-window / top-down epsilon bounds, kept-count monotonicity);
//    membership is by registry name via the classifiers below, and unknown
//    names conservatively get universal contracts only.

#ifndef STCOMP_TESTS_PROPTEST_ORACLES_H_
#define STCOMP_TESTS_PROPTEST_ORACLES_H_

#include <string>
#include <string_view>

#include "stcomp/algo/registry.h"
#include "stcomp/core/trajectory.h"

namespace stcomp::proptest {

// "epsilon_m=15 speed=15 keep_every=2 ..." — everything needed to rebuild
// the AlgorithmParams of a failing run.
std::string FormatParams(const algo::AlgorithmParams& params);

// Universal contracts: kept indices strictly increasing and in range,
// endpoints preserved (n >= 1), output never larger than input, and the
// output trajectory is an exact subset of the input's points.
std::string CheckUniversalContracts(const Trajectory& trajectory,
                                    const algo::IndexList& kept);

// The per-point discard bound classes. An algorithm in the perpendicular
// class may only discard points within `epsilon` perpendicular distance of
// the kept segment that covers them; the synchronized class bounds the
// time-ratio (SED) distance instead (paper Eqs. 1-2).
enum class DistanceContract {
  kNone,           // No per-segment bound (heuristics: bottom-up, radial...)
  kPerpendicular,  // ndp, ndp-hull, nopw, bopw, sliding
  kSynchronized,   // td-tr, opw-tr, opw-sp, td-sp, squish-e
};

DistanceContract DistanceContractFor(std::string_view algorithm_name);

// True for algorithms whose kept set provably nests as epsilon grows
// (top-down splitting: the recursion tree for a larger epsilon is a pruned
// prefix of the smaller one), so kept count is non-increasing in epsilon.
bool KeptCountMonotoneInEpsilon(std::string_view algorithm_name);

// Per-class bound check: every discarded point is within
// `epsilon` (+ tiny numeric slack) of its covering kept segment, measured
// by the contract's distance.
std::string CheckDiscardedWithinEpsilon(const Trajectory& trajectory,
                                        const algo::IndexList& kept,
                                        double epsilon,
                                        DistanceContract contract);

// Error-module contracts on (original, approximation): closed-form
// SynchronousError is finite, non-negative, bounded by MaxSynchronousError,
// and agrees with the adaptive-Simpson SynchronousErrorNumeric to relative
// tolerance. Requires >= 2 points and shared endpoints (the runner only
// calls it for subsets, which preserve endpoints).
std::string CheckSynchronousErrorAgreement(const Trajectory& original,
                                           const Trajectory& approximation);

// Storage contracts: raw codec byte-exact round-trip, delta codec
// round-trip within the documented quanta and idempotent re-encode,
// CRC-framed serialization round-trip for both codecs.
std::string CheckStoreRoundTrip(const Trajectory& trajectory);

// Varint/zigzag primitives: round-trip across magnitudes derived from
// `seed`, re-encode byte equality, truncation detection.
std::string CheckVarintRoundTrip(uint64_t seed);

}  // namespace stcomp::proptest

#endif  // STCOMP_TESTS_PROPTEST_ORACLES_H_
