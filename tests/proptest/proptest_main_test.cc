// Registry-driven property runner: every algorithm in AllAlgorithms() is
// swept over the adversarial corpus (generator.h) and checked against the
// contract oracles (oracles.h). Algorithms registered in the future are
// picked up automatically — nothing here names an algorithm except the
// per-class contract tables in oracles.cc.
//
// Every assertion appends a "repro:" string carrying the generator family,
// seed, algorithm name and full AlgorithmParams, so a failure can be
// reproduced with one Generate() + one run() call.

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proptest/generator.h"
#include "proptest/oracles.h"
#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/path_hull.h"
#include "stcomp/algo/registry.h"
#include "stcomp/stream/batch_adapter.h"
#include "stcomp/stream/dead_reckoning_stream.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/policed_compressor.h"
#include "stcomp/stream/squish_stream.h"

namespace stcomp::proptest {
namespace {

constexpr uint64_t kBaseSeed = 20260805;
constexpr int kSeedsPerFamily = 3;

// Thresholds chosen to hit both degenerate regimes: epsilon 0 (only
// exactly-redundant points may go) and a threshold far above every
// corpus scale (everything interior may go).
const std::vector<double>& EpsilonLadder() {
  static const std::vector<double>* const kLadder =
      new std::vector<double>{0.0, 1e-6, 15.0, 5000.0};
  return *kLadder;
}

const std::vector<CorpusCase>& Corpus() {
  static const std::vector<CorpusCase>* const kCorpus =
      new std::vector<CorpusCase>(BuildCorpus(kBaseSeed, kSeedsPerFamily));
  return *kCorpus;
}

std::string Repro(const CorpusCase& c, const std::string& algorithm,
                  const algo::AlgorithmParams& params) {
  return "repro: " + Describe(c) + " algo=" + algorithm + " " +
         FormatParams(params);
}

class CorpusProperty : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorpusProperty, EveryAlgorithmSatisfiesItsContracts) {
  const CorpusCase& c = GetParam();
  for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
    for (double epsilon : EpsilonLadder()) {
      algo::AlgorithmParams params;
      params.epsilon_m = epsilon;
      const std::string repro = Repro(c, info.name, params);
      const algo::IndexList kept = info.run(c.trajectory, params);
      EXPECT_EQ(CheckUniversalContracts(c.trajectory, kept), "") << repro;
      EXPECT_EQ(CheckDiscardedWithinEpsilon(c.trajectory, kept, epsilon,
                                            DistanceContractFor(info.name)),
                "")
          << repro;
    }
  }
}

TEST_P(CorpusProperty, EveryAlgorithmIsDeterministic) {
  const CorpusCase& c = GetParam();
  for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
    algo::AlgorithmParams params;
    const std::string repro = Repro(c, info.name, params);
    EXPECT_EQ(info.run(c.trajectory, params), info.run(c.trajectory, params))
        << repro;
  }
}

TEST_P(CorpusProperty, ViewEntryPointMatchesLegacyShim) {
  // Satellite 3 of the zero-copy refactor: run_view with a deliberately
  // dirty, shared workspace must be byte-identical to the legacy run()
  // shim AND to a fresh-workspace run, for every algorithm and threshold.
  const CorpusCase& c = GetParam();
  algo::Workspace dirty;  // Reused across every (algorithm, epsilon) cell.
  algo::IndexList reused_out;
  for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
    for (double epsilon : EpsilonLadder()) {
      algo::AlgorithmParams params;
      params.epsilon_m = epsilon;
      const std::string repro = Repro(c, info.name, params);
      const algo::IndexList legacy = info.run(c.trajectory, params);
      info.run_view(c.trajectory, params, dirty, reused_out);
      EXPECT_EQ(reused_out, legacy) << repro << " (dirty workspace)";
      algo::Workspace fresh;
      algo::IndexList fresh_out;
      info.run_view(c.trajectory, params, fresh, fresh_out);
      EXPECT_EQ(fresh_out, legacy) << repro << " (fresh workspace)";
    }
  }
}

TEST_P(CorpusProperty, SynchronousErrorClosedFormMatchesQuadrature) {
  const CorpusCase& c = GetParam();
  if (c.trajectory.size() < 2) {
    return;  // The error notion needs an interval.
  }
  for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
    algo::AlgorithmParams params;
    const std::string repro = Repro(c, info.name, params);
    const algo::IndexList kept = info.run(c.trajectory, params);
    ASSERT_EQ(CheckUniversalContracts(c.trajectory, kept), "") << repro;
    EXPECT_EQ(CheckSynchronousErrorAgreement(c.trajectory,
                                             c.trajectory.Subset(kept)),
              "")
        << repro;
  }
}

TEST_P(CorpusProperty, TopDownKeptCountMonotoneInEpsilon) {
  const CorpusCase& c = GetParam();
  for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
    if (!KeptCountMonotoneInEpsilon(info.name)) {
      continue;
    }
    size_t previous_kept = c.trajectory.size() + 1;
    for (double epsilon : EpsilonLadder()) {  // Ladder is ascending.
      algo::AlgorithmParams params;
      params.epsilon_m = epsilon;
      const size_t kept = info.run(c.trajectory, params).size();
      EXPECT_LE(kept, previous_kept)
          << Repro(c, info.name, params)
          << " (kept count grew when epsilon increased)";
      previous_kept = kept;
    }
  }
}

TEST_P(CorpusProperty, StorePipelineRoundTrips) {
  const CorpusCase& c = GetParam();
  EXPECT_EQ(CheckStoreRoundTrip(c.trajectory), "") << "repro: " << Describe(c);
}

TEST(ProptestDifferential, PathHullMatchesNaiveDouglasPeuckerOnSimpleChains) {
  // path_hull.h documents identical output to the naive scan on simple
  // chains in generic position — exactly the monotone family. (On the
  // self-intersecting families ndp-hull has no epsilon guarantee, which
  // is why DistanceContractFor excludes it.)
  for (uint64_t seed = kBaseSeed; seed < kBaseSeed + 8; ++seed) {
    const Trajectory trajectory = Generate("monotone", seed);
    for (double epsilon : EpsilonLadder()) {
      EXPECT_EQ(algo::DouglasPeuckerHull(trajectory, epsilon),
                algo::DouglasPeucker(trajectory, epsilon))
          << "repro: family=monotone seed=" << seed << " eps=" << epsilon;
    }
  }
}

TEST(ProptestVarint, PrimitivesRoundTripAcrossSeeds) {
  for (uint64_t seed = kBaseSeed; seed < kBaseSeed + 8; ++seed) {
    EXPECT_EQ(CheckVarintRoundTrip(seed), "") << "repro: seed=" << seed;
  }
}

TEST(ProptestGenerator, IsDeterministicPerFamilyAndSeed) {
  for (const std::string& family : AllFamilies()) {
    EXPECT_EQ(Generate(family, kBaseSeed), Generate(family, kBaseSeed))
        << "family=" << family;
  }
}

TEST(ProptestGenerator, FamiliesCoverDegenerateSizes) {
  // The corpus must keep its edge families: empty, single-point and
  // two-point trajectories are where index handling goes wrong first.
  EXPECT_EQ(Generate("empty", kBaseSeed).size(), 0u);
  EXPECT_EQ(Generate("single", kBaseSeed).size(), 1u);
  EXPECT_EQ(Generate("two", kBaseSeed).size(), 2u);
}

// --- Dirty-input matrix (ingest hardening, DESIGN.md §12) ---------------
//
// Every stream adapter — including a BatchAdapter over every registered
// algorithm — is fed the dirty families (duplicate/non-monotonic/NaN
// timestamps, NaN coordinates) and must answer each Push with a clean
// Status and emit strictly ordered, finite output. The same feeds wrapped
// in a PolicedCompressor must additionally never fail a Push at all.

struct AdapterFactory {
  std::string name;
  std::function<std::unique_ptr<OnlineCompressor>()> make;
};

std::vector<AdapterFactory> AllAdapterFactories() {
  std::vector<AdapterFactory> factories = {
      {"nopw-stream",
       [] {
         return std::make_unique<OpeningWindowStream>(
             15.0, algo::BreakPolicy::kNormal, StreamCriterion::kPerpendicular);
       }},
      {"opw-tr-stream",
       [] {
         return std::make_unique<OpeningWindowStream>(
             15.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
       }},
      {"opw-sp-stream",
       [] {
         return std::make_unique<OpeningWindowStream>(
             15.0, algo::BreakPolicy::kNormal, StreamCriterion::kSpatiotemporal,
             10.0);
       }},
      {"dead-reckoning",
       [] { return std::make_unique<DeadReckoningStream>(15.0); }},
      {"squish-capacity", [] { return std::make_unique<SquishStream>(8, 0.0); }},
      {"squish-error", [] { return std::make_unique<SquishStream>(0, 25.0); }},
  };
  for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
    algo::AlgorithmParams params;
    params.epsilon_m = 15.0;
    factories.push_back({"batch-" + info.name, [&info, params] {
                           return std::make_unique<BatchAdapter>(info, params);
                         }});
  }
  return factories;
}

void ExpectCleanOrderedOutput(const std::vector<TimedPoint>& out,
                              const std::string& repro) {
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i].t) && std::isfinite(out[i].position.x) &&
                std::isfinite(out[i].position.y))
        << repro << " emitted a non-finite point at " << i;
    if (i > 0) {
      EXPECT_LT(out[i - 1].t, out[i].t)
          << repro << " emitted out-of-order output at " << i;
    }
  }
}

TEST(DirtyMatrix, BareAdaptersAnswerWithStatusAndStayOrdered) {
  for (const AdapterFactory& factory : AllAdapterFactories()) {
    for (const std::string& family : DirtyFamilies()) {
      for (uint64_t seed = kBaseSeed; seed < kBaseSeed + 3; ++seed) {
        const std::string repro =
            "repro: family=" + family + " seed=" + std::to_string(seed) +
            " adapter=" + factory.name;
        const std::unique_ptr<OnlineCompressor> adapter = factory.make();
        std::vector<TimedPoint> out;
        for (const TimedPoint& fix : GenerateDirty(family, seed)) {
          // The Status itself is the contract: faulty fixes fail, clean
          // fixes succeed, nothing crashes or hangs either way.
          (void)adapter->Push(fix, &out);
        }
        adapter->Finish(&out);
        ExpectCleanOrderedOutput(out, repro);
      }
    }
  }
}

TEST(DirtyMatrix, PolicedAdaptersAbsorbEveryFault) {
  for (const IngestMode mode : {IngestMode::kDropAndCount, IngestMode::kRepair}) {
    IngestPolicy policy;
    policy.mode = mode;
    policy.reorder_window_s = mode == IngestMode::kRepair ? 30.0 : 0.0;
    for (const AdapterFactory& factory : AllAdapterFactories()) {
      for (const std::string& family : DirtyFamilies()) {
        for (uint64_t seed = kBaseSeed; seed < kBaseSeed + 3; ++seed) {
          const std::string repro =
              "repro: family=" + family + " seed=" + std::to_string(seed) +
              " adapter=" + factory.name +
              " mode=" + std::string(IngestModeToString(mode));
          PolicedCompressor adapter(factory.make(), policy,
                                    "dirty-matrix-" + factory.name);
          std::vector<TimedPoint> out;
          for (const TimedPoint& fix : GenerateDirty(family, seed)) {
            EXPECT_TRUE(adapter.Push(fix, &out).ok()) << repro;
          }
          adapter.Finish(&out);
          ExpectCleanOrderedOutput(out, repro);
        }
      }
    }
  }
}

TEST(DirtyMatrix, NanCoordinateTrajectoriesDontCrashAlgorithms) {
  // FromPoints only validates time order, so NaN *coordinates* can reach
  // the batch entry points on a "valid" trajectory. Algorithms may keep
  // anything they like under NaN geometry, but they must not crash and
  // must return valid, strictly increasing indices.
  for (uint64_t seed = kBaseSeed; seed < kBaseSeed + 3; ++seed) {
    std::vector<TimedPoint> dirty = GenerateDirty("dirty-nan-coord", seed);
    for (size_t i = 0; i < dirty.size(); ++i) {
      dirty[i].t = static_cast<double>(i);  // Clean times, dirty geometry.
    }
    const Result<Trajectory> trajectory = Trajectory::FromPoints(dirty);
    ASSERT_TRUE(trajectory.ok());
    for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
      for (double epsilon : EpsilonLadder()) {
        algo::AlgorithmParams params;
        params.epsilon_m = epsilon;
        const algo::IndexList kept = info.run(*trajectory, params);
        const std::string repro = "repro: family=dirty-nan-coord seed=" +
                                  std::to_string(seed) + " algo=" + info.name;
        for (size_t i = 0; i < kept.size(); ++i) {
          ASSERT_LT(kept[i], trajectory->size()) << repro;
          if (i > 0) {
            ASSERT_LT(kept[i - 1], kept[i]) << repro;
          }
        }
      }
    }
  }
}

TEST(DirtyGenerator, IsDeterministicAndActuallyDirty) {
  for (const std::string& family : DirtyFamilies()) {
    const std::vector<TimedPoint> a = GenerateDirty(family, kBaseSeed);
    const std::vector<TimedPoint> b = GenerateDirty(family, kBaseSeed);
    ASSERT_EQ(a.size(), b.size()) << family;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(TimedPoint)), 0)
          << family << " index " << i;
    }
    if (family == "dirty-single") {
      EXPECT_EQ(a.size(), 1u);
      continue;
    }
    // Every other family must violate the clean-trajectory invariant
    // somewhere: non-increasing or non-finite values.
    bool violates = false;
    for (size_t i = 0; i < a.size(); ++i) {
      violates |= !std::isfinite(a[i].t) || !std::isfinite(a[i].position.x) ||
                  !std::isfinite(a[i].position.y);
      if (i > 0) {
        violates |= !(a[i].t > a[i - 1].t);
      }
    }
    EXPECT_TRUE(violates) << family << " generated a clean feed";
  }
}

std::string CaseName(const ::testing::TestParamInfo<CorpusCase>& info) {
  std::string name =
      info.param.family + "_seed" + std::to_string(info.param.seed);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AdversarialCorpus, CorpusProperty,
                         ::testing::ValuesIn(Corpus()), CaseName);

}  // namespace
}  // namespace stcomp::proptest
