#include "proptest/generator.h"

#include <cmath>
#include <limits>
#include <ostream>

#include "stcomp/common/check.h"
#include "stcomp/sim/random.h"

namespace stcomp::proptest {

namespace {

// SplitMix-style fold so (family, seed) pairs land on unrelated streams.
uint64_t MixSeed(const std::string& family, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : family) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  return h ^ (seed * 0x9e3779b97f4a7c15ull);
}

// Point count in [lo, hi], seed-dependent.
int Count(Rng* rng, int lo, int hi) {
  return lo + static_cast<int>(rng->NextBelow(
                  static_cast<uint64_t>(hi - lo + 1)));
}

Trajectory Walk(Rng* rng, int n, double t0, double dt_lo, double dt_hi,
                double scale) {
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  double t = t0;
  Vec2 position{scale * rng->NextUniform(-1.0, 1.0),
                scale * rng->NextUniform(-1.0, 1.0)};
  for (int i = 0; i < n; ++i) {
    points.emplace_back(t, position);
    t += rng->NextUniform(dt_lo, dt_hi);
    position += {scale * rng->NextUniform(-1.0, 1.0),
                 scale * rng->NextUniform(-1.0, 1.0)};
  }
  return Trajectory::FromUnordered(std::move(points));
}

}  // namespace

const std::vector<std::string>& AllFamilies() {
  static const std::vector<std::string>* const kFamilies =
      new std::vector<std::string>{
          "empty",           "single",         "two",
          "stationary",      "collinear",      "collinear-jitter",
          "near-dup-times",  "dup-times",      "tiny-scale",
          "huge-scale",      "huge-epoch",     "spike",
          "zigzag",          "walk",           "stop-and-go",
          "backtrack",       "monotone",
      };
  return *kFamilies;
}

Trajectory Generate(const std::string& family, uint64_t seed) {
  Rng rng(MixSeed(family, seed));
  if (family == "empty") {
    return Trajectory();
  }
  if (family == "single") {
    return Trajectory::FromUnordered(
        {{rng.NextUniform(-1e3, 1e3), rng.NextUniform(-1e4, 1e4),
          rng.NextUniform(-1e4, 1e4)}});
  }
  if (family == "two") {
    const double t0 = rng.NextUniform(0.0, 100.0);
    return Trajectory::FromUnordered(
        {{t0, rng.NextUniform(-100.0, 100.0), rng.NextUniform(-100.0, 100.0)},
         {t0 + rng.NextUniform(1e-6, 100.0), rng.NextUniform(-100.0, 100.0),
          rng.NextUniform(-100.0, 100.0)}});
  }
  if (family == "stationary") {
    // Zero motion: every derived speed is 0, headings are undefined.
    const int n = Count(&rng, 3, 80);
    const Vec2 at{rng.NextUniform(-1e4, 1e4), rng.NextUniform(-1e4, 1e4)};
    std::vector<TimedPoint> points;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      points.emplace_back(t, at);
      t += rng.NextUniform(0.1, 30.0);
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "collinear" || family == "collinear-jitter") {
    // A straight constant-direction run at irregular speed; with jitter,
    // deviations of ~1e-9 m exercise the zero-discriminant branches.
    const int n = Count(&rng, 3, 120);
    const double heading = rng.NextUniform(0.0, 6.28318530717958647692);
    const Vec2 dir{std::cos(heading), std::sin(heading)};
    const bool jitter = family == "collinear-jitter";
    std::vector<TimedPoint> points;
    double t = 0.0;
    double s = 0.0;
    for (int i = 0; i < n; ++i) {
      Vec2 p = dir * s;
      if (jitter) {
        p += {1e-9 * rng.NextUniform(-1.0, 1.0),
              1e-9 * rng.NextUniform(-1.0, 1.0)};
      }
      points.emplace_back(t, p);
      t += rng.NextUniform(0.5, 20.0);
      s += rng.NextUniform(0.0, 300.0);
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "near-dup-times") {
    // Bursts of samples nanoseconds apart: huge derived speeds, near-zero
    // segment durations.
    const int n = Count(&rng, 4, 100);
    std::vector<TimedPoint> points;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      points.emplace_back(t, rng.NextUniform(-500.0, 500.0),
                          rng.NextUniform(-500.0, 500.0));
      t += rng.NextBool(0.4) ? rng.NextUniform(1e-9, 1e-6)
                             : rng.NextUniform(1.0, 10.0);
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "dup-times") {
    // Unsorted input with exact duplicate timestamps; FromUnordered's
    // sort + dedup is part of the surface under test.
    const int n = Count(&rng, 4, 100);
    std::vector<TimedPoint> points;
    for (int i = 0; i < n; ++i) {
      const double t = std::floor(rng.NextUniform(0.0, 30.0));
      points.emplace_back(t, rng.NextUniform(-500.0, 500.0),
                          rng.NextUniform(-500.0, 500.0));
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "tiny-scale") {
    // Micrometre geometry, millisecond steps.
    return Walk(&rng, Count(&rng, 3, 100), 0.0, 1e-3, 1e-2, 1e-6);
  }
  if (family == "huge-scale") {
    // Continental-scale jumps (1e6 m steps): cancellation territory for
    // the closed-form error integrals.
    return Walk(&rng, Count(&rng, 3, 100), 0.0, 10.0, 1000.0, 1e6);
  }
  if (family == "huge-epoch") {
    // Ordinary motion stamped ~30 years after the epoch: absolute times
    // near 1e9 s with second-scale deltas.
    return Walk(&rng, Count(&rng, 3, 100), 1e9, 1.0, 30.0, 50.0);
  }
  if (family == "spike") {
    // A calm walk with occasional 100 km teleports (GPS glitches).
    const int n = Count(&rng, 4, 120);
    std::vector<TimedPoint> points;
    double t = 0.0;
    Vec2 position{0.0, 0.0};
    for (int i = 0; i < n; ++i) {
      Vec2 p = position;
      if (rng.NextBool(0.1)) {
        p += {1e5 * rng.NextUniform(-1.0, 1.0),
              1e5 * rng.NextUniform(-1.0, 1.0)};
      }
      points.emplace_back(t, p);
      t += rng.NextUniform(1.0, 10.0);
      position += {30.0 * rng.NextUniform(-1.0, 1.0),
                   30.0 * rng.NextUniform(-1.0, 1.0)};
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "zigzag") {
    // Maximal heading change at every sample.
    const int n = Count(&rng, 3, 120);
    const double amplitude = rng.NextUniform(1.0, 200.0);
    std::vector<TimedPoint> points;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      points.emplace_back(t, 10.0 * i, (i % 2 == 0) ? amplitude : -amplitude);
      t += rng.NextUniform(0.5, 5.0);
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "walk") {
    return Walk(&rng, Count(&rng, 3, 160), 0.0, 0.5, 15.0, 80.0);
  }
  if (family == "stop-and-go") {
    // Drive, dwell (exactly repeated position), drive: the regime where
    // spatial and spatiotemporal criteria disagree most.
    const int legs = Count(&rng, 2, 5);
    std::vector<TimedPoint> points;
    double t = 0.0;
    Vec2 position{0.0, 0.0};
    for (int leg = 0; leg < legs; ++leg) {
      const int n = Count(&rng, 2, 25);
      const bool moving = leg % 2 == 0;
      const Vec2 velocity{rng.NextUniform(-20.0, 20.0),
                          rng.NextUniform(-20.0, 20.0)};
      for (int i = 0; i < n; ++i) {
        points.emplace_back(t, position);
        const double dt = rng.NextUniform(1.0, 10.0);
        t += dt;
        if (moving) {
          position += velocity * dt;
        }
      }
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "monotone") {
    // Strictly x-monotone, hence simple (non-self-intersecting) and in
    // generic position: the documented guaranteed regime for the
    // Melkman-based path hull (path_hull.h).
    const int n = Count(&rng, 3, 140);
    std::vector<TimedPoint> points;
    double t = 0.0;
    double x = 0.0;
    double y = 0.0;
    for (int i = 0; i < n; ++i) {
      points.emplace_back(t, x, y);
      t += rng.NextUniform(0.5, 10.0);
      x += rng.NextUniform(1.0, 50.0);
      y += rng.NextUniform(-40.0, 40.0);
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  if (family == "backtrack") {
    // Out and back along the same polyline: self-overlapping geometry with
    // distinct timestamps.
    const int n = Count(&rng, 3, 60);
    std::vector<TimedPoint> out;
    double t = 0.0;
    Vec2 position{0.0, 0.0};
    for (int i = 0; i < n; ++i) {
      out.emplace_back(t, position);
      t += rng.NextUniform(1.0, 10.0);
      position += {rng.NextUniform(0.0, 50.0), rng.NextUniform(-25.0, 25.0)};
    }
    std::vector<TimedPoint> points = out;
    for (int i = n - 2; i >= 0; --i) {
      points.emplace_back(t, out[static_cast<size_t>(i)].position);
      t += rng.NextUniform(1.0, 10.0);
    }
    return Trajectory::FromUnordered(std::move(points));
  }
  STCOMP_CHECK(false);  // Unknown family; keep AllFamilies() in sync.
  return Trajectory();
}

const std::vector<std::string>& DirtyFamilies() {
  static const std::vector<std::string>* const kFamilies =
      new std::vector<std::string>{
          "dirty-single",       "dirty-all-dup-times", "dirty-nonmonotonic",
          "dirty-nan-coord",    "dirty-nan-time",      "dirty-mixed",
      };
  return *kFamilies;
}

std::vector<TimedPoint> GenerateDirty(const std::string& family,
                                      uint64_t seed) {
  Rng rng(MixSeed(family, seed));
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  if (family == "dirty-single") {
    return {{rng.NextUniform(-1e3, 1e3), rng.NextUniform(-1e4, 1e4),
             rng.NextUniform(-1e4, 1e4)}};
  }
  if (family == "dirty-all-dup-times") {
    // Every fix carries the same timestamp; only one may survive.
    const int n = Count(&rng, 2, 60);
    const double t = std::floor(rng.NextUniform(0.0, 1e4));
    std::vector<TimedPoint> points;
    for (int i = 0; i < n; ++i) {
      points.emplace_back(t, rng.NextUniform(-500.0, 500.0),
                          rng.NextUniform(-500.0, 500.0));
    }
    return points;
  }
  if (family == "dirty-nonmonotonic") {
    // Ordered walk with frequent backwards jumps.
    const int n = Count(&rng, 4, 100);
    std::vector<TimedPoint> points;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      points.emplace_back(t, rng.NextUniform(-500.0, 500.0),
                          rng.NextUniform(-500.0, 500.0));
      t += rng.NextBool(0.3) ? -rng.NextUniform(0.0, 20.0)
                             : rng.NextUniform(0.1, 10.0);
    }
    return points;
  }
  if (family == "dirty-nan-coord" || family == "dirty-nan-time" ||
      family == "dirty-mixed") {
    const bool nan_coord = family != "dirty-nan-time";
    const bool nan_time = family != "dirty-nan-coord";
    const bool shuffle_time = family == "dirty-mixed";
    const int n = Count(&rng, 4, 100);
    std::vector<TimedPoint> points;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      TimedPoint point{t, rng.NextUniform(-500.0, 500.0),
                       rng.NextUniform(-500.0, 500.0)};
      if (nan_coord && rng.NextBool(0.15)) {
        (rng.NextBool(0.5) ? point.position.x : point.position.y) = kNan;
      }
      if (nan_time && rng.NextBool(0.1)) {
        point.t = kNan;
      }
      points.push_back(point);
      t += shuffle_time && rng.NextBool(0.25) ? -rng.NextUniform(0.0, 15.0)
                                              : rng.NextUniform(0.1, 10.0);
    }
    return points;
  }
  STCOMP_CHECK(false);  // Unknown family; keep DirtyFamilies() in sync.
  return {};
}

std::vector<CorpusCase> BuildCorpus(uint64_t base_seed, int seeds_per_family) {
  std::vector<CorpusCase> corpus;
  for (const std::string& family : AllFamilies()) {
    for (int k = 0; k < seeds_per_family; ++k) {
      const uint64_t seed = base_seed + static_cast<uint64_t>(k);
      corpus.push_back({family, seed, Generate(family, seed)});
    }
  }
  return corpus;
}

std::string Describe(const CorpusCase& c) {
  return "family=" + c.family + " seed=" + std::to_string(c.seed);
}

void PrintTo(const CorpusCase& c, std::ostream* os) { *os << Describe(c); }

}  // namespace stcomp::proptest
