#include "proptest/oracles.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "stcomp/algo/compression.h"
#include "stcomp/algo/opening_window.h"
#include "stcomp/error/synchronous_error.h"
#include "stcomp/sim/random.h"
#include "stcomp/store/codec.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/varint.h"

namespace stcomp::proptest {

namespace {

std::string IndexListSummary(const algo::IndexList& kept) {
  std::ostringstream out;
  out << "[";
  const size_t limit = 20;
  for (size_t i = 0; i < kept.size() && i < limit; ++i) {
    if (i > 0) {
      out << ",";
    }
    out << kept[i];
  }
  if (kept.size() > limit) {
    out << ",... " << kept.size() << " total";
  }
  out << "]";
  return out.str();
}

}  // namespace

std::string FormatParams(const algo::AlgorithmParams& params) {
  std::ostringstream out;
  out << "epsilon_m=" << params.epsilon_m
      << " speed_threshold_mps=" << params.speed_threshold_mps
      << " keep_every=" << params.keep_every
      << " interval_s=" << params.interval_s
      << " min_heading_change_rad=" << params.min_heading_change_rad
      << " max_window=" << params.max_window;
  return out.str();
}

std::string CheckUniversalContracts(const Trajectory& trajectory,
                                    const algo::IndexList& kept) {
  const int n = static_cast<int>(trajectory.size());
  if (kept.size() > trajectory.size()) {
    return "output has more points than input: " +
           std::to_string(kept.size()) + " > " + std::to_string(n);
  }
  int previous = -1;
  for (int index : kept) {
    if (index < 0 || index >= n) {
      return "kept index " + std::to_string(index) + " out of range [0, " +
             std::to_string(n) + "): " + IndexListSummary(kept);
    }
    if (index <= previous) {
      return "kept indices not strictly increasing at " +
             std::to_string(index) + ": " + IndexListSummary(kept);
    }
    previous = index;
  }
  if (n >= 1) {
    if (kept.empty()) {
      return "non-empty input compressed to an empty index list";
    }
    if (kept.front() != 0) {
      return "first point dropped (kept.front()=" +
             std::to_string(kept.front()) + ")";
    }
    if (kept.back() != n - 1) {
      return "last point dropped (kept.back()=" + std::to_string(kept.back()) +
             ", expected " + std::to_string(n - 1) + ")";
    }
  }
  if (!algo::IsValidIndexList(trajectory, kept)) {
    return "IsValidIndexList rejects the output: " + IndexListSummary(kept);
  }
  // Output must be an exact point subset of the input (no resampling).
  const Trajectory approximation = trajectory.Subset(kept);
  for (size_t i = 0; i < kept.size(); ++i) {
    if (!(approximation[i] ==
          trajectory[static_cast<size_t>(kept[i])])) {
      return "Subset point " + std::to_string(i) +
             " differs from input point " + std::to_string(kept[i]);
    }
  }
  return "";
}

DistanceContract DistanceContractFor(std::string_view algorithm_name) {
  // Opening-window and top-down passes only discard a point after a clean
  // window/range check against the exact segment they go on to keep, so
  // the per-point bound transfers to the output. SQUISH-E's carry term
  // keeps its priorities an upper bound on the true SED. ndp-hull is NOT
  // in the class: its Melkman half-hulls are only guaranteed on simple
  // chains (see path_hull.h), and the harness's self-intersecting corpora
  // (spike, tiny-scale walks) do drive it past epsilon — it gets the
  // differential simple-chain oracle in the runner instead.
  for (const char* name : {"ndp", "nopw", "bopw", "sliding"}) {
    if (algorithm_name == name) {
      return DistanceContract::kPerpendicular;
    }
  }
  for (const char* name : {"td-tr", "opw-tr", "opw-sp", "td-sp", "squish-e"}) {
    if (algorithm_name == name) {
      return DistanceContract::kSynchronized;
    }
  }
  return DistanceContract::kNone;
}

bool KeptCountMonotoneInEpsilon(std::string_view algorithm_name) {
  // Top-down splitting picks the split point independently of epsilon, so
  // the recursion tree for a larger epsilon is a pruned prefix of the
  // smaller one and keep-sets nest. Greedy window passes do not nest, and
  // ndp-hull's split choice can drift with the hull's rebuild history on
  // non-simple chains, so only the naive top-down passes are listed.
  return algorithm_name == "ndp" || algorithm_name == "td-tr";
}

std::string CheckDiscardedWithinEpsilon(const Trajectory& trajectory,
                                        const algo::IndexList& kept,
                                        double epsilon,
                                        DistanceContract contract) {
  if (contract == DistanceContract::kNone || kept.size() < 2) {
    return "";
  }
  // The algorithms and this oracle call the same distance functions with
  // the same arguments, so the slack only absorbs accumulated-bound
  // effects (SQUISH-E) and is otherwise untouched.
  const double bound = epsilon + 1e-9 * (1.0 + epsilon);
  for (size_t s = 0; s + 1 < kept.size(); ++s) {
    const int a = kept[s];
    const int b = kept[s + 1];
    for (int i = a + 1; i < b; ++i) {
      const double d =
          contract == DistanceContract::kPerpendicular
              ? algo::PerpendicularWindowDistance(trajectory, a, b, i)
              : algo::SynchronizedWindowDistance(trajectory, a, b, i);
      if (!(d <= bound)) {  // Also catches NaN.
        std::ostringstream out;
        out << "discarded point " << i << " is " << d
            << " m from kept segment (" << a << ", " << b
            << "), above epsilon=" << epsilon << " ("
            << (contract == DistanceContract::kPerpendicular
                    ? "perpendicular"
                    : "synchronized")
            << " contract)";
        return out.str();
      }
    }
  }
  return "";
}

std::string CheckSynchronousErrorAgreement(const Trajectory& original,
                                           const Trajectory& approximation) {
  if (original.size() < 2 || approximation.size() < 2) {
    return "";  // The error notion needs a time interval on both sides.
  }
  const Result<double> closed = SynchronousError(original, approximation);
  if (!closed.ok()) {
    return "SynchronousError failed: " + closed.status().ToString();
  }
  if (!std::isfinite(*closed) || *closed < 0.0) {
    return "SynchronousError not finite/non-negative: " +
           std::to_string(*closed);
  }
  const Result<double> max_error =
      MaxSynchronousError(original, approximation);
  if (!max_error.ok()) {
    return "MaxSynchronousError failed: " + max_error.status().ToString();
  }
  if (!std::isfinite(*max_error)) {
    return "MaxSynchronousError not finite: " + std::to_string(*max_error);
  }
  if (*max_error + 1e-9 * (1.0 + *max_error) < *closed) {
    return "max synchronous error " + std::to_string(*max_error) +
           " below the average " + std::to_string(*closed);
  }
  // Differential check against the adaptive-Simpson integrator. The
  // per-interval tolerance scales with the integral's magnitude so huge-
  // and tiny-scale corpora both terminate quickly and compare fairly.
  const double tolerance =
      1e-12 * (1.0 + *max_error * original.Duration());
  const Result<double> numeric =
      SynchronousErrorNumeric(original, approximation, tolerance);
  if (!numeric.ok()) {
    return "SynchronousErrorNumeric failed: " + numeric.status().ToString();
  }
  if (std::abs(*closed - *numeric) > 1e-6 * (1.0 + *numeric)) {
    std::ostringstream out;
    out << "closed-form/numeric disagreement: closed=" << *closed
        << " numeric=" << *numeric;
    return out.str();
  }
  return "";
}

std::string CheckStoreRoundTrip(const Trajectory& trajectory) {
  const size_t n = trajectory.size();
  // Raw codec: bit-exact.
  {
    std::string buffer;
    const Status status = EncodePoints(trajectory, Codec::kRaw, &buffer);
    if (!status.ok()) {
      return "raw encode failed: " + status.ToString();
    }
    if (buffer.size() != 24 * n) {
      return "raw payload is " + std::to_string(buffer.size()) +
             " bytes, expected " + std::to_string(24 * n);
    }
    std::string_view cursor = buffer;
    const auto decoded = DecodePoints(&cursor, Codec::kRaw, n);
    if (!decoded.ok()) {
      return "raw decode failed: " + decoded.status().ToString();
    }
    if (!cursor.empty()) {
      return "raw decode left " + std::to_string(cursor.size()) +
             " trailing bytes";
    }
    if (*decoded != trajectory.points()) {
      return "raw round-trip is not bit-exact";
    }
  }
  // Delta codec: within the documented quanta, idempotent after the first
  // quantisation.
  {
    std::string buffer;
    const Status status = EncodePoints(trajectory, Codec::kDelta, &buffer);
    if (!status.ok()) {
      return "delta encode failed: " + status.ToString();
    }
    std::string_view cursor = buffer;
    const auto decoded = DecodePoints(&cursor, Codec::kDelta, n);
    if (!decoded.ok()) {
      return "delta decode failed: " + decoded.status().ToString();
    }
    if (!cursor.empty()) {
      return "delta decode left " + std::to_string(cursor.size()) +
             " trailing bytes";
    }
    for (size_t i = 0; i < n; ++i) {
      // quantum/2 for the rounding itself plus a relative term for the
      // float error of quantised * quantum at large magnitudes.
      const TimedPoint& in = trajectory[i];
      const TimedPoint& out = (*decoded)[i];
      const double t_tol = kTimeQuantumS / 2 + 1e-12 * (1.0 + std::abs(in.t));
      const double c_tol =
          kCoordQuantumM / 2 +
          1e-12 * (1.0 + std::abs(in.position.x) + std::abs(in.position.y));
      if (std::abs(in.t - out.t) > t_tol ||
          std::abs(in.position.x - out.position.x) > c_tol ||
          std::abs(in.position.y - out.position.y) > c_tol) {
        return "delta round-trip exceeded quantisation bound at point " +
               std::to_string(i);
      }
    }
    // Idempotence needs the quantised series to still be a valid
    // trajectory; sub-millisecond steps legitimately collapse.
    Result<Trajectory> quantised = Trajectory::FromPoints(*decoded);
    if (quantised.ok()) {
      std::string buffer2;
      const Status status2 =
          EncodePoints(*quantised, Codec::kDelta, &buffer2);
      if (!status2.ok()) {
        return "delta re-encode failed: " + status2.ToString();
      }
      if (buffer2 != buffer) {
        return "delta re-encode of quantised data is not byte-identical";
      }
    }
  }
  // Sub-millisecond steps legitimately collapse under the delta codec's
  // documented time quantum; the frame then must fail *cleanly* with
  // kInvalidArgument when rebuilt, never crash or return garbage.
  bool sub_quantum_steps = false;
  for (size_t i = 0; i + 1 < n; ++i) {
    if (trajectory[i + 1].t - trajectory[i].t < 2 * kTimeQuantumS) {
      sub_quantum_steps = true;
      break;
    }
  }
  // CRC-framed serialization, both codecs, with a name.
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    Trajectory named = trajectory;
    named.set_name("prop-object");
    const Result<std::string> frame = SerializeTrajectory(named, codec);
    if (!frame.ok()) {
      return "serialize failed: " + frame.status().ToString();
    }
    std::string_view cursor = *frame;
    const Result<Trajectory> decoded = DeserializeTrajectory(&cursor);
    if (!decoded.ok()) {
      if (codec == Codec::kDelta && sub_quantum_steps &&
          decoded.status().code() == StatusCode::kInvalidArgument) {
        continue;  // Documented quantisation collapse, clean failure.
      }
      return "deserialize failed: " + decoded.status().ToString();
    }
    if (!cursor.empty()) {
      return "deserialize left " + std::to_string(cursor.size()) +
             " trailing bytes";
    }
    if (decoded->name() != "prop-object") {
      return "name lost in serialization round-trip";
    }
    if (decoded->size() != n) {
      return "serialization changed point count: " +
             std::to_string(decoded->size()) + " != " + std::to_string(n);
    }
    if (codec == Codec::kRaw && decoded->points() != trajectory.points()) {
      return "raw serialization round-trip is not bit-exact";
    }
  }
  return "";
}

std::string CheckVarintRoundTrip(uint64_t seed) {
  Rng rng(seed);
  for (int trial = 0; trial < 256; ++trial) {
    // Shift so every byte-length class is exercised, not just 10-byte ones.
    const int shift = static_cast<int>(rng.NextBelow(64));
    const uint64_t value = rng.NextUint64() >> shift;
    std::string buffer;
    PutVarint(value, &buffer);
    const int bits = 64 - std::countl_zero(value | 1);
    const size_t expected_size = static_cast<size_t>((bits + 6) / 7);
    if (buffer.size() != expected_size) {
      return "varint for " + std::to_string(value) + " used " +
             std::to_string(buffer.size()) + " bytes, expected " +
             std::to_string(expected_size);
    }
    std::string_view cursor = buffer;
    const Result<uint64_t> back = GetVarint(&cursor);
    if (!back.ok() || *back != value || !cursor.empty()) {
      return "varint round-trip failed for " + std::to_string(value);
    }
    std::string_view truncated(buffer.data(), buffer.size() - 1);
    if (GetVarint(&truncated).ok()) {
      return "varint truncation not detected for " + std::to_string(value);
    }
    // Signed path: zigzag must be an exact involution and stay short for
    // small magnitudes.
    const int64_t signed_value = static_cast<int64_t>(rng.NextUint64() >> shift) *
                                 (rng.NextBool(0.5) ? 1 : -1);
    if (ZigZagDecode(ZigZagEncode(signed_value)) != signed_value) {
      return "zigzag round-trip failed for " + std::to_string(signed_value);
    }
    std::string signed_buffer;
    PutSignedVarint(signed_value, &signed_buffer);
    std::string_view signed_cursor = signed_buffer;
    const Result<int64_t> signed_back = GetSignedVarint(&signed_cursor);
    if (!signed_back.ok() || *signed_back != signed_value ||
        !signed_cursor.empty()) {
      return "signed varint round-trip failed for " +
             std::to_string(signed_value);
    }
  }
  return "";
}

}  // namespace stcomp::proptest
