// Deterministic adversarial trajectory generator for the property-based
// differential test harness. Every trajectory is a pure function of
// (family, seed), so any failing case is reproducible from the two values
// printed in the failure message.
//
// The families target the regimes where one-pass SED simplifiers and
// delta codecs are known to be fragile (cf. Lin et al., "One-Pass
// Trajectory Simplification Using the Synchronous Euclidean Distance"):
// degenerate sizes, zero-motion runs, collinearity, near-duplicate
// timestamps, and extreme coordinate scales.

#ifndef STCOMP_TESTS_PROPTEST_GENERATOR_H_
#define STCOMP_TESTS_PROPTEST_GENERATOR_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "stcomp/core/trajectory.h"

namespace stcomp::proptest {

// One generated input: the trajectory plus the identity needed to
// regenerate it (`Generate(family, seed)`).
struct CorpusCase {
  std::string family;
  uint64_t seed = 0;
  Trajectory trajectory;
};

// Stable list of family names; the corpus sweep iterates this, so a new
// family added here is automatically picked up by every property test.
const std::vector<std::string>& AllFamilies();

// The adversarial generator. Deterministic: equal (family, seed) always
// yields an identical trajectory. Aborts (STCOMP_CHECK) on an unknown
// family name — tests enumerate AllFamilies().
Trajectory Generate(const std::string& family, uint64_t seed);

// The full cross product AllFamilies() x {base_seed .. base_seed+seeds-1}.
std::vector<CorpusCase> BuildCorpus(uint64_t base_seed, int seeds_per_family);

// Dirty mode: raw fix vectors that violate the Trajectory invariant —
// duplicate and non-monotonic timestamps, NaN coordinates, NaN times.
// Returned as plain vectors because Trajectory refuses them (and sorting
// NaN timestamps is outright UB); they feed the ingest-hardening matrix,
// where every adapter and gate must answer with a clean Status, never a
// crash or out-of-order output. Deterministic in (family, seed), like
// Generate().
const std::vector<std::string>& DirtyFamilies();
std::vector<TimedPoint> GenerateDirty(const std::string& family,
                                      uint64_t seed);

// "family=spike seed=42" — the reproduction prefix for failure messages.
std::string Describe(const CorpusCase& c);

// gtest value-printer (found by ADL) so parameterised failures identify
// the corpus case instead of dumping raw bytes.
void PrintTo(const CorpusCase& c, std::ostream* os);

}  // namespace stcomp::proptest

#endif  // STCOMP_TESTS_PROPTEST_GENERATOR_H_
