#include <gtest/gtest.h>

#include "stcomp/algo/opening_window.h"
#include "stcomp/algo/registry.h"
#include "stcomp/algo/spatiotemporal.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/stream/batch_adapter.h"
#include "stcomp/stream/dead_reckoning_stream.h"
#include "stcomp/stream/online_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "test_util.h"

namespace stcomp {
namespace {

using algo::BreakPolicy;
using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

struct StreamCase {
  uint64_t seed;
  double epsilon;
};

class StreamBatchEquivalence : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamBatchEquivalence, NopwStreamMatchesBatch) {
  const Trajectory trajectory = RandomWalk(150, GetParam().seed);
  OpeningWindowStream stream(GetParam().epsilon, BreakPolicy::kNormal,
                             StreamCriterion::kPerpendicular);
  const Trajectory streamed = CompressStream(trajectory, &stream).value();
  const Trajectory batch =
      trajectory.Subset(algo::Nopw(trajectory, GetParam().epsilon));
  EXPECT_EQ(streamed.points(), batch.points());
}

TEST_P(StreamBatchEquivalence, BopwStreamMatchesBatch) {
  const Trajectory trajectory = RandomWalk(150, GetParam().seed);
  OpeningWindowStream stream(GetParam().epsilon, BreakPolicy::kBefore,
                             StreamCriterion::kPerpendicular);
  const Trajectory streamed = CompressStream(trajectory, &stream).value();
  const Trajectory batch =
      trajectory.Subset(algo::Bopw(trajectory, GetParam().epsilon));
  EXPECT_EQ(streamed.points(), batch.points());
}

TEST_P(StreamBatchEquivalence, OpwTrStreamMatchesBatch) {
  const Trajectory trajectory = RandomWalk(150, GetParam().seed);
  OpeningWindowStream stream(GetParam().epsilon, BreakPolicy::kNormal,
                             StreamCriterion::kSynchronized);
  const Trajectory streamed = CompressStream(trajectory, &stream).value();
  const Trajectory batch =
      trajectory.Subset(algo::OpwTr(trajectory, GetParam().epsilon));
  EXPECT_EQ(streamed.points(), batch.points());
}

TEST_P(StreamBatchEquivalence, OpwSpStreamMatchesBatch) {
  const Trajectory trajectory = RandomWalk(150, GetParam().seed);
  for (double speed : {5.0, 15.0}) {
    OpeningWindowStream stream(GetParam().epsilon, BreakPolicy::kNormal,
                               StreamCriterion::kSpatiotemporal, speed);
    const Trajectory streamed = CompressStream(trajectory, &stream).value();
    const Trajectory batch = trajectory.Subset(
        algo::OpwSp(trajectory, GetParam().epsilon, speed));
    EXPECT_EQ(streamed.points(), batch.points()) << "speed=" << speed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamBatchEquivalence,
    ::testing::Values(StreamCase{1, 10.0}, StreamCase{2, 30.0},
                      StreamCase{3, 60.0}, StreamCase{4, 100.0},
                      StreamCase{5, 5.0}, StreamCase{6, 45.0}));

TEST(OpeningWindowStreamTest, RejectsNonMonotoneTime) {
  OpeningWindowStream stream(10.0, BreakPolicy::kNormal,
                             StreamCriterion::kPerpendicular);
  std::vector<TimedPoint> out;
  EXPECT_TRUE(stream.Push({0.0, 0.0, 0.0}, &out).ok());
  EXPECT_FALSE(stream.Push({0.0, 1.0, 1.0}, &out).ok());
  EXPECT_FALSE(stream.Push({-1.0, 1.0, 1.0}, &out).ok());
}

TEST(OpeningWindowStreamTest, EmitsFirstPointImmediately) {
  OpeningWindowStream stream(10.0, BreakPolicy::kNormal,
                             StreamCriterion::kPerpendicular);
  std::vector<TimedPoint> out;
  ASSERT_TRUE(stream.Push({0.0, 1.0, 2.0}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], TimedPoint(0.0, 1.0, 2.0));
}

TEST(OpeningWindowStreamTest, BufferGrowsOnlyUntilCut) {
  // On a straight line, the buffer grows without bound (that's the
  // documented opening-window behaviour); on a jagged walk it stays small.
  const Trajectory jagged = RandomWalk(300, 7, 200.0);
  OpeningWindowStream stream(20.0, BreakPolicy::kNormal,
                             StreamCriterion::kPerpendicular);
  std::vector<TimedPoint> out;
  size_t max_buffer = 0;
  for (const TimedPoint& point : jagged.points()) {
    ASSERT_TRUE(stream.Push(point, &out).ok());
    max_buffer = std::max(max_buffer, stream.buffered_points());
  }
  EXPECT_LT(max_buffer, 100u);
}

TEST(OpeningWindowStreamTest, FinishFlushesTail) {
  const Trajectory trajectory = Line(10, 1.0, 5.0, 0.0);
  OpeningWindowStream stream(10.0, BreakPolicy::kNormal,
                             StreamCriterion::kPerpendicular);
  std::vector<TimedPoint> out;
  for (const TimedPoint& point : trajectory.points()) {
    ASSERT_TRUE(stream.Push(point, &out).ok());
  }
  EXPECT_EQ(out.size(), 1u);  // Only the anchor so far.
  stream.Finish(&out);
  ASSERT_EQ(out.size(), 2u);  // Countermeasure: the last point is kept.
  EXPECT_DOUBLE_EQ(out.back().t, 9.0);
  EXPECT_EQ(stream.buffered_points(), 0u);
}

TEST(DeadReckoningTest, ConstantVelocityEmitsAlmostNothing) {
  const Trajectory trajectory = Line(100, 10.0, 12.0, 3.0);
  DeadReckoningStream stream(5.0);
  const Trajectory compressed = CompressStream(trajectory, &stream).value();
  // First point + calibration-free straight run + flushed last point.
  EXPECT_LE(compressed.size(), 3u);
  EXPECT_DOUBLE_EQ(compressed.front().t, trajectory.front().t);
  EXPECT_DOUBLE_EQ(compressed.back().t, trajectory.back().t);
}

TEST(DeadReckoningTest, TurnTriggersCommit) {
  // Straight east, then a right-angle turn north.
  std::vector<TimedPoint> points;
  for (int i = 0; i < 10; ++i) {
    points.emplace_back(i * 10.0, i * 100.0, 0.0);
  }
  for (int i = 0; i < 10; ++i) {
    points.emplace_back((10 + i) * 10.0, 900.0, (i + 1) * 100.0);
  }
  const Trajectory trajectory = Traj(std::move(points));
  DeadReckoningStream stream(20.0);
  const Trajectory compressed = CompressStream(trajectory, &stream).value();
  EXPECT_GT(compressed.size(), 2u);
  EXPECT_LT(compressed.size(), trajectory.size());
}

TEST(DeadReckoningTest, PredictionErrorBoundedBetweenCommits) {
  const Trajectory trajectory = RandomWalk(200, 9);
  const double epsilon = 50.0;
  DeadReckoningStream stream(epsilon);
  std::vector<TimedPoint> out;
  for (const TimedPoint& point : trajectory.points()) {
    ASSERT_TRUE(stream.Push(point, &out).ok());
  }
  stream.Finish(&out);
  // Every original point was either committed or its prediction error at
  // push time was <= epsilon; weak but meaningful: committed points are a
  // subset of the original points.
  for (const TimedPoint& point : out) {
    bool found = false;
    for (const TimedPoint& original : trajectory.points()) {
      found |= original == point;
    }
    EXPECT_TRUE(found);
  }
}

TEST(BatchAdapterTest, MatchesDirectBatchRun) {
  const Trajectory trajectory = RandomWalk(120, 15);
  const algo::AlgorithmInfo* info = algo::FindAlgorithm("td-tr").value();
  algo::AlgorithmParams params;
  params.epsilon_m = 40.0;
  BatchAdapter adapter(info->run, params, "td-tr-batch");
  const Trajectory streamed = CompressStream(trajectory, &adapter).value();
  const Trajectory direct =
      trajectory.Subset(algo::TdTr(trajectory, 40.0));
  EXPECT_EQ(streamed.points(), direct.points());
  EXPECT_EQ(adapter.name(), "td-tr-batch");
}

TEST(BatchAdapterTest, BuffersEverythingUntilFinish) {
  const Trajectory trajectory = RandomWalk(50, 16);
  const algo::AlgorithmInfo* info = algo::FindAlgorithm("ndp").value();
  BatchAdapter adapter(info->run, algo::AlgorithmParams{}, "ndp");
  std::vector<TimedPoint> out;
  for (const TimedPoint& point : trajectory.points()) {
    ASSERT_TRUE(adapter.Push(point, &out).ok());
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(adapter.buffered_points(), trajectory.size());
  adapter.Finish(&out);
  EXPECT_GE(out.size(), 2u);
}

}  // namespace
}  // namespace stcomp
