#include <gtest/gtest.h>

#include "stcomp/algo/squish.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/squish_stream.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::RandomWalk;

std::unique_ptr<OnlineCompressor> MakeOpwTr(double epsilon) {
  return std::make_unique<OpeningWindowStream>(
      epsilon, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
}

TEST(SquishStreamTest, MatchesBatchSquishE) {
  const Trajectory trajectory = RandomWalk(150, 1);
  for (double mu : {15.0, 50.0}) {
    SquishStream stream(0, mu);
    const Trajectory streamed = CompressStream(trajectory, &stream).value();
    const Trajectory batch =
        trajectory.Subset(algo::SquishE(trajectory, mu));
    EXPECT_EQ(streamed.points(), batch.points()) << "mu=" << mu;
  }
}

TEST(SquishStreamTest, MatchesBatchSquishCapacity) {
  const Trajectory trajectory = RandomWalk(150, 2);
  for (size_t capacity : {8u, 32u}) {
    SquishStream stream(capacity, 0.0);
    const Trajectory streamed = CompressStream(trajectory, &stream).value();
    const Trajectory batch =
        trajectory.Subset(algo::Squish(trajectory, capacity));
    EXPECT_EQ(streamed.points(), batch.points()) << "capacity=" << capacity;
  }
}

TEST(SquishStreamTest, BufferStaysBounded) {
  const Trajectory trajectory = RandomWalk(500, 3);
  SquishStream stream(16, 0.0);
  std::vector<TimedPoint> out;
  for (const TimedPoint& point : trajectory.points()) {
    ASSERT_TRUE(stream.Push(point, &out).ok());
    EXPECT_LE(stream.buffered_points(), 17u);
  }
  stream.Finish(&out);
  EXPECT_LE(out.size(), 16u);
  EXPECT_EQ(out.front(), trajectory.front());
  EXPECT_EQ(out.back(), trajectory.back());
}

TEST(SquishStreamTest, RejectsNonMonotone) {
  SquishStream stream(8, 0.0);
  std::vector<TimedPoint> out;
  ASSERT_TRUE(stream.Push({0.0, 0.0, 0.0}, &out).ok());
  EXPECT_FALSE(stream.Push({0.0, 1.0, 0.0}, &out).ok());
}

TEST(FleetCompressorTest, RoutesInterleavedStreams) {
  TrajectoryStore store(Codec::kRaw);
  FleetCompressor fleet([] { return MakeOpwTr(30.0); }, &store);
  const Trajectory a = RandomWalk(60, 4);
  const Trajectory b = RandomWalk(80, 5);
  // Interleave pushes.
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.size() || ib < b.size()) {
    if (ia < a.size()) {
      ASSERT_TRUE(fleet.Push("car-a", a[ia++]).ok());
    }
    if (ib < b.size()) {
      ASSERT_TRUE(fleet.Push("car-b", b[ib++]).ok());
    }
  }
  EXPECT_EQ(fleet.active_objects(), 2u);
  EXPECT_EQ(fleet.fixes_in(), a.size() + b.size());
  ASSERT_TRUE(fleet.FinishAll().ok());
  EXPECT_EQ(fleet.active_objects(), 0u);

  // Per-object results equal single-object streaming runs.
  for (const auto& [id, source] :
       {std::pair{"car-a", a}, std::pair{"car-b", b}}) {
    auto solo = MakeOpwTr(30.0);
    const Trajectory expected = CompressStream(source, solo.get()).value();
    const Trajectory stored = store.Get(id).value();
    EXPECT_EQ(stored.points(), expected.points()) << id;
  }
  EXPECT_EQ(fleet.fixes_out(),
            store.Get("car-a").value().size() +
                store.Get("car-b").value().size());
  EXPECT_LE(fleet.fixes_out(), fleet.fixes_in());
}

TEST(FleetCompressorTest, OutOfOrderFixRejectedPerObject) {
  TrajectoryStore store(Codec::kRaw);
  FleetCompressor fleet([] { return MakeOpwTr(30.0); }, &store);
  ASSERT_TRUE(fleet.Push("x", {10.0, 0.0, 0.0}).ok());
  EXPECT_FALSE(fleet.Push("x", {5.0, 1.0, 0.0}).ok());
  // Other objects are unaffected, including ones with earlier clocks.
  EXPECT_TRUE(fleet.Push("y", {5.0, 1.0, 0.0}).ok());
}

TEST(FleetCompressorTest, FinishObjectFlushesTail) {
  TrajectoryStore store(Codec::kRaw);
  FleetCompressor fleet([] { return MakeOpwTr(1000.0); }, &store);
  const Trajectory a = RandomWalk(30, 6);
  for (const TimedPoint& point : a.points()) {
    ASSERT_TRUE(fleet.Push("solo", point).ok());
  }
  EXPECT_GT(fleet.buffered_points(), 0u);
  ASSERT_TRUE(fleet.FinishObject("solo").ok());
  EXPECT_EQ(fleet.FinishObject("solo").code(), StatusCode::kNotFound);
  const Trajectory stored = store.Get("solo").value();
  // Huge epsilon: only endpoints survive, but the tail IS flushed.
  EXPECT_EQ(stored.front(), a.front());
  EXPECT_EQ(stored.back(), a.back());
  EXPECT_LE(fleet.fixes_out(), fleet.fixes_in());
}

TEST(FleetCompressorTest, DrainAccountingConsistentOnStoreError) {
  TrajectoryStore store(Codec::kRaw);
  FleetCompressor fleet([] { return MakeOpwTr(30.0); }, &store);
  // The opening window commits its anchor immediately.
  ASSERT_TRUE(fleet.Push("x", {0.0, 0.0, 0.0}).ok());
  ASSERT_EQ(fleet.fixes_out(), 1u);
  // Sabotage: advance the stored trajectory past the compressor's clock, so
  // the next drained commit fails the store's monotonicity check.
  ASSERT_TRUE(store.Append("x", {1000.0, 1.0, 1.0}).ok());
  ASSERT_TRUE(fleet.Push("x", {10.0, 50.0, 0.0}).ok());
  // This push breaks the window, committing the t=10 fix — whose store
  // append fails against the sabotaged clock, so the error surfaces here.
  EXPECT_FALSE(fleet.Push("x", {20.0, 0.0, 50.0}).ok());
  // Failed appends must not count as committed fixes: the invariant
  // fixes_out <= fixes_in survives mid-drain store errors, and the out
  // count still matches what the store actually accepted (the anchor plus
  // the sabotage point).
  EXPECT_EQ(fleet.fixes_in(), 3u);
  EXPECT_EQ(fleet.fixes_out(), 1u);
  EXPECT_LE(fleet.fixes_out(), fleet.fixes_in());
  EXPECT_EQ(store.Get("x").value().size(), 2u);
}

TEST(FleetCompressorTest, MetricsAgreeWithStoreAfterFinishAll) {
  TrajectoryStore store(Codec::kRaw);
  FleetCompressor fleet([] { return MakeOpwTr(25.0); }, &store, "mtest");
  EXPECT_EQ(fleet.instance(), "mtest");
  const Trajectory a = RandomWalk(70, 8);
  const Trajectory b = RandomWalk(90, 9);
  for (const TimedPoint& point : a.points()) {
    ASSERT_TRUE(fleet.Push("truck-a", point).ok());
  }
  for (const TimedPoint& point : b.points()) {
    ASSERT_TRUE(fleet.Push("truck-b", point).ok());
  }
  ASSERT_TRUE(fleet.FinishAll().ok());

  // The accessors are shims over this instance's registry series; all three
  // views — accessor, registry counter, store contents — must agree.
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"compressor", "mtest"}};
  EXPECT_EQ(
      registry.GetCounter("stcomp_stream_fixes_in_total", labels)->value(),
      fleet.fixes_in());
  EXPECT_EQ(
      registry.GetCounter("stcomp_stream_fixes_out_total", labels)->value(),
      fleet.fixes_out());
  EXPECT_EQ(fleet.fixes_in(), a.size() + b.size());
  EXPECT_EQ(fleet.fixes_out(), store.Get("truck-a").value().size() +
                                   store.Get("truck-b").value().size());
  EXPECT_LE(fleet.fixes_out(), fleet.fixes_in());

  // And the run must be scrapeable: the instance's series appear in the
  // Prometheus exposition with their label attached.
  const std::string prom =
      obs::RenderPrometheus(registry.Snapshot());
  EXPECT_NE(prom.find("stcomp_stream_fixes_in_total{compressor=\"mtest\"} " +
                      std::to_string(fleet.fixes_in())),
            std::string::npos);
  EXPECT_NE(prom.find("stcomp_stream_fixes_out_total{compressor=\"mtest\"} " +
                      std::to_string(fleet.fixes_out())),
            std::string::npos);
#if STCOMP_METRICS_ENABLED
  EXPECT_NE(
      prom.find("stcomp_stream_push_seconds_bucket{compressor=\"mtest\",le="),
      std::string::npos);
#endif
}

TEST(FleetCompressorTest, ManyObjectsScale) {
  TrajectoryStore store;
  FleetCompressor fleet([] { return MakeOpwTr(40.0); }, &store);
  std::vector<Trajectory> sources;
  for (uint64_t object = 0; object < 20; ++object) {
    sources.push_back(RandomWalk(50, 100 + object));
  }
  for (size_t step = 0; step < 50; ++step) {
    for (size_t object = 0; object < sources.size(); ++object) {
      ASSERT_TRUE(fleet
                      .Push("obj-" + std::to_string(object),
                            sources[object][step])
                      .ok());
    }
  }
  ASSERT_TRUE(fleet.FinishAll().ok());
  EXPECT_EQ(store.object_count(), 20u);
  EXPECT_EQ(fleet.fixes_in(), 1000u);
  EXPECT_LT(fleet.fixes_out(), fleet.fixes_in());
  size_t stored = 0;
  for (uint64_t object = 0; object < 20; ++object) {
    stored += store.Get("obj-" + std::to_string(object)).value().size();
  }
  EXPECT_EQ(fleet.fixes_out(), stored);
}

}  // namespace
}  // namespace stcomp
