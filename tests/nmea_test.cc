#include "stcomp/gps/nmea.h"

#include "stcomp/common/strings.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace stcomp {
namespace {

// A canonical RMC sentence (the classic example fix near Genoa).
constexpr char kRmc[] =
    "$GPRMC,225446,A,4916.45,N,12311.12,W,000.5,054.7,191194,020.3,E*68";

TEST(NmeaChecksumTest, KnownVectors) {
  // XOR of "GPRMC,..." payload must match the stated *68.
  const std::string_view sentence(kRmc);
  const std::string_view payload =
      sentence.substr(1, sentence.size() - 4);
  EXPECT_EQ(NmeaChecksum(payload), 0x68);
  EXPECT_EQ(NmeaChecksum(""), 0);
}

TEST(RmcParseTest, DecodesCanonicalSentence) {
  const RmcFix fix = ParseRmcSentence(kRmc).value();
  EXPECT_TRUE(fix.valid);
  EXPECT_NEAR(fix.position.lat_deg, 49.0 + 16.45 / 60.0, 1e-9);
  EXPECT_NEAR(fix.position.lon_deg, -(123.0 + 11.12 / 60.0), 1e-9);
  EXPECT_NEAR(fix.speed_mps, 0.5 * 0.514444, 1e-9);
  EXPECT_NEAR(fix.course_deg, 54.7, 1e-9);
  // 1994-11-19 22:54:46 UTC.
  EXPECT_DOUBLE_EQ(fix.unix_time_s, 785285686.0);
}

TEST(RmcParseTest, RejectsBadChecksum) {
  std::string corrupted(kRmc);
  corrupted[corrupted.size() - 1] = '9';
  EXPECT_EQ(ParseRmcSentence(corrupted).status().code(),
            StatusCode::kDataLoss);
}

TEST(RmcParseTest, NonRmcIsNotFound) {
  // A GGA sentence with a correct checksum.
  const std::string payload =
      "GPGGA,225446,4916.45,N,12311.12,W,1,08,0.9,545.4,M,46.9,M,,";
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "*%02X",
                NmeaChecksum(payload));
  const std::string sentence = "$" + payload + buffer;
  EXPECT_EQ(ParseRmcSentence(sentence).status().code(),
            StatusCode::kNotFound);
}

TEST(RmcParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseRmcSentence("").ok());
  EXPECT_FALSE(ParseRmcSentence("GPRMC no dollar").ok());
  EXPECT_FALSE(ParseRmcSentence("$GPRMC,225446,A*00").ok());
}

TEST(RmcParseTest, ChecksumFieldMustBeTwoHexDigits) {
  // "$AA" has payload XOR 0, so a parser that turns garbage hex into 0
  // (strtoll) would accept "*ZZ" as a *matching* checksum. It must be
  // kInvalidArgument (malformed field), not kDataLoss (mismatch) and
  // certainly not success.
  EXPECT_EQ(NmeaChecksum("AA"), 0);
  EXPECT_EQ(ParseRmcSentence("$AA*ZZ").status().code(),
            StatusCode::kInvalidArgument);
  // One valid digit is not enough.
  EXPECT_EQ(ParseRmcSentence("$AA*5G").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRmcSentence("$AA*G5").status().code(),
            StatusCode::kInvalidArgument);
  // Whitespace or sign tricks that strtoll would tolerate.
  EXPECT_FALSE(ParseRmcSentence("$AA* 0").ok());
  EXPECT_FALSE(ParseRmcSentence("$AA*+0").ok());
}

TEST(RmcParseTest, AcceptsLowercaseChecksumDigits) {
  const std::string payload =
      "GPRMC,225446,A,4916.45,N,12311.12,W,000.5,054.7,191194,020.3,E";
  char upper[8];
  std::snprintf(upper, sizeof(upper), "*%02X", NmeaChecksum(payload));
  char lower[8];
  std::snprintf(lower, sizeof(lower), "*%02x", NmeaChecksum(payload));
  ASSERT_TRUE(ParseRmcSentence("$" + payload + upper).ok());
  EXPECT_TRUE(ParseRmcSentence("$" + payload + lower).ok());
}

TEST(NmeaLogTest, ParsesMixedLogSkippingOtherSentences) {
  const Trajectory source = testutil::Line(5, 10.0, 12.0, 3.0, 0.0, 0.0);
  const LatLon origin{52.22, 6.89};
  std::string log = WriteNmea(source, origin);
  // Interleave a non-RMC sentence (with a valid checksum): it must be
  // skipped, not fatal.
  const std::string gsv_payload = "GPGSV,3,1,11,03,03,111,00";
  log = "$" + gsv_payload +
        StrFormat("*%02X\n", NmeaChecksum(gsv_payload)) + log;
  LatLon parsed_origin;
  const Trajectory parsed = ParseNmea(log, &parsed_origin).value();
  ASSERT_EQ(parsed.size(), source.size());
  EXPECT_NEAR(parsed_origin.lat_deg, origin.lat_deg, 1e-6);
}

TEST(NmeaLogTest, RoundTripPreservesGeometry) {
  const Trajectory source = testutil::RandomWalk(40, 3);
  const LatLon origin{52.22, 6.89};
  const std::string log = WriteNmea(source, origin);
  const Trajectory parsed = ParseNmea(log, nullptr).value();
  ASSERT_EQ(parsed.size(), source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    // RMC time has 1 ms resolution and minutes carry 4 decimals
    // (~0.2 m); compare within those quanta. Positions are relative to
    // the first fix in both frames.
    EXPECT_NEAR(parsed[i].t - parsed[0].t, source[i].t - source[0].t, 2e-3);
    const Vec2 source_offset = source[i].position - source[0].position;
    const Vec2 parsed_offset = parsed[i].position - parsed[0].position;
    EXPECT_NEAR(parsed_offset.x, source_offset.x, 0.5);
    EXPECT_NEAR(parsed_offset.y, source_offset.y, 0.5);
  }
}

TEST(NmeaLogTest, CorruptionIsFatalEmptyIsInvalid) {
  const Trajectory source = testutil::Line(3, 10.0, 5.0, 0.0);
  std::string log = WriteNmea(source, {52.22, 6.89});
  log[10] = static_cast<char>(log[10] ^ 0x01);  // Flip a payload bit.
  EXPECT_EQ(ParseNmea(log, nullptr).status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(ParseNmea("", nullptr).ok());
  // Only non-RMC sentences: no usable fix.
  const std::string gsv_payload = "GPGSV,3,1,11,03,03,111,00";
  const std::string gsv_only =
      "$" + gsv_payload + StrFormat("*%02X\n", NmeaChecksum(gsv_payload));
  EXPECT_EQ(ParseNmea(gsv_only, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NmeaLogTest, WriterEmitsValidChecksums) {
  const Trajectory source = testutil::Line(4, 10.0, 8.0, 1.0);
  const std::string log = WriteNmea(source, {52.22, 6.89});
  int sentences = 0;
  for (std::string_view line : Split(log, '\n')) {
    line = StripWhitespace(line);
    if (line.empty()) {
      continue;
    }
    EXPECT_TRUE(ParseRmcSentence(line).ok()) << line;
    ++sentences;
  }
  EXPECT_EQ(sentences, 4);
}

}  // namespace
}  // namespace stcomp
