// Acceptance spot-check for the zero-copy data path (DESIGN.md §11): once
// a Workspace and output IndexList have grown to steady state, repeated
// run_view calls perform zero heap allocations. Verified by replacing the
// global allocation functions with counting wrappers and asserting a zero
// delta across the hot loop for the paper's flagship algorithms.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "stcomp/algo/registry.h"
#include "stcomp/core/trajectory_view_soa.h"
#include "test_util.h"

namespace {

std::atomic<size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace stcomp {
namespace {

TEST(ZeroAllocTest, ViewEntryPointsAreAllocationFreeOnceWarm) {
  const Trajectory trajectory = testutil::RandomWalk(400, 99);
  for (const char* name : {"opw-tr", "td-tr"}) {
    const algo::AlgorithmInfo& info = *algo::FindAlgorithm(name).value();
    algo::AlgorithmParams params;
    params.epsilon_m = 25.0;
    algo::Workspace workspace;
    algo::IndexList kept;
    // Warm-up: grows every scratch buffer and the output to final size.
    info.run_view(trajectory, params, workspace, kept);
    const algo::IndexList expected = kept;
    ASSERT_GE(expected.size(), 2u) << name;

    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    for (int i = 0; i < 5; ++i) {
      info.run_view(trajectory, params, workspace, kept);
    }
    g_counting.store(false, std::memory_order_relaxed);

    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u) << name;
    EXPECT_EQ(kept, expected) << name;
  }
}

TEST(ZeroAllocTest, SoARepackIsLosslessAndAllocationFreeOnceWarm) {
  const Trajectory trajectory = testutil::RandomWalk(300, 7);
  SoAScratch scratch;
  // Warm-up grows the three column buffers to steady state.
  TrajectoryViewSoA soa = TrajectoryViewSoA::Repack(trajectory, scratch);

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) {
    soa = TrajectoryViewSoA::Repack(trajectory, scratch);
  }
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u);

  // Lossless: every column entry is the exact double of the source point.
  ASSERT_EQ(soa.size(), trajectory.size());
  for (size_t i = 0; i < soa.size(); ++i) {
    const TimedPoint& p = trajectory.points()[i];
    ASSERT_EQ(soa.x()[i], p.position.x) << i;
    ASSERT_EQ(soa.y()[i], p.position.y) << i;
    ASSERT_EQ(soa.t()[i], p.t) << i;
  }
}

TEST(ZeroAllocTest, WarmSoAScratchServesSmallerInputsWithoutAllocating) {
  const Trajectory large = testutil::RandomWalk(300, 8);
  const Trajectory small = testutil::RandomWalk(40, 9);
  SoAScratch scratch;
  TrajectoryViewSoA::Repack(large, scratch);

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const TrajectoryViewSoA soa = TrajectoryViewSoA::Repack(small, scratch);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(soa.size(), small.size());
}

TEST(ZeroAllocTest, WarmWorkspaceServesSmallerInputsWithoutAllocating) {
  // Buffers only grow: after running on a large trajectory, a smaller one
  // must fit in the existing scratch with no further allocation.
  const Trajectory large = testutil::RandomWalk(400, 5);
  const Trajectory small = testutil::RandomWalk(50, 6);
  const algo::AlgorithmInfo& info = *algo::FindAlgorithm("td-tr").value();
  const algo::AlgorithmParams params;
  algo::Workspace workspace;
  algo::IndexList kept;
  info.run_view(large, params, workspace, kept);

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  info.run_view(small, params, workspace, kept);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace stcomp
