#include "stcomp/stream/ingest_policy.h"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/policed_compressor.h"

namespace stcomp {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

IngestGate MakeGate(const IngestPolicy& policy, const std::string& instance) {
  return IngestGate(policy, IngestCounters::ForInstance(instance));
}

std::vector<double> Times(const std::vector<TimedPoint>& points) {
  std::vector<double> times;
  for (const TimedPoint& point : points) {
    times.push_back(point.t);
  }
  return times;
}

TEST(IngestModeTest, Names) {
  EXPECT_EQ(IngestModeToString(IngestMode::kReject), "reject");
  EXPECT_EQ(IngestModeToString(IngestMode::kDropAndCount), "drop-and-count");
  EXPECT_EQ(IngestModeToString(IngestMode::kRepair), "repair");
}

TEST(IngestGateTest, RejectSurfacesFaultsAsStatus) {
  IngestGate gate = MakeGate({}, "gate-reject");
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  const Status stale = gate.Admit({1.0, 1.0, 1.0}, &admitted);
  EXPECT_EQ(stale.code(), StatusCode::kInvalidArgument);
  const Status nan = gate.Admit({2.0, kNan, 0.0}, &admitted);
  EXPECT_EQ(nan.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(gate.Admit({2.0, 2.0, 2.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0, 2.0}));
}

TEST(IngestGateTest, DropAndCountSwallowsFaults) {
  IngestPolicy policy;
  policy.mode = IngestMode::kDropAndCount;
  const IngestCounters counters = IngestCounters::ForInstance("gate-drop");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({0.5, 0.0, 0.0}, &admitted).ok());   // out of order
  EXPECT_TRUE(gate.Admit({kNan, 0.0, 0.0}, &admitted).ok());  // non-finite
  EXPECT_TRUE(gate.Admit({2.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(counters.dropped->value(), 2u);
  EXPECT_EQ(counters.repaired->value(), 0u);
}

TEST(IngestGateTest, RepairResortsWithinWindow) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 10.0;
  const IngestCounters counters = IngestCounters::ForInstance("gate-resort");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  // 20 arrives, then 14 late-but-in-window, then 25 advances the watermark
  // to 15 and releases {14} — strictly ordered despite the feed.
  EXPECT_TRUE(gate.Admit({20.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({14.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({25.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{14.0}));
  EXPECT_EQ(gate.held_points(), 2u);
  gate.Flush(&admitted);
  EXPECT_EQ(Times(admitted), (std::vector<double>{14.0, 20.0, 25.0}));
  EXPECT_EQ(gate.held_points(), 0u);
  EXPECT_EQ(counters.repaired->value(), 1u);  // the late 14
  EXPECT_EQ(counters.dropped->value(), 0u);
}

TEST(IngestGateTest, RepairDedupsAndDropsStale) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 5.0;
  const IngestCounters counters = IngestCounters::ForInstance("gate-dedup");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({10.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({10.0, 9.0, 9.0}, &admitted).ok());  // dup in buffer
  EXPECT_TRUE(gate.Admit({30.0, 0.0, 0.0}, &admitted).ok());  // releases 10
  EXPECT_TRUE(gate.Admit({10.0, 0.0, 0.0}, &admitted).ok());  // dup released
  EXPECT_TRUE(gate.Admit({3.0, 0.0, 0.0}, &admitted).ok());   // beyond repair
  gate.Flush(&admitted);
  EXPECT_EQ(Times(admitted), (std::vector<double>{10.0, 30.0}));
  EXPECT_EQ(counters.repaired->value(), 2u);
  EXPECT_EQ(counters.dropped->value(), 1u);
}

TEST(IngestGateTest, WindowZeroDegeneratesToDedup) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  const IngestCounters counters = IngestCounters::ForInstance("gate-window0");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({1.0, 5.0, 5.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({2.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(gate.held_points(), 0u);  // window 0: nothing is held back
  EXPECT_EQ(counters.repaired->value(), 1u);
}

TEST(IngestGateTest, QuarantineAfterConsecutiveFaults) {
  IngestPolicy policy;
  policy.mode = IngestMode::kReject;
  policy.quarantine_after = 3;
  const IngestCounters counters = IngestCounters::ForInstance("gate-quar");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gate.Admit({0.0, 0.0, 0.0}, &admitted).code(),
              StatusCode::kInvalidArgument)
        << i;
  }
  EXPECT_TRUE(gate.quarantined());
  // Even a clean fix is refused once quarantined.
  EXPECT_EQ(gate.Admit({5.0, 0.0, 0.0}, &admitted).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(counters.quarantined->value(), 1u);
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0}));
}

TEST(IngestGateTest, CleanFixResetsQuarantineCounter) {
  IngestPolicy policy;
  policy.mode = IngestMode::kDropAndCount;
  policy.quarantine_after = 3;
  IngestGate gate = MakeGate(policy, "gate-quar-reset");
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({0.0, 0.0, 0.0}, &admitted).ok());  // fault 1
  EXPECT_TRUE(gate.Admit({0.5, 0.0, 0.0}, &admitted).ok());  // fault 2
  EXPECT_TRUE(gate.Admit({2.0, 0.0, 0.0}, &admitted).ok());  // clean: reset
  EXPECT_TRUE(gate.Admit({0.0, 0.0, 0.0}, &admitted).ok());  // fault 1 again
  EXPECT_FALSE(gate.quarantined());
}

TEST(PolicedCompressorTest, ShieldsInnerFromDirtyFeed) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 100.0;
  PolicedCompressor compressor(
      std::make_unique<OpeningWindowStream>(1000.0, algo::BreakPolicy::kNormal,
                                            StreamCriterion::kSynchronized),
      policy, "policed-test");
  std::vector<TimedPoint> out;
  const double dirty_times[] = {0.0, 50.0, 20.0, 50.0, kNan, 80.0, 10.0};
  for (double t : dirty_times) {
    ASSERT_TRUE(compressor.Push({t, t, 0.0}, &out).ok()) << t;
  }
  compressor.Finish(&out);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].t, out[i].t);
  }
  EXPECT_EQ(out.front().t, 0.0);
  EXPECT_EQ(out.back().t, 80.0);
  EXPECT_EQ(compressor.name(), "opw-tr-stream-policed");
}

TEST(FleetCompressorTest, PolicyOverloadExposesCounters) {
  TrajectoryStore store(Codec::kRaw);
  IngestPolicy policy;
  policy.mode = IngestMode::kDropAndCount;
  FleetCompressor fleet(
      [] {
        return std::make_unique<OpeningWindowStream>(
            5.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      &store, policy, "fleet-policy-test");
  EXPECT_EQ(fleet.policy().mode, IngestMode::kDropAndCount);
  ASSERT_TRUE(fleet.Push("car", {0.0, 0.0, 0.0}).ok());
  ASSERT_TRUE(fleet.Push("car", {0.0, 1.0, 1.0}).ok());  // dup: dropped
  ASSERT_TRUE(fleet.Push("car", {kNan, 1.0, 1.0}).ok());
  ASSERT_TRUE(fleet.Push("car", {5.0, 1.0, 1.0}).ok());
  ASSERT_TRUE(fleet.FinishAll().ok());
  EXPECT_EQ(fleet.ingest_dropped(), 2u);
  EXPECT_EQ(fleet.ingest_repaired(), 0u);
  EXPECT_EQ(fleet.ingest_quarantined(), 0u);
  const Result<Trajectory> trajectory = store.Get("car");
  ASSERT_TRUE(trajectory.ok());
  EXPECT_EQ(trajectory->size(), 2u);
}

TEST(FleetCompressorTest, DefaultPolicyStillRejects) {
  TrajectoryStore store(Codec::kRaw);
  FleetCompressor fleet(
      [] {
        return std::make_unique<OpeningWindowStream>(
            5.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      &store);
  ASSERT_TRUE(fleet.Push("car", {1.0, 0.0, 0.0}).ok());
  EXPECT_EQ(fleet.Push("car", {1.0, 0.0, 0.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.Push("car", {2.0, kNan, 0.0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(fleet.FinishAll().ok());
}

}  // namespace
}  // namespace stcomp
