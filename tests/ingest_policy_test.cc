#include "stcomp/stream/ingest_policy.h"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/policed_compressor.h"
#include "stcomp/testing/faulty_source.h"

namespace stcomp {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

IngestGate MakeGate(const IngestPolicy& policy, const std::string& instance) {
  return IngestGate(policy, IngestCounters::ForInstance(instance));
}

std::vector<double> Times(const std::vector<TimedPoint>& points) {
  std::vector<double> times;
  for (const TimedPoint& point : points) {
    times.push_back(point.t);
  }
  return times;
}

TEST(IngestModeTest, Names) {
  EXPECT_EQ(IngestModeToString(IngestMode::kReject), "reject");
  EXPECT_EQ(IngestModeToString(IngestMode::kDropAndCount), "drop-and-count");
  EXPECT_EQ(IngestModeToString(IngestMode::kRepair), "repair");
}

TEST(IngestGateTest, RejectSurfacesFaultsAsStatus) {
  IngestGate gate = MakeGate({}, "gate-reject");
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  const Status stale = gate.Admit({1.0, 1.0, 1.0}, &admitted);
  EXPECT_EQ(stale.code(), StatusCode::kInvalidArgument);
  const Status nan = gate.Admit({2.0, kNan, 0.0}, &admitted);
  EXPECT_EQ(nan.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(gate.Admit({2.0, 2.0, 2.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0, 2.0}));
}

TEST(IngestGateTest, DropAndCountSwallowsFaults) {
  IngestPolicy policy;
  policy.mode = IngestMode::kDropAndCount;
  const IngestCounters counters = IngestCounters::ForInstance("gate-drop");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({0.5, 0.0, 0.0}, &admitted).ok());   // out of order
  EXPECT_TRUE(gate.Admit({kNan, 0.0, 0.0}, &admitted).ok());  // non-finite
  EXPECT_TRUE(gate.Admit({2.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(counters.dropped->value(), 2u);
  EXPECT_EQ(counters.repaired->value(), 0u);
}

TEST(IngestGateTest, RepairResortsWithinWindow) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 10.0;
  const IngestCounters counters = IngestCounters::ForInstance("gate-resort");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  // 20 arrives, then 14 late-but-in-window, then 25 advances the watermark
  // to 15 and releases {14} — strictly ordered despite the feed.
  EXPECT_TRUE(gate.Admit({20.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({14.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({25.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{14.0}));
  EXPECT_EQ(gate.held_points(), 2u);
  gate.Flush(&admitted);
  EXPECT_EQ(Times(admitted), (std::vector<double>{14.0, 20.0, 25.0}));
  EXPECT_EQ(gate.held_points(), 0u);
  EXPECT_EQ(counters.repaired->value(), 1u);  // the late 14
  EXPECT_EQ(counters.dropped->value(), 0u);
}

TEST(IngestGateTest, RepairDedupsAndDropsStale) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 5.0;
  const IngestCounters counters = IngestCounters::ForInstance("gate-dedup");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({10.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({10.0, 9.0, 9.0}, &admitted).ok());  // dup in buffer
  EXPECT_TRUE(gate.Admit({30.0, 0.0, 0.0}, &admitted).ok());  // releases 10
  EXPECT_TRUE(gate.Admit({10.0, 0.0, 0.0}, &admitted).ok());  // dup released
  EXPECT_TRUE(gate.Admit({3.0, 0.0, 0.0}, &admitted).ok());   // beyond repair
  gate.Flush(&admitted);
  EXPECT_EQ(Times(admitted), (std::vector<double>{10.0, 30.0}));
  EXPECT_EQ(counters.repaired->value(), 2u);
  EXPECT_EQ(counters.dropped->value(), 1u);
}

TEST(IngestGateTest, WindowZeroDegeneratesToDedup) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  const IngestCounters counters = IngestCounters::ForInstance("gate-window0");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({1.0, 5.0, 5.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({2.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(gate.held_points(), 0u);  // window 0: nothing is held back
  EXPECT_EQ(counters.repaired->value(), 1u);
}

TEST(IngestGateTest, QuarantineAfterConsecutiveFaults) {
  IngestPolicy policy;
  policy.mode = IngestMode::kReject;
  policy.quarantine_after = 3;
  const IngestCounters counters = IngestCounters::ForInstance("gate-quar");
  IngestGate gate(policy, counters);
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gate.Admit({0.0, 0.0, 0.0}, &admitted).code(),
              StatusCode::kInvalidArgument)
        << i;
  }
  EXPECT_TRUE(gate.quarantined());
  // Even a clean fix is refused once quarantined.
  EXPECT_EQ(gate.Admit({5.0, 0.0, 0.0}, &admitted).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(counters.quarantined->value(), 1u);
  EXPECT_EQ(Times(admitted), (std::vector<double>{1.0}));
}

TEST(IngestGateTest, CleanFixResetsQuarantineCounter) {
  IngestPolicy policy;
  policy.mode = IngestMode::kDropAndCount;
  policy.quarantine_after = 3;
  IngestGate gate = MakeGate(policy, "gate-quar-reset");
  std::vector<TimedPoint> admitted;
  EXPECT_TRUE(gate.Admit({1.0, 0.0, 0.0}, &admitted).ok());
  EXPECT_TRUE(gate.Admit({0.0, 0.0, 0.0}, &admitted).ok());  // fault 1
  EXPECT_TRUE(gate.Admit({0.5, 0.0, 0.0}, &admitted).ok());  // fault 2
  EXPECT_TRUE(gate.Admit({2.0, 0.0, 0.0}, &admitted).ok());  // clean: reset
  EXPECT_TRUE(gate.Admit({0.0, 0.0, 0.0}, &admitted).ok());  // fault 1 again
  EXPECT_FALSE(gate.quarantined());
}

TEST(PolicedCompressorTest, ShieldsInnerFromDirtyFeed) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 100.0;
  PolicedCompressor compressor(
      std::make_unique<OpeningWindowStream>(1000.0, algo::BreakPolicy::kNormal,
                                            StreamCriterion::kSynchronized),
      policy, "policed-test");
  std::vector<TimedPoint> out;
  const double dirty_times[] = {0.0, 50.0, 20.0, 50.0, kNan, 80.0, 10.0};
  for (double t : dirty_times) {
    ASSERT_TRUE(compressor.Push({t, t, 0.0}, &out).ok()) << t;
  }
  compressor.Finish(&out);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].t, out[i].t);
  }
  EXPECT_EQ(out.front().t, 0.0);
  EXPECT_EQ(out.back().t, 80.0);
  EXPECT_EQ(compressor.name(), "opw-tr-stream-policed");
}

TEST(FleetCompressorTest, PolicyOverloadExposesCounters) {
  TrajectoryStore store(Codec::kRaw);
  IngestPolicy policy;
  policy.mode = IngestMode::kDropAndCount;
  FleetCompressor fleet(
      [] {
        return std::make_unique<OpeningWindowStream>(
            5.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      &store, policy, "fleet-policy-test");
  EXPECT_EQ(fleet.policy().mode, IngestMode::kDropAndCount);
  ASSERT_TRUE(fleet.Push("car", {0.0, 0.0, 0.0}).ok());
  ASSERT_TRUE(fleet.Push("car", {0.0, 1.0, 1.0}).ok());  // dup: dropped
  ASSERT_TRUE(fleet.Push("car", {kNan, 1.0, 1.0}).ok());
  ASSERT_TRUE(fleet.Push("car", {5.0, 1.0, 1.0}).ok());
  ASSERT_TRUE(fleet.FinishAll().ok());
  EXPECT_EQ(fleet.ingest_dropped(), 2u);
  EXPECT_EQ(fleet.ingest_repaired(), 0u);
  EXPECT_EQ(fleet.ingest_quarantined(), 0u);
  const Result<Trajectory> trajectory = store.Get("car");
  ASSERT_TRUE(trajectory.ok());
  EXPECT_EQ(trajectory->size(), 2u);
}

TEST(FleetCompressorTest, DefaultPolicyStillRejects) {
  TrajectoryStore store(Codec::kRaw);
  FleetCompressor fleet(
      [] {
        return std::make_unique<OpeningWindowStream>(
            5.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      &store);
  ASSERT_TRUE(fleet.Push("car", {1.0, 0.0, 0.0}).ok());
  EXPECT_EQ(fleet.Push("car", {1.0, 0.0, 0.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.Push("car", {2.0, kNan, 0.0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(fleet.FinishAll().ok());
}

// --- DrainSource retry semantics -----------------------------------------

// A FixSource that fails `failures_per_fix` times with kUnavailable before
// yielding each fix (the feed position is preserved across failures).
class FlakySource final : public FixSource {
 public:
  FlakySource(std::vector<TimedPoint> fixes, int failures_per_fix)
      : fixes_(std::move(fixes)),
        failures_per_fix_(failures_per_fix),
        remaining_failures_(failures_per_fix) {}

  Result<std::optional<TimedPoint>> Next() override {
    if (index_ >= fixes_.size()) {
      return std::optional<TimedPoint>();
    }
    if (remaining_failures_ > 0) {
      --remaining_failures_;
      return UnavailableError("flaky feed");
    }
    remaining_failures_ = failures_per_fix_;
    return std::optional<TimedPoint>(fixes_[index_++]);
  }

 private:
  std::vector<TimedPoint> fixes_;
  int failures_per_fix_;
  int remaining_failures_;
  size_t index_ = 0;
};

class AlwaysDownSource final : public FixSource {
 public:
  Result<std::optional<TimedPoint>> Next() override {
    ++calls_;
    return UnavailableError("feed is down");
  }
  size_t calls() const { return calls_; }

 private:
  size_t calls_ = 0;
};

class BrokenSource final : public FixSource {
 public:
  Result<std::optional<TimedPoint>> Next() override {
    ++calls_;
    return InvalidArgumentError("terminal feed error");
  }
  size_t calls() const { return calls_; }

 private:
  size_t calls_ = 0;
};

std::unique_ptr<PolicedCompressor> MakePoliced(const std::string& instance) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  return std::make_unique<PolicedCompressor>(
      std::make_unique<OpeningWindowStream>(5.0, algo::BreakPolicy::kNormal,
                                            StreamCriterion::kSynchronized),
      policy, instance);
}

TEST(DrainSourceTest, RetriesWithExponentialBackoff) {
  std::vector<TimedPoint> fixes;
  for (int i = 0; i < 5; ++i) {
    fixes.emplace_back(1.0 * i, 2.0 * i, -1.0 * i);
  }
  FlakySource source(fixes, /*failures_per_fix=*/2);
  std::unique_ptr<PolicedCompressor> policed = MakePoliced("drain-backoff");

  std::vector<double> sleeps;
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff_s = 0.5;
  retry.backoff_multiplier = 3.0;
  retry.sleep = [&sleeps](double seconds) { sleeps.push_back(seconds); };

  std::vector<TimedPoint> out;
  ASSERT_TRUE(policed->DrainSource(&source, retry, &out).ok());
  policed->Finish(&out);

  // Every fix costs 2 retries (0.5s then 1.5s); backoff resets per feed
  // position. Exhaustion (nullopt) is not an error and costs nothing.
  ASSERT_EQ(sleeps.size(), 2u * fixes.size());
  for (size_t i = 0; i < sleeps.size(); i += 2) {
    EXPECT_DOUBLE_EQ(sleeps[i], 0.5);
    EXPECT_DOUBLE_EQ(sleeps[i + 1], 1.5);
  }
  EXPECT_EQ(IngestCounters::ForInstance("drain-backoff").retries->value(),
            sleeps.size());
  // Nothing in the feed was lost: the stream saw all 5 fixes in order.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().t, 0.0);
  EXPECT_EQ(out.back().t, 4.0);
}

TEST(DrainSourceTest, GivesUpAfterMaxAttempts) {
  AlwaysDownSource source;
  std::unique_ptr<PolicedCompressor> policed = MakePoliced("drain-giveup");
  std::vector<double> sleeps;
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff_s = 0.25;
  retry.sleep = [&sleeps](double seconds) { sleeps.push_back(seconds); };

  std::vector<TimedPoint> out;
  EXPECT_EQ(policed->DrainSource(&source, retry, &out).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(source.calls(), 3u);   // Initial try + 2 retries.
  EXPECT_EQ(sleeps.size(), 2u);    // One sleep per retry.
  EXPECT_EQ(IngestCounters::ForInstance("drain-giveup").retries->value(), 2u);
}

TEST(DrainSourceTest, TerminalErrorsAreNotRetried) {
  BrokenSource source;
  std::unique_ptr<PolicedCompressor> policed = MakePoliced("drain-terminal");
  std::vector<double> sleeps;
  RetryPolicy retry;
  retry.sleep = [&sleeps](double seconds) { sleeps.push_back(seconds); };
  std::vector<TimedPoint> out;
  EXPECT_EQ(policed->DrainSource(&source, retry, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(source.calls(), 1u);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(IngestCounters::ForInstance("drain-terminal").retries->value(), 0u);
}

TEST(DrainSourceTest, FaultyFeedHarnessDeliversEveryFix) {
  // The standard harness: a FaultyFixSource injecting only transient I/O
  // errors, adapted through FaultyFeedFixSource — every retried pull
  // re-delivers the fix, so the drain completes with zero data loss.
  testing::FaultPlanOptions only_io;
  only_io.duplicate_fix_probability = 0.0;
  only_io.regress_time_probability = 0.0;
  only_io.jitter_time_probability = 0.0;
  only_io.nan_coordinate_probability = 0.0;
  only_io.io_error_probability = 0.4;
  testing::FaultPlan plan(20260805, only_io);
  std::vector<testing::FleetFix> feed;
  for (int i = 0; i < 60; ++i) {
    feed.push_back({"bus-1", TimedPoint(5.0 * i, 0.5 * i, -0.25 * i)});
  }
  testing::FaultyFixSource faulty(feed, &plan);
  testing::FaultyFeedFixSource source(&faulty);

  std::unique_ptr<PolicedCompressor> policed = MakePoliced("drain-faulty");
  std::vector<double> sleeps;
  RetryPolicy retry;
  retry.sleep = [&sleeps](double seconds) { sleeps.push_back(seconds); };
  std::vector<TimedPoint> out;
  ASSERT_TRUE(policed->DrainSource(&source, retry, &out).ok());
  policed->Finish(&out);

  size_t io_errors = 0;
  for (const std::string& entry : plan.log()) {
    io_errors += entry.rfind("io-error", 0) == 0;
  }
  ASSERT_GT(io_errors, 0u) << plan.Describe();
  EXPECT_EQ(sleeps.size(), io_errors);
  EXPECT_EQ(IngestCounters::ForInstance("drain-faulty").retries->value(),
            io_errors);
  // The last fix of the clean feed made it through the gate + compressor.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().t, 5.0 * 59);
}

}  // namespace
}  // namespace stcomp
