#include <gtest/gtest.h>

#include "stcomp/exp/figures.h"
#include "stcomp/exp/sweep.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/paper_dataset.h"
#include "test_util.h"

namespace stcomp {
namespace {

// One small shared dataset for the harness tests (full-size runs live in
// bench/).
const std::vector<Trajectory>& SmallDataset() {
  static const std::vector<Trajectory>* const kDataset = [] {
    PaperDatasetConfig config;
    config.num_trajectories = 3;
    return new std::vector<Trajectory>(GeneratePaperDataset(config));
  }();
  return *kDataset;
}

TEST(TableTest, FixedWidthRendering) {
  Table table({"a", "long_header"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvRendering) {
  Table table({"x", "y"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n");
}

TEST(SweepTest, PaperGrids) {
  const std::vector<double> thresholds = PaperThresholds();
  ASSERT_EQ(thresholds.size(), 15u);
  EXPECT_DOUBLE_EQ(thresholds.front(), 30.0);
  EXPECT_DOUBLE_EQ(thresholds.back(), 100.0);
  EXPECT_EQ(PaperSpeedThresholds(), (std::vector<double>{5.0, 15.0, 25.0}));
}

TEST(SweepTest, EvaluateAveragedAggregates) {
  const algo::AlgorithmInfo* ndp = algo::FindAlgorithm("ndp").value();
  algo::AlgorithmParams params;
  params.epsilon_m = 50.0;
  const SweepPoint point =
      EvaluateAveraged(SmallDataset(), *ndp, params).value();
  EXPECT_GT(point.compression_percent, 0.0);
  EXPECT_LT(point.compression_percent, 100.0);
  EXPECT_GT(point.sync_error_mean_m, 0.0);
  EXPECT_FALSE(EvaluateAveraged({}, *ndp, params).ok());
}

TEST(SweepTest, SweepProducesOnePointPerThreshold) {
  const auto sweep = SweepThresholds(SmallDataset(), "td-tr",
                                     algo::AlgorithmParams{}, {30.0, 100.0})
                         .value();
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_DOUBLE_EQ(sweep[0].epsilon_m, 30.0);
  // Compression grows with the threshold.
  EXPECT_LE(sweep[0].compression_percent, sweep[1].compression_percent);
}

TEST(SweepTest, UnknownAlgorithmFails) {
  EXPECT_FALSE(SweepThresholds(SmallDataset(), "nope",
                               algo::AlgorithmParams{}, {30.0})
                   .ok());
}

// The paper's headline claims, asserted on the small dataset.

TEST(PaperShapeTest, Fig7TdTrErrorWellBelowNdp) {
  const auto ndp = SweepThresholds(SmallDataset(), "ndp",
                                   algo::AlgorithmParams{}, {50.0}).value();
  const auto tdtr = SweepThresholds(SmallDataset(), "td-tr",
                                    algo::AlgorithmParams{}, {50.0}).value();
  // "the TD-TR algorithm produces much lower errors, while the compression
  // rate is only slightly lower."
  EXPECT_LT(tdtr[0].sync_error_mean_m, 0.6 * ndp[0].sync_error_mean_m);
  EXPECT_LT(tdtr[0].compression_percent, ndp[0].compression_percent);
  EXPECT_GT(tdtr[0].compression_percent,
            0.5 * ndp[0].compression_percent);
}

TEST(PaperShapeTest, Fig8BopwCompressesMoreWithWorseError) {
  const auto bopw = SweepThresholds(SmallDataset(), "bopw",
                                    algo::AlgorithmParams{}, {50.0}).value();
  const auto nopw = SweepThresholds(SmallDataset(), "nopw",
                                    algo::AlgorithmParams{}, {50.0}).value();
  EXPECT_GE(bopw[0].compression_percent, nopw[0].compression_percent);
  EXPECT_GE(bopw[0].sync_error_mean_m, nopw[0].sync_error_mean_m);
}

TEST(PaperShapeTest, Fig9OpwTrErrorWellBelowNopw) {
  const auto nopw = SweepThresholds(SmallDataset(), "nopw",
                                    algo::AlgorithmParams{}, {50.0}).value();
  const auto opwtr = SweepThresholds(SmallDataset(), "opw-tr",
                                     algo::AlgorithmParams{}, {50.0}).value();
  EXPECT_LT(opwtr[0].sync_error_mean_m, 0.6 * nopw[0].sync_error_mean_m);
}

TEST(PaperShapeTest, Fig10OpwSp25TracksOpwTr) {
  // "the graph for OPW-TR coincides with that of OPW-SP-25m/s".
  algo::AlgorithmParams sp25;
  sp25.speed_threshold_mps = 25.0;
  const auto opwtr = SweepThresholds(SmallDataset(), "opw-tr",
                                     algo::AlgorithmParams{}, {50.0}).value();
  const auto opwsp = SweepThresholds(SmallDataset(), "opw-sp", sp25,
                                     {50.0}).value();
  EXPECT_NEAR(opwsp[0].compression_percent, opwtr[0].compression_percent,
              5.0);
  EXPECT_NEAR(opwsp[0].sync_error_mean_m, opwtr[0].sync_error_mean_m,
              0.25 * opwtr[0].sync_error_mean_m + 2.0);
}

TEST(RenderTest, Table2MentionsEveryStatistic) {
  const std::string text = RenderTable2(SmallDataset());
  for (const char* needle : {"duration", "speed", "length", "displacement",
                             "data points", "paper_avg", "ours_avg"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(RenderTest, FiguresRenderNonTrivially) {
  EXPECT_GT(RenderFigure7(SmallDataset()).value().size(), 400u);
  EXPECT_GT(RenderFigure8(SmallDataset()).value().size(), 400u);
  EXPECT_GT(RenderFigure9(SmallDataset()).value().size(), 400u);
  EXPECT_GT(RenderFigure10(SmallDataset()).value().size(), 400u);
  EXPECT_GT(RenderFigure11(SmallDataset()).value().size(), 400u);
  EXPECT_GT(RenderStorageTable(SmallDataset()).value().size(), 100u);
}

}  // namespace
}  // namespace stcomp
