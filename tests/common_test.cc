#include <gtest/gtest.h>

#include "stcomp/common/flags.h"
#include "stcomp/common/result.h"
#include "stcomp/common/status.h"
#include "stcomp/common/strings.h"

namespace stcomp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad epsilon");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad epsilon");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad epsilon");
}

TEST(StatusTest, CopyPreservesValue) {
  Status status = NotFoundError("x");
  Status copy = status;
  EXPECT_EQ(copy, status);
  copy = Status::Ok();
  EXPECT_TRUE(copy.ok());
  EXPECT_FALSE(status.ok());
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
}

Result<int> ParsePositive(int value) {
  if (value <= 0) {
    return InvalidArgumentError("not positive");
  }
  return value;
}

Result<int> DoubleIfPositive(int value) {
  STCOMP_ASSIGN_OR_RETURN(const int checked, ParsePositive(value));
  return checked * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleIfPositive(21).value(), 42);
  EXPECT_FALSE(DoubleIfPositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StringsTest, SplitBasics) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitEmptyYieldsOneField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, ParseDoubleAccepts) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
}

TEST(StringsTest, ParseDoubleRejects) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("12x").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
}

TEST(StringsTest, ParseIntAcceptsAndRejects) {
  EXPECT_EQ(ParseInt("-17").value(), -17);
  EXPECT_FALSE(ParseInt("3.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("trajectory", "traj"));
  EXPECT_FALSE(StartsWith("tra", "traj"));
  EXPECT_TRUE(EndsWith("file.gpx", ".gpx"));
  EXPECT_FALSE(EndsWith("x", ".gpx"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, FormatHms) {
  EXPECT_EQ(FormatHms(0), "00:00:00");
  EXPECT_EQ(FormatHms(32 * 60 + 16), "00:32:16");
  EXPECT_EQ(FormatHms(3 * 3600 + 59), "03:00:59");
}

TEST(FlagsTest, ParsesAllTypes) {
  double d = 1.0;
  int i = 2;
  bool b = false;
  std::string s = "x";
  FlagParser parser("test");
  parser.AddDouble("eps", &d, "epsilon");
  parser.AddInt("count", &i, "count");
  parser.AddBool("verbose", &b, "verbosity");
  parser.AddString("name", &s, "name");
  const char* argv[] = {"prog", "--eps=42.5", "--count", "9", "--verbose",
                        "--name=abc", "positional"};
  ASSERT_TRUE(parser.Parse(7, const_cast<char**>(argv)).ok());
  EXPECT_DOUBLE_EQ(d, 42.5);
  EXPECT_EQ(i, 9);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "abc");
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "positional");
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser parser("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_EQ(parser.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, RejectsMissingValue) {
  int i = 0;
  FlagParser parser("test");
  parser.AddInt("count", &i, "");
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, BoolFalseForms) {
  bool b = true;
  FlagParser parser("test");
  parser.AddBool("flag", &b, "");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_TRUE(parser.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(b);
}

TEST(FlagsTest, HelpReturnsFailedPrecondition) {
  FlagParser parser("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_EQ(parser.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace stcomp
