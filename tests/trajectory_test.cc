#include "stcomp/core/trajectory.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stcomp/core/interpolation.h"
#include "stcomp/core/trajectory_stats.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Line;
using testutil::Traj;

TEST(TrajectoryTest, FromPointsValid) {
  const auto result =
      Trajectory::FromPoints({{0.0, 0.0, 0.0}, {1.0, 1.0, 0.0}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(TrajectoryTest, FromPointsRejectsNonMonotone) {
  EXPECT_FALSE(
      Trajectory::FromPoints({{1.0, 0.0, 0.0}, {1.0, 1.0, 0.0}}).ok());
  EXPECT_FALSE(
      Trajectory::FromPoints({{2.0, 0.0, 0.0}, {1.0, 1.0, 0.0}}).ok());
}

TEST(TrajectoryTest, FromUnorderedSortsAndDeduplicates) {
  const Trajectory trajectory = Trajectory::FromUnordered(
      {{3.0, 3.0, 0.0}, {1.0, 1.0, 0.0}, {3.0, 9.0, 0.0}, {2.0, 2.0, 0.0}});
  ASSERT_EQ(trajectory.size(), 3u);
  EXPECT_DOUBLE_EQ(trajectory[0].t, 1.0);
  EXPECT_DOUBLE_EQ(trajectory[2].t, 3.0);
  // First occurrence wins on duplicate timestamps.
  EXPECT_DOUBLE_EQ(trajectory[2].position.x, 3.0);
}

TEST(TrajectoryTest, AppendEnforcesOrder) {
  Trajectory trajectory;
  EXPECT_TRUE(trajectory.Append({0.0, 0.0, 0.0}).ok());
  EXPECT_TRUE(trajectory.Append({1.0, 1.0, 1.0}).ok());
  EXPECT_FALSE(trajectory.Append({1.0, 2.0, 2.0}).ok());
  EXPECT_FALSE(trajectory.Append({0.5, 2.0, 2.0}).ok());
  EXPECT_EQ(trajectory.size(), 2u);
}

TEST(TrajectoryTest, DurationLengthDisplacement) {
  // Out 300 m east in 30 s, back 300 m west in 30 s.
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {30, 300, 0}, {60, 0, 0}});
  EXPECT_DOUBLE_EQ(trajectory.Duration(), 60.0);
  EXPECT_DOUBLE_EQ(trajectory.Length(), 600.0);
  EXPECT_DOUBLE_EQ(trajectory.Displacement(), 0.0);
  EXPECT_DOUBLE_EQ(trajectory.AverageSpeed(), 10.0);
}

TEST(TrajectoryTest, EmptyAndSingletonEdgeCases) {
  Trajectory empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.Duration(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Length(), 0.0);
  EXPECT_DOUBLE_EQ(empty.AverageSpeed(), 0.0);
  EXPECT_FALSE(empty.PositionAt(0.0).ok());

  const Trajectory single = Traj({{5.0, 1.0, 2.0}});
  EXPECT_DOUBLE_EQ(single.Duration(), 0.0);
  EXPECT_DOUBLE_EQ(single.Displacement(), 0.0);
  EXPECT_EQ(single.PositionAt(5.0).value(), Vec2(1.0, 2.0));
}

TEST(TrajectoryTest, PositionAtInterpolatesLinearly) {
  const Trajectory trajectory = Traj({{0, 0, 0}, {10, 100, 50}});
  EXPECT_EQ(trajectory.PositionAt(0.0).value(), Vec2(0, 0));
  EXPECT_EQ(trajectory.PositionAt(10.0).value(), Vec2(100, 50));
  EXPECT_EQ(trajectory.PositionAt(2.5).value(), Vec2(25, 12.5));
}

TEST(TrajectoryTest, PositionAtHitsSamplesExactly) {
  const Trajectory trajectory = Traj({{0, 0, 0}, {10, 7, 7}, {20, 0, 0}});
  EXPECT_EQ(trajectory.PositionAt(10.0).value(), Vec2(7, 7));
}

TEST(TrajectoryTest, PositionAtOutOfRange) {
  const Trajectory trajectory = Traj({{0, 0, 0}, {10, 1, 1}});
  EXPECT_EQ(trajectory.PositionAt(-0.1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(trajectory.PositionAt(10.1).status().code(),
            StatusCode::kOutOfRange);
}

TEST(TrajectoryTest, SliceInclusive) {
  const Trajectory trajectory = Line(10, 1.0, 1.0, 0.0);
  const Trajectory slice = trajectory.Slice(2, 5);
  ASSERT_EQ(slice.size(), 4u);
  EXPECT_DOUBLE_EQ(slice.front().t, 2.0);
  EXPECT_DOUBLE_EQ(slice.back().t, 5.0);
}

TEST(TrajectoryTest, SubsetPicksIndices) {
  const Trajectory trajectory = Line(10, 1.0, 2.0, 0.0);
  const Trajectory subset = trajectory.Subset({0, 4, 9});
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_DOUBLE_EQ(subset[1].t, 4.0);
  EXPECT_DOUBLE_EQ(subset[1].position.x, 8.0);
}

TEST(TrajectoryTest, SegmentSpeeds) {
  const Trajectory trajectory = Traj({{0, 0, 0}, {10, 100, 0}, {20, 100, 0}});
  EXPECT_DOUBLE_EQ(trajectory.SegmentSpeed(0), 10.0);
  EXPECT_DOUBLE_EQ(trajectory.SegmentSpeed(1), 0.0);
  const auto speeds = trajectory.SegmentSpeeds();
  ASSERT_EQ(speeds.size(), 2u);
  EXPECT_DOUBLE_EQ(speeds[0], 10.0);
}

TEST(TrajectoryTest, NamePropagatesThroughSliceAndSubset) {
  Trajectory trajectory = Line(5, 1.0, 1.0, 0.0);
  trajectory.set_name("trip");
  EXPECT_EQ(trajectory.Slice(0, 2).name(), "trip");
  EXPECT_EQ(trajectory.Subset({0, 4}).name(), "trip");
}

TEST(InterpolationTest, InterpolatePositionBasics) {
  const TimedPoint a{0.0, 0.0, 0.0};
  const TimedPoint b{10.0, 100.0, -40.0};
  EXPECT_EQ(InterpolatePosition(a, b, 0.0), Vec2(0, 0));
  EXPECT_EQ(InterpolatePosition(a, b, 10.0), Vec2(100, -40));
  EXPECT_EQ(InterpolatePosition(a, b, 5.0), Vec2(50, -20));
}

TEST(InterpolationTest, TimeRatioPositionMatchesPaperFormula) {
  // Paper Eqs. 1-2 with delta_i / delta_e = 3/10.
  const TimedPoint anchor{100.0, 10.0, 20.0};
  const TimedPoint probe{110.0, 30.0, 60.0};
  const TimedPoint point{103.0, 0.0, 0.0};
  const Vec2 approx = TimeRatioPosition(anchor, probe, point);
  EXPECT_DOUBLE_EQ(approx.x, 10.0 + 0.3 * 20.0);
  EXPECT_DOUBLE_EQ(approx.y, 20.0 + 0.3 * 40.0);
}

TEST(InterpolationTest, SynchronizedDistanceZeroWhenOnSchedule) {
  const TimedPoint anchor{0.0, 0.0, 0.0};
  const TimedPoint probe{10.0, 100.0, 0.0};
  const TimedPoint on{4.0, 40.0, 0.0};
  EXPECT_DOUBLE_EQ(SynchronizedDistance(anchor, probe, on), 0.0);
}

TEST(InterpolationTest, SynchronizedDistanceSeesTemporalDeviation) {
  // The point lies ON the segment spatially, but is reached too early:
  // perpendicular distance would be 0, SED is not (the paper's key point).
  const TimedPoint anchor{0.0, 0.0, 0.0};
  const TimedPoint probe{10.0, 100.0, 0.0};
  const TimedPoint early{2.0, 80.0, 0.0};
  EXPECT_DOUBLE_EQ(SynchronizedDistance(anchor, probe, early), 60.0);
}

TEST(StatsTest, ComputeStatsMatchesTrajectory) {
  const Trajectory trajectory = Line(11, 10.0, 5.0, 0.0);  // 100 s, 500 m.
  const TrajectoryStats stats = ComputeStats(trajectory);
  EXPECT_DOUBLE_EQ(stats.duration_s, 100.0);
  EXPECT_DOUBLE_EQ(stats.length_m, 500.0);
  EXPECT_DOUBLE_EQ(stats.displacement_m, 500.0);
  EXPECT_DOUBLE_EQ(stats.avg_speed_mps, 5.0);
  EXPECT_EQ(stats.num_points, 11u);
}

TEST(StatsTest, MeanSd) {
  const MeanSd stats = ComputeMeanSd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.sd, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, MeanSdEdgeCases) {
  EXPECT_DOUBLE_EQ(ComputeMeanSd({}).mean, 0.0);
  EXPECT_DOUBLE_EQ(ComputeMeanSd({3.0}).mean, 3.0);
  EXPECT_DOUBLE_EQ(ComputeMeanSd({3.0}).sd, 0.0);
}

TEST(StatsTest, DatasetStatsAggregates) {
  const std::vector<Trajectory> dataset = {Line(11, 10.0, 5.0, 0.0),
                                           Line(21, 10.0, 10.0, 0.0)};
  const DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_DOUBLE_EQ(stats.num_points.mean, 16.0);
  EXPECT_DOUBLE_EQ(stats.duration_s.mean, 150.0);
  EXPECT_DOUBLE_EQ(stats.avg_speed_mps.mean, 7.5);
}

}  // namespace
}  // namespace stcomp
