// STNI wire-protocol codec (net/frame.h): encode/decode round trips for
// every frame type, strict-decode rejection of every corruption class
// the chaos layer can produce (bad magic, flipped bytes vs the CRC,
// truncation, trailing bytes, oversize, future versions), and the
// FrameReader's contract over arbitrarily torn/coalesced TCP delivery —
// including its one-bad-frame-kills-the-stream poisoning.

#include "stcomp/net/frame.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/serialization.h"
#include "test_util.h"

namespace stcomp::net {
namespace {

std::vector<NetFix> SampleFixes() {
  return {
      {"bus-1", TimedPoint(0.0, 1.5, -2.5)},
      {"bus-1", TimedPoint(10.0, 3.25, -4.75)},
      {"tram-7", TimedPoint(5.5, -0.125, 1e9)},
  };
}

std::vector<NetFrame> OneOfEach() {
  std::vector<NetFrame> frames;
  frames.push_back(NetFrame::Hello("device-42"));
  frames.push_back(NetFrame::HelloAck(7, 19));
  frames.push_back(NetFrame::Batch(20, SampleFixes()));
  frames.push_back(NetFrame::BatchAck(20));
  frames.push_back(NetFrame::Error(NetErrorCode::kProtocol, "batch before hello"));
  frames.push_back(NetFrame::GoAway(GoAwayReason::kDraining, "bye for now"));
  frames.push_back(NetFrame::Bye());
  return frames;
}

void ExpectFramesEqual(const NetFrame& a, const NetFrame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.client_id, b.client_id);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.last_acked, b.last_acked);
  EXPECT_EQ(a.batch_seq, b.batch_seq);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.message, b.message);
  ASSERT_EQ(a.fixes.size(), b.fixes.size());
  for (size_t i = 0; i < a.fixes.size(); ++i) {
    EXPECT_EQ(a.fixes[i].object_id, b.fixes[i].object_id);
    // Bitwise equality: coordinates travel as raw doubles so server-side
    // compression is bit-identical to in-process ingest.
    EXPECT_EQ(a.fixes[i].fix.t, b.fixes[i].fix.t);
    EXPECT_EQ(a.fixes[i].fix.position.x, b.fixes[i].fix.position.x);
    EXPECT_EQ(a.fixes[i].fix.position.y, b.fixes[i].fix.position.y);
  }
}

TEST(NetFrameCodec, RoundTripsEveryType) {
  for (const NetFrame& frame : OneOfEach()) {
    const std::string encoded = EncodeNetFrame(frame);
    std::string_view input = encoded;
    Result<NetFrame> decoded = DecodeNetFrame(&input);
    ASSERT_TRUE(decoded.ok())
        << NetMessageTypeName(frame.type) << ": " << decoded.status();
    EXPECT_TRUE(input.empty()) << "decode must consume the whole frame";
    ExpectFramesEqual(frame, *decoded);
  }
}

TEST(NetFrameCodec, EncodingStartsWithMagicAndVersion) {
  const std::string encoded = EncodeNetFrame(NetFrame::Bye());
  ASSERT_GE(encoded.size(), 6u);
  EXPECT_EQ(encoded.substr(0, 4), "STNI");
  EXPECT_EQ(static_cast<uint8_t>(encoded[4]), kNetProtocolVersion);
}

TEST(NetFrameCodec, RejectsEverySingleByteCorruption) {
  // The CRC spans everything before it, so any one-byte change anywhere
  // in the frame must be rejected. (A flip inside the CRC field itself
  // also mismatches, trivially.)
  const std::string good = EncodeNetFrame(NetFrame::Batch(3, SampleFixes()));
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    std::string_view input = bad;
    Result<NetFrame> decoded = DecodeNetFrame(&input);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << i << " slipped through";
  }
}

TEST(NetFrameCodec, RejectsEveryTruncation) {
  const std::string good = EncodeNetFrame(NetFrame::Hello("device-9"));
  for (size_t keep = 0; keep < good.size(); ++keep) {
    std::string bad = good.substr(0, keep);
    std::string_view input = bad;
    EXPECT_FALSE(DecodeNetFrame(&input).ok()) << "kept " << keep << " bytes";
  }
}

TEST(NetFrameCodec, FutureVersionIsUnimplementedNotDataLoss) {
  // Version is checked only after the CRC validates, so kUnimplemented
  // means "a real future peer", distinguishable from in-flight mangling —
  // the server turns it into kBadVersion instead of kMalformedFrame.
  // Build a CRC-correct future-version frame by hand (a naive version
  // bump of an encoded frame breaks the CRC and tests the wrong path).
  std::string future(kNetMagic, sizeof(kNetMagic));
  future.push_back(static_cast<char>(kNetProtocolVersion + 1));
  future.push_back(static_cast<char>(NetMessageType::kBye));
  future.push_back(0);  // payload length 0, varint
  const uint32_t crc = Crc32(future);
  for (int shift = 0; shift < 32; shift += 8) {
    future.push_back(static_cast<char>((crc >> shift) & 0xff));
  }
  std::string_view probe = future;
  EXPECT_EQ(DecodeNetFrame(&probe).status().code(),
            StatusCode::kUnimplemented);

  // And a frame that is both future-versioned AND mangled reports
  // kDataLoss — corruption wins because the version byte is untrusted.
  std::string mangled = future;
  mangled[6] = static_cast<char>(mangled[6] ^ 0x10);
  probe = mangled;
  EXPECT_EQ(DecodeNetFrame(&probe).status().code(), StatusCode::kDataLoss);
}

TEST(NetFrameScan, NeedsMoreOnEveryPrefix) {
  const std::string good = EncodeNetFrame(NetFrame::HelloAck(1, 2));
  for (size_t keep = 0; keep < good.size(); ++keep) {
    size_t frame_size = 0;
    Status error;
    EXPECT_EQ(ScanNetFrame(std::string_view(good).substr(0, keep),
                           kNetMaxPayloadBytes, &frame_size, &error),
              FrameScan::kNeedMore)
        << "prefix of " << keep << " bytes";
  }
  size_t frame_size = 0;
  Status error;
  ASSERT_EQ(ScanNetFrame(good, kNetMaxPayloadBytes, &frame_size, &error),
            FrameScan::kFrame);
  EXPECT_EQ(frame_size, good.size());
}

TEST(NetFrameScan, BadMagicIsImmediateError) {
  size_t frame_size = 0;
  Status error;
  EXPECT_EQ(ScanNetFrame("GET / HTTP/1.0\r\n", kNetMaxPayloadBytes,
                         &frame_size, &error),
            FrameScan::kError);
  EXPECT_FALSE(error.ok());
  // Even a single wrong leading byte is enough — no need to buffer more.
  error = Status::Ok();
  EXPECT_EQ(ScanNetFrame("X", kNetMaxPayloadBytes, &frame_size, &error),
            FrameScan::kError);
  EXPECT_FALSE(error.ok());
}

TEST(NetFrameScan, OversizedDeclaredPayloadRejectedBeforeBuffering) {
  // Hand-build a header declaring a 512 MiB payload: magic, version,
  // type, varint length. The scan must reject it from the header alone.
  std::string hostile(kNetMagic, sizeof(kNetMagic));
  hostile.push_back(static_cast<char>(kNetProtocolVersion));
  hostile.push_back(static_cast<char>(NetMessageType::kBatch));
  uint64_t huge = 512ull << 20;
  while (huge >= 0x80) {
    hostile.push_back(static_cast<char>(huge | 0x80));
    huge >>= 7;
  }
  hostile.push_back(static_cast<char>(huge));
  size_t frame_size = 0;
  Status error;
  EXPECT_EQ(ScanNetFrame(hostile, kNetMaxPayloadBytes, &frame_size, &error),
            FrameScan::kError);
  // Typed: kOutOfRange is what the server maps to kOversizedFrame (the
  // message is for humans, never for classification).
  EXPECT_EQ(error.code(), StatusCode::kOutOfRange) << error.ToString();
}

TEST(NetFrameCodec, HugeDeclaredPayloadIsTruncationNotOverflow) {
  // A 10-byte varint declaring a ~2^64 payload once wrapped the
  // `payload_size + 4` bounds check and walked DecodeNetFrame off the
  // end of the buffer. DecodeNetFrame is public (the fuzz target and
  // any direct caller hit it without ScanNetFrame's payload cap), so it
  // must reject this from its own arithmetic.
  for (const uint64_t declared :
       {~0ull, ~0ull - 3, ~0ull - 4, 1ull << 63}) {
    std::string hostile(kNetMagic, sizeof(kNetMagic));
    hostile.push_back(static_cast<char>(kNetProtocolVersion));
    hostile.push_back(static_cast<char>(NetMessageType::kBatch));
    uint64_t huge = declared;
    while (huge >= 0x80) {
      hostile.push_back(static_cast<char>(huge | 0x80));
      huge >>= 7;
    }
    hostile.push_back(static_cast<char>(huge));
    hostile += "junk";  // enough trailing bytes that a wrapped sum "fits"
    std::string_view input = hostile;
    Result<NetFrame> decoded = DecodeNetFrame(&input);
    ASSERT_FALSE(decoded.ok()) << "declared " << declared;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

TEST(NetFrameReader, ReassemblesTornDelivery) {
  // Feed a multi-frame stream one byte at a time — the worst TCP can do —
  // and expect exactly the original frame sequence.
  const std::vector<NetFrame> frames = OneOfEach();
  std::string stream;
  for (const NetFrame& frame : frames) stream += EncodeNetFrame(frame);

  FrameReader reader;
  std::vector<NetFrame> got;
  for (char byte : stream) {
    reader.Append(std::string_view(&byte, 1));
    while (true) {
      NetFrame frame;
      Status error;
      FrameScan scan = reader.Next(&frame, &error);
      if (scan == FrameScan::kNeedMore) break;
      ASSERT_EQ(scan, FrameScan::kFrame) << error.ToString();
      got.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(got.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    ExpectFramesEqual(frames[i], got[i]);
  }
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(NetFrameReader, HandlesCoalescedDelivery) {
  // The whole stream in one Append — the other extreme.
  const std::vector<NetFrame> frames = OneOfEach();
  std::string stream;
  for (const NetFrame& frame : frames) stream += EncodeNetFrame(frame);

  FrameReader reader;
  reader.Append(stream);
  for (const NetFrame& want : frames) {
    NetFrame frame;
    Status error;
    ASSERT_EQ(reader.Next(&frame, &error), FrameScan::kFrame)
        << error.ToString();
    ExpectFramesEqual(want, frame);
  }
  NetFrame frame;
  Status error;
  EXPECT_EQ(reader.Next(&frame, &error), FrameScan::kNeedMore);
}

TEST(NetFrameReader, PoisonsPermanentlyAfterCorruptFrame) {
  FrameReader reader;
  std::string bad = EncodeNetFrame(NetFrame::BatchAck(5));
  // Corrupt the trailing CRC — unambiguous corruption. (Corrupting the
  // length varint instead would just look like a frame still in flight:
  // the scan cannot distinguish that from slow delivery; the idle
  // deadline is what bounds it in production.)
  bad.back() = static_cast<char>(bad.back() ^ 0x40);
  reader.Append(bad);

  NetFrame frame;
  Status error;
  ASSERT_EQ(reader.Next(&frame, &error), FrameScan::kError);
  const std::string first = error.ToString();

  // A perfectly good frame after the poison must NOT revive the reader:
  // there is no mid-stream resync, the connection is done.
  reader.Append(EncodeNetFrame(NetFrame::Bye()));
  Status again;
  EXPECT_EQ(reader.Next(&frame, &again), FrameScan::kError);
  EXPECT_EQ(again.ToString(), first);
}

TEST(NetFrameCodec, EmptyBatchRoundTrips) {
  const std::string encoded = EncodeNetFrame(NetFrame::Batch(1, {}));
  std::string_view input = encoded;
  Result<NetFrame> decoded = DecodeNetFrame(&input);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->batch_seq, 1u);
  EXPECT_TRUE(decoded->fixes.empty());
}

TEST(NetFrameCodec, RejectsEmptyObjectIdInBatch) {
  std::vector<NetFix> fixes = {{"", TimedPoint(0.0, 0.0, 0.0)}};
  const std::string encoded = EncodeNetFrame(NetFrame::Batch(1, fixes));
  std::string_view input = encoded;
  EXPECT_FALSE(DecodeNetFrame(&input).ok());
}

}  // namespace
}  // namespace stcomp::net
