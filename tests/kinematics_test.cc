#include "stcomp/core/kinematics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Line;
using testutil::LineWithStop;
using testutil::Traj;

TEST(SegmentKinematicsTest, ConstantMotion) {
  const Trajectory trajectory = Line(5, 10.0, 3.0, 4.0);
  const auto segments = ComputeSegmentKinematics(trajectory);
  ASSERT_EQ(segments.size(), 4u);
  for (const SegmentKinematics& segment : segments) {
    EXPECT_DOUBLE_EQ(segment.duration_s, 10.0);
    EXPECT_DOUBLE_EQ(segment.speed_mps, 5.0);
    EXPECT_NEAR(segment.heading_rad, std::atan2(4.0, 3.0), 1e-12);
  }
  EXPECT_DOUBLE_EQ(segments[2].start_t, 20.0);
}

TEST(SegmentKinematicsTest, TinyInputs) {
  Trajectory empty;
  EXPECT_TRUE(ComputeSegmentKinematics(empty).empty());
  EXPECT_TRUE(ComputeSegmentKinematics(Traj({{0, 0, 0}})).empty());
}

TEST(AccelerationTest, SpeedStep) {
  // 10 m/s for two segments, then 20 m/s: one non-zero acceleration at the
  // step, (20-10)/10 = 1 m/s^2.
  const Trajectory trajectory = Traj(
      {{0, 0, 0}, {10, 100, 0}, {20, 200, 0}, {30, 400, 0}, {40, 600, 0}});
  const auto accelerations = ComputeAccelerations(trajectory);
  ASSERT_EQ(accelerations.size(), 3u);
  EXPECT_DOUBLE_EQ(accelerations[0], 0.0);
  EXPECT_DOUBLE_EQ(accelerations[1], 1.0);
  EXPECT_DOUBLE_EQ(accelerations[2], 0.0);
}

TEST(DwellTest, FindsTheStop) {
  // 10 moving samples, 8 stopped, 10 moving (10 s apart).
  const Trajectory trajectory = LineWithStop(10, 8, 10);
  const auto dwells = DetectDwells(trajectory, 0.5, 30.0);
  ASSERT_EQ(dwells.size(), 1u);
  EXPECT_GE(dwells[0].duration_s(), 70.0);
  EXPECT_GE(dwells[0].num_points, 8u);
  // The stop is at x = 10 * 10s * 15 m/s = 1500 m.
  EXPECT_NEAR(dwells[0].centroid.x, 1500.0, 1e-9);
  EXPECT_NEAR(dwells[0].centroid.y, 0.0, 1e-9);
}

TEST(DwellTest, MinDurationFilters) {
  const Trajectory trajectory = LineWithStop(10, 3, 10);  // ~30 s stop.
  EXPECT_EQ(DetectDwells(trajectory, 0.5, 10.0).size(), 1u);
  EXPECT_EQ(DetectDwells(trajectory, 0.5, 500.0).size(), 0u);
}

TEST(DwellTest, NoDwellOnConstantMotion) {
  const Trajectory trajectory = Line(20, 10.0, 10.0, 0.0);
  EXPECT_TRUE(DetectDwells(trajectory, 0.5, 10.0).empty());
}

TEST(DwellTest, DwellAtTrajectoryEnd) {
  // Motion then a final stop that runs to the end.
  std::vector<TimedPoint> points;
  for (int i = 0; i < 5; ++i) {
    points.emplace_back(i * 10.0, i * 100.0, 0.0);
  }
  for (int i = 0; i < 5; ++i) {
    points.emplace_back(50.0 + i * 10.0, 400.0, 0.0);
  }
  const Trajectory trajectory = Traj(std::move(points));
  const auto dwells = DetectDwells(trajectory, 0.5, 20.0);
  ASSERT_EQ(dwells.size(), 1u);
  EXPECT_DOUBLE_EQ(dwells[0].end_t, 90.0);
}

TEST(SpeedProfileTest, MixedMotion) {
  const Trajectory trajectory = LineWithStop(10, 10, 10);
  const SpeedProfile profile = ComputeSpeedProfile(trajectory, 0.5);
  EXPECT_DOUBLE_EQ(profile.min_mps, 0.0);
  EXPECT_DOUBLE_EQ(profile.max_mps, 15.0);
  EXPECT_NEAR(profile.moving_mean_mps, 15.0, 1e-9);
  // 31 points -> 30 segments; the 9 within-stop segments plus the one
  // into the resume point are stationary.
  EXPECT_NEAR(profile.stopped_fraction, 10.0 / 30.0, 1e-9);
  EXPECT_NEAR(profile.mean_mps, 15.0 * 20.0 / 30.0, 1e-9);
}

TEST(SpeedProfileTest, TinyInput) {
  const SpeedProfile profile = ComputeSpeedProfile(Traj({{0, 0, 0}}), 0.5);
  EXPECT_DOUBLE_EQ(profile.mean_mps, 0.0);
  EXPECT_DOUBLE_EQ(profile.stopped_fraction, 0.0);
}

}  // namespace
}  // namespace stcomp
