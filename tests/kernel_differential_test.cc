// The scalar-vs-vector differential oracle for the batched kernels
// (DESIGN.md §14). Two layers:
//
//  - Raw kernels: every KernelOps entry point of every available vector
//    backend is compared against the always-built scalar reference,
//    bitwise, across unaligned pointer offsets, tail lengths 0..vector
//    width, random data at several coordinate scales, the adversarial
//    generator corpus, NaN/Inf-stripped dirty fix streams, and explicit
//    NaN payloads (predicates must treat NaN as "never fires" in both
//    backends).
//
//  - Whole algorithms: every registered algorithm, run under the pinned
//    scalar backend and under the dispatched vector backend, must keep the
//    identical index list, and the synchronous error metrics of the result
//    must agree within the documented 4-ULP budget (in practice 0 ULP on
//    the supported backends; the budget is headroom for future ones).

#include "stcomp/geom/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proptest/generator.h"
#include "stcomp/algo/registry.h"
#include "stcomp/core/trajectory_view_soa.h"
#include "stcomp/error/synchronous_error.h"
#include "stcomp/sim/random.h"
#include "test_util.h"

namespace stcomp::kernels {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t Bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

bool BitEq(double a, double b) { return Bits(a) == Bits(b); }

// Distance in ULPs between two finite doubles (monotone unsigned mapping);
// 0 for bitwise-equal values of any class, "infinite" when exactly one
// side is NaN.
uint64_t UlpDiff(double a, double b) {
  if (BitEq(a, b)) {
    return 0;
  }
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<uint64_t>::max();
  }
  const auto key = [](double v) {
    const uint64_t u = Bits(v);
    return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
  };
  const uint64_t ka = key(a);
  const uint64_t kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

// One differential input: SoA arrays plus the label to print on failure.
struct Arrays {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> t;
};

Arrays RandomArrays(const std::string& label, size_t n, uint64_t seed,
                    double scale) {
  Rng rng(seed);
  Arrays a;
  a.label = label;
  double t = rng.NextUniform(-scale, scale);
  for (size_t i = 0; i < n; ++i) {
    a.x.push_back(rng.NextUniform(-scale, scale));
    a.y.push_back(rng.NextUniform(-scale, scale));
    t += rng.NextUniform(0.001, 2.0);
    a.t.push_back(t);
  }
  return a;
}

Arrays FromTrajectory(const std::string& label, const Trajectory& trajectory) {
  Arrays a;
  a.label = label;
  for (const TimedPoint& p : trajectory.points()) {
    a.x.push_back(p.position.x);
    a.y.push_back(p.position.y);
    a.t.push_back(p.t);
  }
  return a;
}

// Dirty fix streams with every non-finite coordinate stripped: the dirty
// families' duplicate/retrograde timestamps and extreme scales survive,
// which the raw kernels must still evaluate identically (no trajectory
// invariant at this layer).
Arrays FromDirty(const std::string& family, uint64_t seed) {
  Arrays a;
  a.label = "dirty:" + family;
  for (const TimedPoint& p : proptest::GenerateDirty(family, seed)) {
    if (std::isfinite(p.position.x) && std::isfinite(p.position.y) &&
        std::isfinite(p.t)) {
      a.x.push_back(p.position.x);
      a.y.push_back(p.position.y);
      a.t.push_back(p.t);
    }
  }
  return a;
}

std::vector<Arrays> DifferentialInputs() {
  std::vector<Arrays> inputs;
  for (const double scale : {1.0, 1e6, 1e-6}) {
    inputs.push_back(RandomArrays("random scale " + std::to_string(scale), 67,
                                  0xC0FFEE + static_cast<uint64_t>(scale),
                                  scale));
  }
  for (const proptest::CorpusCase& c : proptest::BuildCorpus(1234, 2)) {
    if (!c.trajectory.empty()) {
      inputs.push_back(FromTrajectory(proptest::Describe(c), c.trajectory));
    }
  }
  for (const std::string& family : proptest::DirtyFamilies()) {
    Arrays a = FromDirty(family, 99);
    if (!a.x.empty()) {
      inputs.push_back(std::move(a));
    }
  }
  // Explicit NaN payloads: comparisons must never fire on NaN distances in
  // either backend, and the argmax must ignore NaN lanes.
  Arrays nan = RandomArrays("nan payload", 23, 0xBAD, 10.0);
  for (size_t i = 0; i < nan.x.size(); i += 3) {
    nan.x[i] = kNaN;
  }
  nan.y[7] = kNaN;
  inputs.push_back(std::move(nan));
  return inputs;
}

std::vector<Backend> VectorBackends() {
  std::vector<Backend> backends;
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (KernelsFor(b) != nullptr) {
      backends.push_back(b);
    }
  }
  return backends;
}

// Compares every KernelOps entry point of `ops` against the scalar
// reference on the subarray [offset, offset + n) of `a`, bitwise.
void ExpectOpsAgree(const KernelOps& ops, const Arrays& a, size_t offset,
                    size_t n) {
  const KernelOps& ref = ScalarKernels();
  const std::string where = a.label + " offset " + std::to_string(offset) +
                            " n " + std::to_string(n) + " backend " +
                            ops.name;
  const double* x = a.x.data() + offset;
  const double* y = a.y.data() + offset;
  const double* t = a.t.data() + offset;
  const size_t total = a.x.size();

  // Segments: a real one spanning the full input, a zero-duration one and
  // a zero-length line (degenerate paths), and a reversed-time one.
  std::vector<SedSegment> sed_segments = {
      {a.x[0], a.y[0], a.t[0], a.x[total - 1], a.y[total - 1], a.t[total - 1]},
      {a.x[0], a.y[0], 5.0, a.x[total - 1], a.y[total - 1], 5.0},
      {a.x[0], a.y[0], a.t[total - 1], a.x[total - 1], a.y[total - 1],
       a.t[0]}};
  std::vector<LineSegment> line_segments = {
      {a.x[0], a.y[0], a.x[total - 1], a.y[total - 1]},
      {a.x[0], a.y[0], a.x[0], a.y[0]}};

  std::vector<double> want(n);
  std::vector<double> got(n);
  const auto expect_same_array = [&](const char* op) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEq(want[i], got[i]))
          << where << " " << op << " index " << i << ": " << want[i]
          << " vs " << got[i];
    }
  };
  const auto thresholds = [&] {
    std::vector<double> list = {-1.0, 0.0, kInf};
    for (const double d : want) {
      if (std::isfinite(d)) {
        list.push_back(d);  // Boundary: strict-vs-inclusive must match.
        break;
      }
    }
    return list;
  };

  for (const SedSegment& seg : sed_segments) {
    ref.sed_distances(x, y, t, n, seg, want.data());
    ops.sed_distances(x, y, t, n, seg, got.data());
    expect_same_array("sed_distances");
    for (const double threshold : thresholds()) {
      EXPECT_EQ(ref.sed_first_above(x, y, t, n, seg, threshold),
                ops.sed_first_above(x, y, t, n, seg, threshold))
          << where << " sed_first_above threshold " << threshold;
    }
    const MaxResult rw = ref.sed_max(x, y, t, n, seg);
    const MaxResult rg = ops.sed_max(x, y, t, n, seg);
    EXPECT_EQ(rw.index, rg.index) << where << " sed_max";
    EXPECT_TRUE(BitEq(rw.value, rg.value)) << where << " sed_max value";
  }

  for (const LineSegment& seg : line_segments) {
    ref.perp_distances(x, y, n, seg, want.data());
    ops.perp_distances(x, y, n, seg, got.data());
    expect_same_array("perp_distances");
    for (const double threshold : thresholds()) {
      EXPECT_EQ(ref.perp_first_above(x, y, n, seg, threshold),
                ops.perp_first_above(x, y, n, seg, threshold))
          << where << " perp_first_above threshold " << threshold;
    }
    const MaxResult rw = ref.perp_max(x, y, n, seg);
    const MaxResult rg = ops.perp_max(x, y, n, seg);
    EXPECT_EQ(rw.index, rg.index) << where << " perp_max";
    EXPECT_TRUE(BitEq(rw.value, rg.value)) << where << " perp_max value";
  }

  ref.radial_distances(x, y, n, a.x[0], a.y[0], want.data());
  ops.radial_distances(x, y, n, a.x[0], a.y[0], got.data());
  expect_same_array("radial_distances");
  for (const double threshold : thresholds()) {
    EXPECT_EQ(ref.radial_first_reaching(x, y, n, a.x[0], a.y[0], threshold),
              ops.radial_first_reaching(x, y, n, a.x[0], a.y[0], threshold))
        << where << " radial_first_reaching threshold " << threshold;
  }

  for (const double threshold : thresholds()) {
    EXPECT_EQ(ref.array_first_above(x, n, threshold),
              ops.array_first_above(x, n, threshold))
        << where << " array_first_above threshold " << threshold;
  }
  const MaxResult aw = ref.array_max(x, n);
  const MaxResult ag = ops.array_max(x, n);
  EXPECT_EQ(aw.index, ag.index) << where << " array_max";
  EXPECT_TRUE(BitEq(aw.value, ag.value)) << where << " array_max value";

  if (offset >= 1) {
    // Monotone-time segment (sync_deltas divides by bt - at).
    const SedSegment seg{a.x[0], a.y[0], a.t[0] - 1.0, a.x[total - 1],
                         a.y[total - 1], a.t[0] + 1e9};
    std::vector<double> want_dy(n);
    std::vector<double> got_dy(n);
    ref.sync_deltas(x, y, t, x - 1, y - 1, n, seg, want.data(),
                    want_dy.data());
    ops.sync_deltas(x, y, t, x - 1, y - 1, n, seg, got.data(), got_dy.data());
    expect_same_array("sync_deltas dx");
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEq(want_dy[i], got_dy[i]))
          << where << " sync_deltas dy index " << i;
    }
  }
}

TEST(KernelDifferentialTest, VectorBackendsMatchScalarBitwise) {
  const std::vector<Backend> backends = VectorBackends();
  if (backends.empty()) {
    GTEST_SKIP() << "no vector backend available on this host";
  }
  const std::vector<Arrays> inputs = DifferentialInputs();
  ASSERT_FALSE(inputs.empty());
  for (const Backend backend : backends) {
    const KernelOps& ops = *KernelsFor(backend);
    for (const Arrays& a : inputs) {
      const size_t total = a.x.size();
      // Unaligned starts x tail lengths straddling the widest vector
      // width: exercises the pure-tail, one-block and block+tail paths.
      for (size_t offset = 0; offset < 4 && offset < total; ++offset) {
        for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                               size_t{4}, size_t{5}, size_t{7}, size_t{8},
                               size_t{9}, size_t{16}, size_t{17},
                               total - offset}) {
          if (offset + n <= total) {
            ExpectOpsAgree(ops, a, offset, n);
          }
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, DispatchSeamPinsAndRestores) {
  const Backend original = KernelDispatch::Active();
  const Backend previous = KernelDispatch::SetForTest(Backend::kScalar);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(KernelDispatch::Active(), Backend::kScalar);
  EXPECT_EQ(KernelDispatch::Get().backend, Backend::kScalar);
  KernelDispatch::SetForTest(original);
  EXPECT_EQ(KernelDispatch::Active(), original);
}

TEST(KernelDifferentialTest, DetectedBackendIsAvailable) {
  EXPECT_NE(KernelsFor(DetectBestBackend()), nullptr);
  EXPECT_STRNE(BackendName(KernelDispatch::Active()), "unknown");
}

// Pins a kept list and both synchronous error metrics for one algorithm
// run under one backend.
struct AlgoOutcome {
  algo::IndexList kept;
  double sync_mean = 0.0;
  double sync_max = 0.0;
};

AlgoOutcome RunUnder(Backend backend, const algo::AlgorithmInfo& info,
                     const Trajectory& trajectory,
                     const algo::AlgorithmParams& params) {
  const Backend previous = KernelDispatch::SetForTest(backend);
  AlgoOutcome outcome;
  algo::Workspace workspace;
  info.run_view(trajectory, params, workspace, outcome.kept);
  if (trajectory.size() >= 2 &&
      algo::IsValidIndexList(trajectory, outcome.kept)) {
    outcome.sync_mean = SynchronousError(trajectory, outcome.kept).value();
    outcome.sync_max = MaxSynchronousError(trajectory, outcome.kept).value();
  }
  KernelDispatch::SetForTest(previous);
  return outcome;
}

TEST(KernelDifferentialTest, EveryAlgorithmAgreesAcrossBackends) {
  const Backend best = DetectBestBackend();
  if (best == Backend::kScalar) {
    GTEST_SKIP() << "no vector backend available on this host";
  }
  algo::AlgorithmParams params;
  params.epsilon_m = 15.0;
  params.speed_threshold_mps = 4.0;
  for (const proptest::CorpusCase& c : proptest::BuildCorpus(4242, 2)) {
    for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
      const AlgoOutcome scalar =
          RunUnder(Backend::kScalar, info, c.trajectory, params);
      const AlgoOutcome vector = RunUnder(best, info, c.trajectory, params);
      EXPECT_EQ(scalar.kept, vector.kept)
          << proptest::Describe(c) << " algorithm " << info.name;
      EXPECT_LE(UlpDiff(scalar.sync_mean, vector.sync_mean), 4u)
          << proptest::Describe(c) << " algorithm " << info.name
          << " sync mean " << scalar.sync_mean << " vs " << vector.sync_mean;
      EXPECT_LE(UlpDiff(scalar.sync_max, vector.sync_max), 4u)
          << proptest::Describe(c) << " algorithm " << info.name
          << " sync max " << scalar.sync_max << " vs " << vector.sync_max;
    }
  }
}

TEST(KernelDifferentialTest, SoARepackRoundTripsLosslessly) {
  const Trajectory trajectory = testutil::RandomWalk(257, 31);
  SoAScratch scratch;
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(trajectory, scratch);
  ASSERT_EQ(soa.size(), trajectory.size());
  for (size_t i = 0; i < soa.size(); ++i) {
    const TimedPoint& p = trajectory.points()[i];
    EXPECT_TRUE(BitEq(soa.x()[i], p.position.x)) << i;
    EXPECT_TRUE(BitEq(soa.y()[i], p.position.y)) << i;
    EXPECT_TRUE(BitEq(soa.t()[i], p.t)) << i;
    EXPECT_TRUE(BitEq(soa[i].t, p.t)) << i;
    EXPECT_TRUE(BitEq(soa[i].position.x, p.position.x)) << i;
  }
}

}  // namespace
}  // namespace stcomp::kernels
