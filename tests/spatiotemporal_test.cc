#include "stcomp/algo/spatiotemporal.h"

#include <gtest/gtest.h>

#include "stcomp/algo/time_ratio.h"
#include "test_util.h"

namespace stcomp::algo {
namespace {

using testutil::Line;
using testutil::LineWithStop;
using testutil::RandomWalk;
using testutil::Traj;

TEST(SpeedJumpTest, ComputesDerivedSpeedDifference) {
  // Segment speeds: 10 m/s then 0 m/s -> jump of 10 at index 1.
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {10, 100, 0}, {20, 100, 0}});
  EXPECT_DOUBLE_EQ(SpeedJump(trajectory, 1), 10.0);
}

TEST(OpwSpTest, ConstantSpeedCollapses) {
  const Trajectory trajectory = Line(30, 10.0, 12.0, 0.0);
  EXPECT_EQ(OpwSp(trajectory, 5.0, 5.0), (IndexList{0, 29}));
}

TEST(OpwSpTest, SpeedJumpForcesRetention) {
  // Accelerating from 5 m/s to 20 m/s instantly at index 5: with a 5 m/s
  // speed threshold the jump point must be retained even with a huge
  // distance threshold.
  std::vector<TimedPoint> points;
  double x = 0.0;
  for (int i = 0; i <= 10; ++i) {
    points.emplace_back(i * 10.0, x, 0.0);
    x += (i < 5 ? 5.0 : 20.0) * 10.0;
  }
  const Trajectory trajectory = Traj(std::move(points));
  const IndexList tight = OpwSp(trajectory, 1e9, 5.0);
  EXPECT_NE(std::find(tight.begin(), tight.end(), 5), tight.end());
  // With a generous speed threshold the jump is tolerated.
  const IndexList loose = OpwSp(trajectory, 1e9, 25.0);
  EXPECT_EQ(loose, (IndexList{0, 10}));
}

TEST(OpwSpTest, ReducesToOpwTrWithInfiniteSpeedThreshold) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Trajectory trajectory = RandomWalk(120, seed);
    for (double epsilon : {20.0, 60.0}) {
      EXPECT_EQ(OpwSp(trajectory, epsilon, 1e18), OpwTr(trajectory, epsilon))
          << "seed=" << seed;
    }
  }
}

TEST(OpwSpTest, TighterSpeedThresholdNeverCompressesMore) {
  const Trajectory trajectory = RandomWalk(150, 8);
  for (double epsilon : {30.0, 60.0}) {
    const size_t kept5 = OpwSp(trajectory, epsilon, 5.0).size();
    const size_t kept15 = OpwSp(trajectory, epsilon, 15.0).size();
    const size_t kept25 = OpwSp(trajectory, epsilon, 25.0).size();
    EXPECT_GE(kept5, kept15);
    EXPECT_GE(kept15, kept25);
  }
}

TEST(OpwSpTest, ValidIndexLists) {
  const Trajectory trajectory = RandomWalk(90, 4);
  for (double epsilon : {10.0, 50.0}) {
    for (double speed : {5.0, 15.0, 25.0}) {
      EXPECT_TRUE(
          IsValidIndexList(trajectory, OpwSp(trajectory, epsilon, speed)));
    }
  }
}

TEST(TdSpTest, ConstantSpeedCollapses) {
  const Trajectory trajectory = Line(30, 10.0, 12.0, 0.0);
  EXPECT_EQ(TdSp(trajectory, 5.0, 5.0), (IndexList{0, 29}));
}

TEST(TdSpTest, ReducesToTdTrWithInfiniteSpeedThreshold) {
  for (uint64_t seed : {5u, 6u}) {
    const Trajectory trajectory = RandomWalk(120, seed);
    EXPECT_EQ(TdSp(trajectory, 40.0, 1e18), TdTr(trajectory, 40.0));
  }
}

TEST(TdSpTest, SpeedJumpForcesSplitOnCollinearPath) {
  // Straight line with a stop: SED splits already happen, but even with a
  // huge distance threshold the speed criterion must fire.
  const Trajectory trajectory = LineWithStop(8, 6, 8);
  const IndexList kept = TdSp(trajectory, 1e9, 5.0);
  EXPECT_GT(kept.size(), 2u);
}

TEST(TdSpTest, GuaranteesSpeedJumpBoundWithinSegments) {
  // After TD-SP, no *interior* discarded point has a speed jump above the
  // threshold (those would have forced a split).
  const Trajectory trajectory = RandomWalk(150, 31);
  const double speed_threshold = 10.0;
  const IndexList kept = TdSp(trajectory, 45.0, speed_threshold);
  for (size_t s = 1; s < kept.size(); ++s) {
    for (int i = kept[s - 1] + 1; i < kept[s]; ++i) {
      EXPECT_LE(SpeedJump(trajectory, i), speed_threshold);
    }
  }
}

TEST(TdSpTest, TinyInputs) {
  Trajectory empty;
  EXPECT_TRUE(TdSp(empty, 1.0, 1.0).empty());
  const Trajectory two = Traj({{0, 0, 0}, {1, 5, 5}});
  EXPECT_EQ(TdSp(two, 1.0, 1.0), (IndexList{0, 1}));
  EXPECT_EQ(OpwSp(two, 1.0, 1.0), (IndexList{0, 1}));
}

}  // namespace
}  // namespace stcomp::algo
