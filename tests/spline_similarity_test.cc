#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "stcomp/algo/time_ratio.h"
#include "stcomp/core/spline.h"
#include "stcomp/error/cubic_error.h"
#include "stcomp/error/similarity.h"
#include "stcomp/error/synchronous_error.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

TEST(CubicTrajectoryTest, RequiresTwoPoints) {
  const Trajectory one = Traj({{0, 0, 0}});
  EXPECT_FALSE(CubicTrajectory::Create(&one).ok());
}

TEST(CubicTrajectoryTest, InterpolatesThroughSamples) {
  const Trajectory trajectory = RandomWalk(20, 1);
  const CubicTrajectory cubic = CubicTrajectory::Create(&trajectory).value();
  for (const TimedPoint& point : trajectory.points()) {
    const Vec2 at = cubic.PositionAt(point.t).value();
    EXPECT_NEAR(at.x, point.position.x, 1e-9);
    EXPECT_NEAR(at.y, point.position.y, 1e-9);
  }
}

TEST(CubicTrajectoryTest, LinearMotionReproducedExactly) {
  // A straight constant-velocity run is in the spline's span.
  const Trajectory trajectory = Line(10, 10.0, 3.0, -2.0);
  const CubicTrajectory cubic = CubicTrajectory::Create(&trajectory).value();
  for (double t = 0.0; t <= 90.0; t += 3.7) {
    const Vec2 expected{3.0 * t, -2.0 * t};
    const Vec2 at = cubic.PositionAt(t).value();
    EXPECT_NEAR(at.x, expected.x, 1e-9);
    EXPECT_NEAR(at.y, expected.y, 1e-9);
    const Vec2 v = cubic.VelocityAt(t).value();
    EXPECT_NEAR(v.x, 3.0, 1e-9);
    EXPECT_NEAR(v.y, -2.0, 1e-9);
  }
}

TEST(CubicTrajectoryTest, RangeChecked) {
  const Trajectory trajectory = Line(5, 1.0, 1.0, 0.0);
  const CubicTrajectory cubic = CubicTrajectory::Create(&trajectory).value();
  EXPECT_FALSE(cubic.PositionAt(-0.1).ok());
  EXPECT_FALSE(cubic.VelocityAt(4.1).ok());
}

TEST(CubicTrajectoryTest, VelocityIsDerivativeNumerically) {
  const Trajectory trajectory = RandomWalk(15, 2);
  const CubicTrajectory cubic = CubicTrajectory::Create(&trajectory).value();
  const double t0 = trajectory.front().t + 0.3 * trajectory.Duration();
  const double h = 1e-6;
  const Vec2 numeric = (cubic.PositionAt(t0 + h).value() -
                        cubic.PositionAt(t0 - h).value()) /
                       (2.0 * h);
  const Vec2 analytic = cubic.VelocityAt(t0).value();
  EXPECT_NEAR(analytic.x, numeric.x, 1e-4);
  EXPECT_NEAR(analytic.y, numeric.y, 1e-4);
}

TEST(CubicErrorTest, ZeroForIdenticalLinearMotion) {
  const Trajectory trajectory = Line(10, 10.0, 5.0, 0.0);
  EXPECT_NEAR(CubicSynchronousError(trajectory, trajectory, 1e-9).value(),
              0.0, 1e-9);
}

TEST(CubicErrorTest, CloseToLinearErrorOnSmoothTraces) {
  // Against the same approximation, the cubic notion should be in the
  // same ballpark as the linear one (the reconstruction differs only by
  // the spline's overshoot between samples).
  const Trajectory trajectory = RandomWalk(60, 3);
  const Trajectory approximation =
      trajectory.Subset(algo::TdTr(trajectory, 40.0));
  const double linear =
      SynchronousError(trajectory, approximation).value();
  const double cubic =
      CubicSynchronousError(trajectory, approximation, 1e-8).value();
  EXPECT_GT(cubic, 0.25 * linear);
  EXPECT_LT(cubic, 4.0 * linear);
}

TEST(FrechetTest, IdenticalTrajectoriesZero) {
  const Trajectory trajectory = RandomWalk(40, 4);
  EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(trajectory, trajectory).value(),
                   0.0);
}

TEST(FrechetTest, ParallelLinesOffset) {
  const Trajectory a = Line(10, 1.0, 10.0, 0.0, 0.0, 0.0);
  const Trajectory b = Line(10, 1.0, 10.0, 0.0, 0.0, 25.0);
  EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(a, b).value(), 25.0);
}

TEST(FrechetTest, SymmetricAndBoundsSinglePoint) {
  const Trajectory a = RandomWalk(30, 5);
  const Trajectory b = RandomWalk(25, 6);
  const double ab = DiscreteFrechetDistance(a, b).value();
  const double ba = DiscreteFrechetDistance(b, a).value();
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GT(ab, 0.0);
  // Coupling distance dominates the start/end point distances.
  EXPECT_GE(ab + 1e-12, Distance(a.front().position, b.front().position));
  EXPECT_GE(ab + 1e-12, Distance(a.back().position, b.back().position));
}

TEST(FrechetTest, CompressionBoundedByVertexCoupling) {
  // The approximation's points are a subset of the original's, so matching
  // every original point to the nearer endpoint of its covering kept
  // segment is a valid monotone coupling; the discrete Frechet distance is
  // bounded by that coupling's worst pair.
  const Trajectory trajectory = RandomWalk(100, 7);
  const algo::IndexList kept = algo::TdTr(trajectory, 30.0);
  const Trajectory approximation = trajectory.Subset(kept);
  double coupling_bound = 0.0;
  for (size_t s = 1; s < kept.size(); ++s) {
    for (int i = kept[s - 1]; i <= kept[s]; ++i) {
      const Vec2 p = trajectory[static_cast<size_t>(i)].position;
      coupling_bound = std::max(
          coupling_bound,
          std::min(
              Distance(p, trajectory[static_cast<size_t>(kept[s - 1])].position),
              Distance(p, trajectory[static_cast<size_t>(kept[s])].position)));
    }
  }
  const double frechet =
      DiscreteFrechetDistance(trajectory, approximation).value();
  EXPECT_LE(frechet, coupling_bound + 1e-9);
  EXPECT_GT(frechet, 0.0);
}

TEST(FrechetTest, RejectsEmpty) {
  Trajectory empty;
  const Trajectory a = Line(3, 1.0, 1.0, 0.0);
  EXPECT_FALSE(DiscreteFrechetDistance(empty, a).ok());
  EXPECT_FALSE(DiscreteFrechetDistance(a, empty).ok());
}

TEST(DtwTest, IdenticalZeroAndSymmetry) {
  const Trajectory a = RandomWalk(30, 8);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a).value(), 0.0);
  const Trajectory b = RandomWalk(35, 9);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b).value(), DtwDistance(b, a).value());
}

TEST(DtwTest, ParallelLinesOffset) {
  const Trajectory a = Line(10, 1.0, 10.0, 0.0, 0.0, 0.0);
  const Trajectory b = Line(10, 1.0, 10.0, 0.0, 0.0, 25.0);
  // Every aligned pair is exactly 25 m apart.
  EXPECT_DOUBLE_EQ(DtwDistance(a, b).value(), 25.0);
}

TEST(DtwTest, RobustToResampling) {
  // DTW should barely notice uniform subsampling of the same path.
  const Trajectory a = RandomWalk(100, 10);
  const Trajectory b = a.Subset([&] {
    algo::IndexList every_second;
    for (int i = 0; i < 100; i += 2) {
      every_second.push_back(i);
    }
    if (every_second.back() != 99) {
      every_second.push_back(99);
    }
    return every_second;
  }());
  EXPECT_LT(DtwDistance(a, b).value(), 15.0);
}

TEST(TimeShiftedTest, ZeroShiftMatchesMaxSync) {
  const Trajectory trajectory = RandomWalk(60, 11);
  const Trajectory approximation =
      trajectory.Subset(algo::TdTr(trajectory, 50.0));
  EXPECT_NEAR(
      TimeShiftedMaxDistance(trajectory, approximation, 0.0).value(),
      MaxSynchronousError(trajectory, approximation).value(), 1e-9);
}

TEST(TimeShiftedTest, ShiftDetectsDeparturesApart) {
  // Same motion, departed 60 s later: shifting by 60 re-aligns perfectly.
  const Trajectory a = Line(20, 10.0, 10.0, 0.0);
  std::vector<TimedPoint> delayed;
  for (const TimedPoint& point : a.points()) {
    delayed.emplace_back(point.t + 60.0, point.position);
  }
  const Trajectory b = Traj(std::move(delayed));
  EXPECT_NEAR(TimeShiftedMaxDistance(a, b, -60.0).value(), 0.0, 1e-9);
  EXPECT_GT(TimeShiftedMaxDistance(a, b, 0.0).value(), 100.0);
}

TEST(TimeShiftedTest, RejectsDisjointIntervals) {
  const Trajectory a = Line(5, 1.0, 1.0, 0.0);
  EXPECT_FALSE(TimeShiftedMaxDistance(a, a, 100.0).ok());
}

}  // namespace
}  // namespace stcomp
