// PartitionedSegmentStore (DESIGN.md §16): shard routing is stable,
// partitions are laid out and recovered independently (in parallel), a
// resharded reopen refuses with kFailedPrecondition, and Fsck aggregates
// per-partition file reports.

#include "stcomp/store/partitioned_store.h"

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/common/strings.h"
#include "test_util.h"

namespace stcomp {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "partitioned_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

PartitionedSegmentStore::Options WithShards(size_t n) {
  PartitionedSegmentStore::Options options;
  options.num_shards = n;
  options.shard_options.codec = Codec::kRaw;
  return options;
}

TEST(PartitionedStoreTest, HashIsStableAndRoutesAllShards) {
  // The id→shard mapping is durable state; lock the reference values so
  // an accidental hash change fails loudly here before it corrupts a
  // layout. (FNV-1a 64 test vectors: empty string and "a".)
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ull);
  std::set<size_t> seen;
  for (int i = 0; i < 64; ++i) {
    const size_t shard = ShardOfObject("veh-" + std::to_string(i), 4);
    ASSERT_LT(shard, 4u);
    seen.insert(shard);
  }
  // 64 ids over 4 shards: every shard takes traffic.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PartitionedStoreTest, OpenCreatesLayoutAndRoutesAppends) {
  const std::string dir = FreshDir("layout");
  PartitionedSegmentStore store(WithShards(3));
  ASSERT_TRUE(store.Open(dir).ok());
  EXPECT_EQ(store.num_shards(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::filesystem::is_directory(
        dir + StrFormat("/shard-%03zu", i)));
  }
  for (int i = 0; i < 12; ++i) {
    const std::string id = "veh-" + std::to_string(i);
    ASSERT_TRUE(store.Append(id, TimedPoint(1.0, i * 1.0, 0.0)).ok());
    // The routed append landed in exactly the hash-designated partition.
    EXPECT_TRUE(store.shard(store.ShardOf(id)).store().Get(id).ok());
  }
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.object_count(), 12u);
  EXPECT_FALSE(store.dead());
}

TEST(PartitionedStoreTest, ReopenRecoversEveryPartition) {
  const std::string dir = FreshDir("reopen");
  {
    PartitionedSegmentStore store(WithShards(4));
    ASSERT_TRUE(store.Open(dir).ok());
    for (int i = 0; i < 40; ++i) {
      const std::string id = "obj-" + std::to_string(i);
      ASSERT_TRUE(store.Append(id, TimedPoint(1.0, i * 2.0, -i * 1.0)).ok());
      ASSERT_TRUE(store.Append(id, TimedPoint(2.0, i * 2.0 + 1, -i * 1.0)).ok());
    }
    ASSERT_TRUE(store.Commit().ok());
    // Uncommitted tail: recovery must drop it in whichever shard it hit.
    ASSERT_TRUE(store.Append("obj-0", TimedPoint(3.0, 99.0, 99.0)).ok());
  }
  // num_shards = 0 adopts the on-disk layout.
  PartitionedSegmentStore reopened(WithShards(0));
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(reopened.num_shards(), 4u);
  EXPECT_TRUE(reopened.recovery_clean())
      << reopened.DescribeRecovery();
  EXPECT_EQ(reopened.object_count(), 40u);
  const Result<Trajectory> obj0 = reopened.Get("obj-0");
  ASSERT_TRUE(obj0.ok());
  EXPECT_EQ(obj0->size(), 2u);  // The uncommitted third point is gone.
}

TEST(PartitionedStoreTest, ReshardedReopenRefuses) {
  const std::string dir = FreshDir("reshard");
  {
    PartitionedSegmentStore store(WithShards(2));
    ASSERT_TRUE(store.Open(dir).ok());
    ASSERT_TRUE(store.Append("veh-1", TimedPoint(1.0, 0.0, 0.0)).ok());
    ASSERT_TRUE(store.Commit().ok());
  }
  PartitionedSegmentStore resharded(WithShards(5));
  const Status status = resharded.Open(dir);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("resharding requires an explicit migration"),
            std::string_view::npos)
      << status.ToString();
}

TEST(PartitionedStoreTest, SequentialRecoveryMatchesParallel) {
  const std::string dir = FreshDir("seqpar");
  {
    PartitionedSegmentStore store(WithShards(4));
    ASSERT_TRUE(store.Open(dir).ok());
    const Trajectory walk = testutil::RandomWalk(30, 7);
    for (int i = 0; i < 16; ++i) {
      const std::string id = "w-" + std::to_string(i);
      for (const TimedPoint& point : walk.points()) {
        ASSERT_TRUE(store.Append(id, point).ok());
      }
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  PartitionedSegmentStore::Options sequential = WithShards(0);
  sequential.parallel_recovery = false;
  PartitionedSegmentStore seq(sequential);
  ASSERT_TRUE(seq.Open(dir).ok());
  PartitionedSegmentStore par(WithShards(0));
  ASSERT_TRUE(par.Open(dir).ok());
  ASSERT_EQ(seq.num_shards(), par.num_shards());
  for (size_t i = 0; i < seq.num_shards(); ++i) {
    const Result<std::string> a = seq.shard(i).store().SerializeToString();
    const Result<std::string> b = par.shard(i).store().SerializeToString();
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "shard " << i;
  }
}

TEST(PartitionedStoreTest, FsckAggregatesShardFiles) {
  const std::string dir = FreshDir("fsck");
  {
    PartitionedSegmentStore store(WithShards(2));
    ASSERT_TRUE(store.Open(dir).ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store.Append("f-" + std::to_string(i),
                               TimedPoint(1.0, 1.0, 1.0)).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  const Result<FsckReport> report = PartitionedSegmentStore::Fsck(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Describe();
  size_t shard0_files = 0;
  size_t shard1_files = 0;
  for (const FsckFileReport& file : report->files) {
    if (file.file.rfind("shard-000/", 0) == 0) ++shard0_files;
    if (file.file.rfind("shard-001/", 0) == 0) ++shard1_files;
  }
  EXPECT_GT(shard0_files, 0u);
  EXPECT_GT(shard1_files, 0u);
  // Fsck on a partitionless directory is a kNotFound, not a misread.
  const std::string empty_dir = FreshDir("fsck_empty");
  std::filesystem::create_directories(empty_dir);
  EXPECT_EQ(PartitionedSegmentStore::Fsck(empty_dir).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace stcomp
