#include "stcomp/gps/projection.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stcomp/sim/random.h"

namespace stcomp {
namespace {

// Enschede, the paper's data-collection area.
constexpr LatLon kEnschede{52.22, 6.89};

TEST(LocalEnuTest, OriginMapsToZero) {
  const LocalEnuProjection projection =
      LocalEnuProjection::Create(kEnschede).value();
  const Vec2 at_origin = projection.Forward(kEnschede);
  EXPECT_NEAR(at_origin.x, 0.0, 1e-9);
  EXPECT_NEAR(at_origin.y, 0.0, 1e-9);
}

TEST(LocalEnuTest, RoundTrip) {
  const LocalEnuProjection projection =
      LocalEnuProjection::Create(kEnschede).value();
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const LatLon fix{kEnschede.lat_deg + rng.NextUniform(-0.2, 0.2),
                     kEnschede.lon_deg + rng.NextUniform(-0.3, 0.3)};
    const LatLon back = projection.Inverse(projection.Forward(fix));
    EXPECT_NEAR(back.lat_deg, fix.lat_deg, 1e-12);
    EXPECT_NEAR(back.lon_deg, fix.lon_deg, 1e-12);
  }
}

TEST(LocalEnuTest, DistancesMatchHaversineAtTripScale) {
  const LocalEnuProjection projection =
      LocalEnuProjection::Create(kEnschede).value();
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    // Points within ~20 km of the origin.
    const LatLon a{kEnschede.lat_deg + rng.NextUniform(-0.1, 0.1),
                   kEnschede.lon_deg + rng.NextUniform(-0.15, 0.15)};
    const LatLon b{kEnschede.lat_deg + rng.NextUniform(-0.1, 0.1),
                   kEnschede.lon_deg + rng.NextUniform(-0.15, 0.15)};
    const double projected = Distance(projection.Forward(a),
                                      projection.Forward(b));
    const double great_circle = HaversineDistance(a, b);
    // Haversine uses a sphere, the projection the ellipsoid: agree to ~0.5%.
    EXPECT_NEAR(projected, great_circle, 0.005 * great_circle + 0.5);
  }
}

TEST(LocalEnuTest, NorthIsPositiveYEastIsPositiveX) {
  const LocalEnuProjection projection =
      LocalEnuProjection::Create(kEnschede).value();
  EXPECT_GT(projection.Forward({kEnschede.lat_deg + 0.01,
                                kEnschede.lon_deg}).y, 0.0);
  EXPECT_GT(projection.Forward({kEnschede.lat_deg,
                                kEnschede.lon_deg + 0.01}).x, 0.0);
}

TEST(LocalEnuTest, RejectsPolarOrigins) {
  EXPECT_FALSE(LocalEnuProjection::Create({89.95, 0.0}).ok());
  EXPECT_FALSE(LocalEnuProjection::Create({0.0, 200.0}).ok());
}

TEST(TransverseMercatorTest, CentralMeridianMapsToZeroEasting) {
  const TransverseMercator projection(7.0);
  const Vec2 on_meridian = projection.Forward({52.0, 7.0});
  EXPECT_NEAR(on_meridian.x, 0.0, 1e-6);
  EXPECT_GT(on_meridian.y, 5.7e6);  // ~52 degrees of meridional arc.
}

TEST(TransverseMercatorTest, RoundTrip) {
  const TransverseMercator projection(7.0);
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const LatLon fix{rng.NextUniform(-70.0, 70.0),
                     7.0 + rng.NextUniform(-2.5, 2.5)};
    const LatLon back = projection.Inverse(projection.Forward(fix));
    EXPECT_NEAR(back.lat_deg, fix.lat_deg, 1e-8);
    EXPECT_NEAR(back.lon_deg, fix.lon_deg, 1e-8);
  }
}

TEST(TransverseMercatorTest, AgreesWithLocalEnuNearOrigin) {
  const TransverseMercator tm(kEnschede.lon_deg);
  const LocalEnuProjection enu =
      LocalEnuProjection::Create(kEnschede).value();
  const Vec2 tm_origin = tm.Forward(kEnschede);
  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    const LatLon fix{kEnschede.lat_deg + rng.NextUniform(-0.05, 0.05),
                     kEnschede.lon_deg + rng.NextUniform(-0.08, 0.08)};
    const Vec2 via_tm = tm.Forward(fix) - tm_origin;
    const Vec2 via_enu = enu.Forward(fix);
    // Within ~10 km of the origin both frames agree to metres; the TM
    // scale factor 0.9996 alone contributes up to ~0.04% (~5 m).
    EXPECT_NEAR(via_tm.x, via_enu.x, 8.0);
    EXPECT_NEAR(via_tm.y, via_enu.y, 8.0);
  }
}

TEST(HaversineTest, KnownDistance) {
  // Enschede to Amsterdam is ~140 km.
  const double d = HaversineDistance({52.22, 6.89}, {52.37, 4.90});
  EXPECT_NEAR(d, 140000.0, 8000.0);
  EXPECT_DOUBLE_EQ(HaversineDistance(kEnschede, kEnschede), 0.0);
}

}  // namespace
}  // namespace stcomp
