#include <gtest/gtest.h>

#include "stcomp/algo/angular.h"
#include "stcomp/algo/compression.h"
#include "stcomp/algo/perpendicular.h"
#include "stcomp/algo/radial_distance.h"
#include "stcomp/algo/sampling.h"
#include "test_util.h"

namespace stcomp::algo {
namespace {

using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

TEST(CompressionTest, KeepAllAndValidity) {
  const Trajectory trajectory = Line(5, 1.0, 1.0, 0.0);
  const IndexList all = KeepAll(trajectory);
  EXPECT_EQ(all, (IndexList{0, 1, 2, 3, 4}));
  EXPECT_TRUE(IsValidIndexList(trajectory, all));
  EXPECT_TRUE(IsValidIndexList(trajectory, {0, 2, 4}));
  EXPECT_FALSE(IsValidIndexList(trajectory, {0, 2}));     // Missing last.
  EXPECT_FALSE(IsValidIndexList(trajectory, {1, 4}));     // Missing first.
  EXPECT_FALSE(IsValidIndexList(trajectory, {0, 2, 2, 4}));  // Not strict.
  EXPECT_FALSE(IsValidIndexList(trajectory, {}));
}

TEST(CompressionTest, EmptyTrajectoryValidity) {
  Trajectory empty;
  EXPECT_TRUE(IsValidIndexList(empty, {}));
  EXPECT_FALSE(IsValidIndexList(empty, {0}));
}

TEST(CompressionTest, CompressionPercent) {
  EXPECT_DOUBLE_EQ(CompressionPercent(100, 25), 75.0);
  EXPECT_DOUBLE_EQ(CompressionPercent(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(CompressionPercent(0, 0), 0.0);
}

TEST(UniformSamplingTest, KeepsEveryIth) {
  const Trajectory trajectory = Line(10, 1.0, 1.0, 0.0);
  EXPECT_EQ(UniformSampling(trajectory, 3), (IndexList{0, 3, 6, 9}));
}

TEST(UniformSamplingTest, AlwaysIncludesLast) {
  const Trajectory trajectory = Line(11, 1.0, 1.0, 0.0);
  const IndexList kept = UniformSampling(trajectory, 4);
  EXPECT_EQ(kept, (IndexList{0, 4, 8, 10}));
}

TEST(UniformSamplingTest, KeepEveryOneKeepsAll) {
  const Trajectory trajectory = Line(5, 1.0, 1.0, 0.0);
  EXPECT_EQ(UniformSampling(trajectory, 1), KeepAll(trajectory));
}

TEST(TemporalSamplingTest, BucketsByTime) {
  // Samples at t = 0..9; 3-second buckets keep 0, 3, 6, 9.
  const Trajectory trajectory = Line(10, 1.0, 1.0, 0.0);
  EXPECT_EQ(TemporalSampling(trajectory, 3.0), (IndexList{0, 3, 6, 9}));
}

TEST(TemporalSamplingTest, IrregularGaps) {
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {1, 1, 0}, {50, 2, 0}, {51, 3, 0}, {100, 4, 0}});
  // 10-second buckets: 0 kept; 1 skipped; 50 kept (gap), 51 skipped
  // (within the bucket that began at 50); 100 is last.
  EXPECT_EQ(TemporalSampling(trajectory, 10.0), (IndexList{0, 2, 4}));
}

TEST(RadialDistanceTest, DropsNearNeighbours) {
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {1, 5, 0}, {2, 20, 0}, {3, 22, 0}, {4, 50, 0}});
  // eps=10: point 1 at 5 m from point 0 is dropped; point 2 at 20 m kept;
  // point 3 at 2 m from point 2 dropped; last always kept.
  EXPECT_EQ(RadialDistance(trajectory, 10.0), (IndexList{0, 2, 4}));
}

TEST(RadialDistanceTest, ZeroEpsilonKeepsEverything) {
  const Trajectory trajectory = RandomWalk(20, 1);
  EXPECT_EQ(RadialDistance(trajectory, 0.0), KeepAll(trajectory));
}

TEST(PerpendicularDistanceTest, DropsCollinearKeepsCorners) {
  const Trajectory trajectory = Traj(
      {{0, 0, 0}, {1, 10, 0}, {2, 20, 0}, {3, 20, 10}, {4, 20, 20}});
  // Points 1 and 3 lie on the line between their neighbours; point 2 is the
  // 90-degree corner.
  const IndexList kept = PerpendicularDistance(trajectory, 1.0);
  EXPECT_EQ(kept, (IndexList{0, 2, 4}));
}

TEST(PerpendicularDistanceTest, HugeThresholdKeepsOnlyEndpoints) {
  const Trajectory trajectory = RandomWalk(30, 2);
  EXPECT_EQ(PerpendicularDistance(trajectory, 1e9),
            (IndexList{0, 29}));
}

TEST(AngularChangeTest, StraightRunsCollapse) {
  const Trajectory trajectory = Line(10, 1.0, 3.0, 0.0);
  EXPECT_EQ(AngularChange(trajectory, 0.05), (IndexList{0, 9}));
}

TEST(AngularChangeTest, SharpTurnRetained) {
  const Trajectory trajectory = Traj(
      {{0, 0, 0}, {1, 10, 0}, {2, 20, 0}, {3, 20, 10}, {4, 20, 20}});
  const IndexList kept = AngularChange(trajectory, 0.3);
  EXPECT_EQ(kept, (IndexList{0, 2, 4}));
}

TEST(AngularChangeTest, ZeroThresholdKeepsAll) {
  const Trajectory trajectory = RandomWalk(15, 3);
  EXPECT_EQ(AngularChange(trajectory, 0.0), KeepAll(trajectory));
}

// All simple algorithms on degenerate inputs.
TEST(SimpleAlgosTest, TinyTrajectories) {
  Trajectory empty;
  const Trajectory one = Traj({{0, 0, 0}});
  const Trajectory two = Traj({{0, 0, 0}, {1, 1, 1}});
  EXPECT_TRUE(UniformSampling(empty, 2).empty());
  EXPECT_EQ(UniformSampling(one, 2), (IndexList{0}));
  EXPECT_EQ(TemporalSampling(two, 100.0), (IndexList{0, 1}));
  EXPECT_EQ(RadialDistance(two, 10.0), (IndexList{0, 1}));
  EXPECT_EQ(PerpendicularDistance(one, 10.0), (IndexList{0}));
  EXPECT_EQ(AngularChange(two, 1.0), (IndexList{0, 1}));
}

}  // namespace
}  // namespace stcomp::algo
