// Shared helpers for the stcomp test suite.

#ifndef STCOMP_TESTS_TEST_UTIL_H_
#define STCOMP_TESTS_TEST_UTIL_H_

#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/sim/random.h"

namespace stcomp::testutil {

// Builds a trajectory from {t, x, y} triples; aborts on invalid input
// (tests construct valid fixtures).
inline Trajectory Traj(std::vector<TimedPoint> points) {
  Result<Trajectory> result = Trajectory::FromPoints(std::move(points));
  STCOMP_CHECK(result.ok());
  return std::move(result).value();
}

// A straight constant-speed run: n points, dt seconds apart, vx/vy m/s.
inline Trajectory Line(int n, double dt, double vx, double vy,
                       double x0 = 0.0, double y0 = 0.0) {
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.emplace_back(i * dt, x0 + vx * i * dt, y0 + vy * i * dt);
  }
  return Traj(std::move(points));
}

// A generic-position random walk: irregular timestamps, jittered positions.
// Deterministic in `seed`.
inline Trajectory RandomWalk(int n, uint64_t seed, double step_m = 50.0) {
  Rng rng(seed);
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  double t = 0.0;
  Vec2 position{0.0, 0.0};
  for (int i = 0; i < n; ++i) {
    points.emplace_back(t, position);
    t += 1.0 + 9.0 * rng.NextDouble();
    position += {step_m * (rng.NextDouble() - 0.3),
                 step_m * (rng.NextDouble() - 0.5)};
  }
  return Traj(std::move(points));
}

// An x-monotone (hence simple, non-self-intersecting) random chain with
// irregular vertical swings; the guaranteed-correct regime for the
// Melkman-based path hull.
inline Trajectory MonotoneWalk(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TimedPoint> points;
  points.reserve(static_cast<size_t>(n));
  double t = 0.0;
  double x = 0.0;
  double y = 0.0;
  for (int i = 0; i < n; ++i) {
    points.emplace_back(t, x, y);
    t += 1.0 + 9.0 * rng.NextDouble();
    x += 5.0 + 45.0 * rng.NextDouble();
    y += 80.0 * (rng.NextDouble() - 0.5);
  }
  return Traj(std::move(points));
}

// A drive with a long stop in the middle: spatially a straight line, but
// with strong speed variation — the regime where spatial and spatiotemporal
// criteria disagree most.
inline Trajectory LineWithStop(int n_before, int stop_samples, int n_after,
                               double dt = 10.0, double v = 15.0) {
  std::vector<TimedPoint> points;
  double t = 0.0;
  double x = 0.0;
  for (int i = 0; i < n_before; ++i) {
    points.emplace_back(t, x, 0.0);
    t += dt;
    x += v * dt;
  }
  for (int i = 0; i < stop_samples; ++i) {
    points.emplace_back(t, x, 0.0);
    t += dt;
  }
  for (int i = 0; i < n_after; ++i) {
    points.emplace_back(t, x, 0.0);
    t += dt;
    x += v * dt;
  }
  points.emplace_back(t, x, 0.0);
  return Traj(std::move(points));
}

}  // namespace stcomp::testutil

#endif  // STCOMP_TESTS_TEST_UTIL_H_
