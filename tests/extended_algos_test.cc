#include <gtest/gtest.h>

#include "stcomp/algo/reumann_witkam.h"
#include "stcomp/algo/squish.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/algo/visvalingam.h"
#include "stcomp/error/evaluation.h"
#include "test_util.h"

namespace stcomp::algo {
namespace {

using testutil::Line;
using testutil::LineWithStop;
using testutil::RandomWalk;
using testutil::Traj;

TEST(VisvalingamTest, CollinearCollapses) {
  const Trajectory trajectory = Line(40, 1.0, 3.0, 2.0);
  EXPECT_EQ(Visvalingam(trajectory, 0.1), (IndexList{0, 39}));
}

TEST(VisvalingamTest, KeepsLargeTriangles) {
  // One 100x50 corner: triangle area 2500 m^2.
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {1, 100, 0}, {2, 100, 100}});
  EXPECT_EQ(Visvalingam(trajectory, 2000.0), (IndexList{0, 1, 2}));
  EXPECT_EQ(Visvalingam(trajectory, 6000.0), (IndexList{0, 2}));
}

TEST(VisvalingamTest, MonotoneInThreshold) {
  const Trajectory trajectory = RandomWalk(120, 3);
  size_t previous = trajectory.size() + 1;
  for (double area : {1.0, 100.0, 1e4, 1e6}) {
    const IndexList kept = Visvalingam(trajectory, area);
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
    EXPECT_LE(kept.size(), previous);
    previous = kept.size();
  }
}

TEST(VisvalingamMaxPointsTest, HonoursBudget) {
  const Trajectory trajectory = RandomWalk(90, 5);
  for (int budget : {2, 5, 25, 89}) {
    const IndexList kept = VisvalingamMaxPoints(trajectory, budget);
    EXPECT_EQ(kept.size(), static_cast<size_t>(budget));
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
  }
  EXPECT_EQ(VisvalingamMaxPoints(trajectory, 500), KeepAll(trajectory));
}

TEST(VisvalingamTrTest, ConstantVelocityCollapsesDwellSurvives) {
  // Constant velocity: 3-D collinear, zero area, collapses.
  const Trajectory steady = Line(30, 10.0, 12.0, 5.0);
  EXPECT_EQ(VisvalingamTr(steady, 1.0, 10.0).size(), 2u);
  // A dwell deviates temporally: survives the spatiotemporal variant but
  // not the spatial one.
  const Trajectory with_stop = LineWithStop(10, 8, 10);
  EXPECT_EQ(Visvalingam(with_stop, 1.0).size(), 2u);
  EXPECT_GT(VisvalingamTr(with_stop, 1.0, 10.0).size(), 2u);
}

TEST(VisvalingamTrTest, ZeroTimeWeightMatchesSpatial) {
  const Trajectory trajectory = RandomWalk(80, 7);
  EXPECT_EQ(VisvalingamTr(trajectory, 500.0, 0.0),
            Visvalingam(trajectory, 500.0));
}

TEST(ReumannWitkamTest, StraightLineCollapses) {
  const Trajectory trajectory = Line(25, 1.0, 4.0, 1.0);
  EXPECT_EQ(ReumannWitkam(trajectory, 2.0), (IndexList{0, 24}));
}

TEST(ReumannWitkamTest, LeavesTheStripAtCorners) {
  const Trajectory trajectory = Traj(
      {{0, 0, 0}, {1, 50, 0}, {2, 100, 0}, {3, 100, 50}, {4, 100, 100}});
  const IndexList kept = ReumannWitkam(trajectory, 5.0);
  EXPECT_TRUE(IsValidIndexList(trajectory, kept));
  // The corner region must be represented (point 2 or 3 kept).
  EXPECT_GT(kept.size(), 2u);
}

TEST(ReumannWitkamTest, ValidAcrossThresholds) {
  const Trajectory trajectory = RandomWalk(100, 9);
  for (double epsilon : {1.0, 20.0, 400.0}) {
    EXPECT_TRUE(
        IsValidIndexList(trajectory, ReumannWitkam(trajectory, epsilon)));
  }
}

TEST(SquishTest, BufferBoundRespected) {
  const Trajectory trajectory = RandomWalk(200, 11);
  for (size_t capacity : {4u, 10u, 50u}) {
    const IndexList kept = Squish(trajectory, capacity);
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
    EXPECT_LE(kept.size(), capacity);
  }
}

TEST(SquishTest, LargeBufferKeepsEverything) {
  const Trajectory trajectory = RandomWalk(50, 13);
  EXPECT_EQ(Squish(trajectory, 500), KeepAll(trajectory));
}

TEST(SquishTest, PrefersHighSedPoints) {
  // Straight constant-speed line plus one big detour: at capacity 3 the
  // detour point must be the survivor.
  std::vector<TimedPoint> points;
  for (int i = 0; i <= 10; ++i) {
    points.emplace_back(i * 10.0, i * 100.0, i == 5 ? 300.0 : 0.0);
  }
  const Trajectory trajectory = testutil::Traj(std::move(points));
  const IndexList kept = Squish(trajectory, 3);
  EXPECT_EQ(kept, (IndexList{0, 5, 10}));
}

TEST(SquishETest, ZeroBudgetRemovesOnlyZeroErrorPoints) {
  const Trajectory steady = Line(30, 10.0, 8.0, 0.0);
  EXPECT_EQ(SquishE(steady, 0.0), (IndexList{0, 29}));
  const Trajectory jagged = RandomWalk(50, 15);
  EXPECT_EQ(SquishE(jagged, 0.0), KeepAll(jagged));
}

TEST(SquishETest, ErrorEstimateBoundsTrueError) {
  // The priority propagation makes the estimate an upper bound in
  // practice; verify the realised max SED stays within mu on random walks.
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Trajectory trajectory = RandomWalk(150, seed);
    for (double mu : {20.0, 60.0}) {
      const IndexList kept = SquishE(trajectory, mu);
      const Evaluation eval = Evaluate(trajectory, kept).value();
      EXPECT_LE(eval.sync_error_max_m, mu + 1e-9)
          << "seed=" << seed << " mu=" << mu;
    }
  }
}

TEST(SquishETest, CompressionGrowsWithBudget) {
  const Trajectory trajectory = RandomWalk(200, 17);
  size_t previous = trajectory.size() + 1;
  for (double mu : {5.0, 20.0, 80.0, 320.0}) {
    const size_t kept = SquishE(trajectory, mu).size();
    EXPECT_LE(kept, previous);
    previous = kept;
  }
}

TEST(SquishETest, ComparableToOpwTrAtSameBudgetWithHardErrorBound) {
  // At the same numeric budget SQUISH-E and OPW-TR keep similar point
  // counts (which one wins depends on the trace), but SQUISH-E's realised
  // max error is bounded by the budget, which OPW-TR only guarantees for
  // non-final segments.
  const Trajectory trajectory = RandomWalk(300, 19);
  for (double budget : {20.0, 40.0, 80.0}) {
    const IndexList squish = SquishE(trajectory, budget);
    const IndexList opw = OpwTr(trajectory, budget);
    // SQUISH-E gets more conservative (relatively) as the budget grows,
    // because its estimates accumulate; it still compresses meaningfully.
    EXPECT_GT(squish.size(), opw.size() / 2) << "budget=" << budget;
    EXPECT_LT(squish.size(), trajectory.size()) << "budget=" << budget;
    const Evaluation eval = Evaluate(trajectory, squish).value();
    EXPECT_LE(eval.sync_error_max_m, budget + 1e-9);
  }
}

TEST(SquishBufferTest, MemoryIsRecycled) {
  // The buffer's node storage must stay O(capacity), not O(stream length).
  SquishBuffer buffer(8, 0.0);
  Rng rng(21);
  double t = 0.0;
  for (int i = 0; i < 10000; ++i) {
    t += 1.0 + rng.NextDouble();
    buffer.Push(i, TimedPoint(t, rng.NextUniform(0, 1000),
                              rng.NextUniform(0, 1000)));
    EXPECT_LE(buffer.size(), 9u);
  }
  EXPECT_LE(buffer.Finalize().size(), 8u);
}

}  // namespace
}  // namespace stcomp::algo
