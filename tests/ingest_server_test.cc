// IngestServer robustness contract (net/ingest_server.h): handshake and
// acked-batch semantics, exactly-once resume across reconnects, typed
// protocol-error quarantine for malformed and out-of-state frames, the
// handshake/slow-loris deadline, session-cap shedding with GOAWAY,
// graceful drain on Stop(), /ingestz rendering and the stcomp_net_*
// counters. Uses the real FleetClient where the client is cooperative
// and a raw socket where the test IS the hostile peer.

#include "stcomp/net/ingest_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/net/fleet_client.h"
#include "stcomp/net/frame.h"
#include "test_util.h"

namespace stcomp::net {
namespace {

// A thread-safe recording sink standing in for the fleet engine.
class RecordingSink {
 public:
  Status Push(std::string_view object_id, const TimedPoint& fix) {
    std::lock_guard<std::mutex> lock(mu_);
    fixes_[std::string(object_id)].push_back(fix);
    return Status::Ok();
  }

  IngestServer::PushFn AsPushFn() {
    return [this](std::string_view id, const TimedPoint& fix) {
      return Push(id, fix);
    };
  }

  std::vector<TimedPoint> Get(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu_);
    return fixes_[id];
  }

  size_t total() {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [id, fixes] : fixes_) n += fixes.size();
    return n;
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::vector<TimedPoint>> fixes_;
};

// A raw blocking TCP connection for playing hostile peer.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(std::string_view bytes) {
    ASSERT_TRUE(SendAll(fd_, bytes).ok());
  }

  // Best-effort write for sends the server may race with a close of
  // this socket (e.g. after fencing the session); failure is fine.
  void SendBestEffort(std::string_view bytes) {
    (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  // Blocks up to `timeout_ms` for the next complete frame.
  Result<NetFrame> ReadFrame(int timeout_ms = 2000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      NetFrame frame;
      Status error;
      FrameScan scan = reader_.Next(&frame, &error);
      if (scan == FrameScan::kFrame) return frame;
      if (scan == FrameScan::kError) return error;
      if (std::chrono::steady_clock::now() >= deadline) {
        return UnavailableError("timed out waiting for frame");
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return UnavailableError("peer closed");
      reader_.Append(std::string_view(chunk, n));
    }
  }

  // True once the server closes the connection (EOF).
  bool WaitForClose(int timeout_ms = 2000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return true;
      reader_.Append(std::string_view(chunk, n));
    }
    return false;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameReader reader_;
};

IngestServerOptions FastOptions(const std::string& instance) {
  IngestServerOptions options;
  options.instance = instance;
  options.idle_timeout_s = 30.0;
  options.handshake_timeout_s = 5.0;
  return options;
}

TEST(IngestServer, HandshakeBatchAckFlow) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-basic"));
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);

  FleetClientOptions copts;
  copts.port = server.port();
  copts.client_id = "veh-1";
  copts.batch_size = 4;
  FleetClient client(copts);
  ASSERT_TRUE(client.Connect().ok());

  Trajectory walk = testutil::RandomWalk(10, 77);
  for (const TimedPoint& p : walk.points()) {
    ASSERT_TRUE(client.Push("veh-1", p).ok());
  }
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.fixes_pushed(), 10u);
  EXPECT_EQ(client.batches_acked(), 3u);  // 4 + 4 + 2

  std::vector<TimedPoint> got = sink.Get("veh-1");
  ASSERT_EQ(got.size(), walk.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].t, walk.points()[i].t);
    EXPECT_EQ(got[i].position.x, walk.points()[i].position.x);
    EXPECT_EQ(got[i].position.y, walk.points()[i].position.y);
  }
  EXPECT_TRUE(client.Bye().ok());
  EXPECT_EQ(server.batches_acked(), 3u);
  EXPECT_EQ(server.fixes_in(), 10u);
  server.Stop();
}

TEST(IngestServer, DuplicateBatchReackedWithoutReapplying) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-dup"));
  ASSERT_TRUE(server.Start(0).ok());

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(EncodeNetFrame(NetFrame::Hello("veh-dup")));
  Result<NetFrame> hello_ack = conn.ReadFrame();
  ASSERT_TRUE(hello_ack.ok()) << hello_ack.status();
  ASSERT_EQ(hello_ack->type, NetMessageType::kHelloAck);
  EXPECT_EQ(hello_ack->last_acked, 0u);

  std::vector<NetFix> fixes = {{"veh-dup", TimedPoint(1.0, 2.0, 3.0)}};
  const std::string batch = EncodeNetFrame(NetFrame::Batch(1, fixes));
  conn.Send(batch);
  Result<NetFrame> ack1 = conn.ReadFrame();
  ASSERT_TRUE(ack1.ok());
  EXPECT_EQ(ack1->type, NetMessageType::kBatchAck);
  EXPECT_EQ(ack1->batch_seq, 1u);

  // The identical batch again — the lost-ack resend shape. Must be acked
  // again and applied exactly once.
  conn.Send(batch);
  Result<NetFrame> ack2 = conn.ReadFrame();
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2->type, NetMessageType::kBatchAck);
  EXPECT_EQ(ack2->batch_seq, 1u);

  EXPECT_EQ(sink.Get("veh-dup").size(), 1u);
  EXPECT_EQ(server.duplicate_batches(), 1u);
  server.Stop();
}

TEST(IngestServer, BatchSeqGapIsProtocolError) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-gap"));
  ASSERT_TRUE(server.Start(0).ok());

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(EncodeNetFrame(NetFrame::Hello("veh-gap")));
  ASSERT_TRUE(conn.ReadFrame().ok());

  std::vector<NetFix> fixes = {{"veh-gap", TimedPoint(1.0, 0.0, 0.0)}};
  conn.Send(EncodeNetFrame(NetFrame::Batch(3, fixes)));  // expected seq 1
  Result<NetFrame> error = conn.ReadFrame();
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, NetMessageType::kError);
  EXPECT_EQ(static_cast<NetErrorCode>(error->code), NetErrorCode::kProtocol);
  EXPECT_TRUE(conn.WaitForClose());
  EXPECT_EQ(sink.total(), 0u);
  EXPECT_GE(server.protocol_errors(), 1u);
  server.Stop();
}

TEST(IngestServer, BatchBeforeHelloIsProtocolError) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-nohello"));
  ASSERT_TRUE(server.Start(0).ok());

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  std::vector<NetFix> fixes = {{"x", TimedPoint(0.0, 0.0, 0.0)}};
  conn.Send(EncodeNetFrame(NetFrame::Batch(1, fixes)));
  Result<NetFrame> error = conn.ReadFrame();
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, NetMessageType::kError);
  EXPECT_EQ(static_cast<NetErrorCode>(error->code), NetErrorCode::kProtocol);
  EXPECT_TRUE(conn.WaitForClose());
  server.Stop();
}

TEST(IngestServer, MalformedBytesGetTypedErrorAndClose) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-garbage"));
  ASSERT_TRUE(server.Start(0).ok());

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  // An HTTP request on the ingest port — realistic operator error.
  conn.Send("GET /metrics HTTP/1.0\r\n\r\n");
  Result<NetFrame> error = conn.ReadFrame();
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->type, NetMessageType::kError);
  EXPECT_EQ(static_cast<NetErrorCode>(error->code),
            NetErrorCode::kMalformedFrame);
  EXPECT_TRUE(conn.WaitForClose());
  EXPECT_GE(server.protocol_errors(), 1u);
  server.Stop();
}

TEST(IngestServer, CorruptedFrameAfterHandshakeIsQuarantined) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-corrupt"));
  ASSERT_TRUE(server.Start(0).ok());

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(EncodeNetFrame(NetFrame::Hello("veh-c")));
  ASSERT_TRUE(conn.ReadFrame().ok());

  std::vector<NetFix> fixes = {{"veh-c", TimedPoint(1.0, 2.0, 3.0)}};
  std::string bad = EncodeNetFrame(NetFrame::Batch(1, fixes));
  bad[bad.size() - 6] = static_cast<char>(bad[bad.size() - 6] ^ 0x7f);
  conn.Send(bad);
  Result<NetFrame> error = conn.ReadFrame();
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, NetMessageType::kError);
  EXPECT_TRUE(conn.WaitForClose());
  EXPECT_EQ(sink.total(), 0u);  // the corrupt batch must not apply
  server.Stop();
}

TEST(IngestServer, ResumeAfterDisconnectReportsAckHighWaterMark) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-resume"));
  ASSERT_TRUE(server.Start(0).ok());

  std::vector<NetFix> fixes = {{"veh-r", TimedPoint(1.0, 2.0, 3.0)}};
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    conn.Send(EncodeNetFrame(NetFrame::Hello("veh-r")));
    ASSERT_TRUE(conn.ReadFrame().ok());
    conn.Send(EncodeNetFrame(NetFrame::Batch(1, fixes)));
    ASSERT_TRUE(conn.ReadFrame().ok());
    // Hard disconnect: no Bye — the RawConn destructor just closes.
  }
  // Reconnect under the same client id: the kHelloAck must say batch 1
  // is already in, so a client rewinds nothing it already delivered.
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(EncodeNetFrame(NetFrame::Hello("veh-r")));
  Result<NetFrame> hello_ack = conn.ReadFrame();
  ASSERT_TRUE(hello_ack.ok());
  EXPECT_EQ(hello_ack->last_acked, 1u);
  // Resending the acked batch (the conservative client move) is a no-op.
  conn.Send(EncodeNetFrame(NetFrame::Batch(1, fixes)));
  Result<NetFrame> ack = conn.ReadFrame();
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, NetMessageType::kBatchAck);
  EXPECT_EQ(sink.Get("veh-r").size(), 1u);
  server.Stop();
}

TEST(IngestServer, HelloFencesZombieSessionSharingClientId) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-fence"));
  ASSERT_TRUE(server.Start(0).ok());

  // The session that will become the zombie: hello, batch 1, ack — then
  // it leaves HALF of batch 2 in the server's reassembly buffer.
  RawConn zombie(server.port());
  ASSERT_TRUE(zombie.connected());
  zombie.Send(EncodeNetFrame(NetFrame::Hello("veh-fence")));
  ASSERT_TRUE(zombie.ReadFrame().ok());
  std::vector<NetFix> fixes = {{"veh-fence", TimedPoint(1.0, 2.0, 3.0)}};
  zombie.Send(EncodeNetFrame(NetFrame::Batch(1, fixes)));
  ASSERT_TRUE(zombie.ReadFrame().ok());
  const std::string batch2 = EncodeNetFrame(NetFrame::Batch(2, fixes));
  zombie.Send(std::string_view(batch2).substr(0, batch2.size() / 2));

  // The device reconnects: same client id, fresh socket. The hello must
  // fence the zombie with a typed GOAWAY(superseded)...
  RawConn fresh(server.port());
  ASSERT_TRUE(fresh.connected());
  fresh.Send(EncodeNetFrame(NetFrame::Hello("veh-fence")));
  Result<NetFrame> hello_ack = fresh.ReadFrame();
  ASSERT_TRUE(hello_ack.ok()) << hello_ack.status();
  ASSERT_EQ(hello_ack->type, NetMessageType::kHelloAck);
  EXPECT_EQ(hello_ack->last_acked, 1u);

  Result<NetFrame> goaway = zombie.ReadFrame();
  ASSERT_TRUE(goaway.ok()) << goaway.status();
  EXPECT_EQ(goaway->type, NetMessageType::kGoAway);
  EXPECT_EQ(static_cast<GoAwayReason>(goaway->code),
            GoAwayReason::kSuperseded);

  // ...and completing batch 2 on the fenced socket must go nowhere.
  // Without the fence and the shared seq gate, both connections would
  // pass their own session-local `seq == last + 1` check and the batch
  // would apply twice; the replacement replays it and the sink must see
  // it exactly once.
  zombie.SendBestEffort(std::string_view(batch2).substr(batch2.size() / 2));
  EXPECT_TRUE(zombie.WaitForClose());
  fresh.Send(batch2);
  Result<NetFrame> ack = fresh.ReadFrame();
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->type, NetMessageType::kBatchAck);
  EXPECT_EQ(ack->batch_seq, 2u);
  EXPECT_EQ(sink.Get("veh-fence").size(), 2u);
  server.Stop();
}

TEST(IngestServer, HandshakeDeadlineClosesSilentConnections) {
  RecordingSink sink;
  IngestServerOptions options = FastOptions("t-loris");
  options.handshake_timeout_s = 0.2;
  IngestServer server(sink.AsPushFn(), options);
  ASSERT_TRUE(server.Start(0).ok());

  // The slow-loris shape: connect and send nothing.
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  Result<NetFrame> goaway = conn.ReadFrame(3000);
  ASSERT_TRUE(goaway.ok()) << goaway.status();
  EXPECT_EQ(goaway->type, NetMessageType::kGoAway);
  EXPECT_EQ(static_cast<GoAwayReason>(goaway->code),
            GoAwayReason::kIdleTimeout);
  EXPECT_TRUE(conn.WaitForClose());
  EXPECT_GE(server.idle_timeouts(), 1u);
  server.Stop();
}

TEST(IngestServer, SessionCapShedsNewestWithGoAway) {
  RecordingSink sink;
  IngestServerOptions options = FastOptions("t-shed");
  options.max_sessions = 2;
  IngestServer server(sink.AsPushFn(), options);
  ASSERT_TRUE(server.Start(0).ok());

  RawConn a(server.port()), b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  a.Send(EncodeNetFrame(NetFrame::Hello("a")));
  b.Send(EncodeNetFrame(NetFrame::Hello("b")));
  ASSERT_TRUE(a.ReadFrame().ok());
  ASSERT_TRUE(b.ReadFrame().ok());

  RawConn c(server.port());
  ASSERT_TRUE(c.connected());
  Result<NetFrame> goaway = c.ReadFrame();
  ASSERT_TRUE(goaway.ok()) << goaway.status();
  EXPECT_EQ(goaway->type, NetMessageType::kGoAway);
  EXPECT_EQ(static_cast<GoAwayReason>(goaway->code),
            GoAwayReason::kOverloaded);
  EXPECT_TRUE(c.WaitForClose());
  EXPECT_EQ(server.sessions_shed(), 1u);
  server.Stop();
}

TEST(IngestServer, StopDrainsBufferedFramesAndSendsGoAway) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-drain"));
  ASSERT_TRUE(server.Start(0).ok());

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(EncodeNetFrame(NetFrame::Hello("veh-d")));
  ASSERT_TRUE(conn.ReadFrame().ok());

  std::vector<NetFix> fixes = {{"veh-d", TimedPoint(1.0, 2.0, 3.0)}};
  conn.Send(EncodeNetFrame(NetFrame::Batch(1, fixes)));
  // Give the poll loop a beat to buffer (possibly not yet process) it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();

  // The batch the server accepted before stopping must have applied.
  EXPECT_EQ(sink.Get("veh-d").size(), 1u);
  // And the goodbye must be a typed GOAWAY(draining), not a bare RST
  // (the ack may arrive first — read until the GOAWAY).
  bool saw_goaway = false;
  for (int i = 0; i < 3 && !saw_goaway; ++i) {
    Result<NetFrame> frame = conn.ReadFrame(500);
    if (!frame.ok()) break;
    if (frame->type == NetMessageType::kGoAway) {
      EXPECT_EQ(static_cast<GoAwayReason>(frame->code),
                GoAwayReason::kDraining);
      saw_goaway = true;
    }
  }
  EXPECT_TRUE(saw_goaway);
}

TEST(IngestServer, IngestzRendersServerAndSessionState) {
  RecordingSink sink;
  IngestServer server(sink.AsPushFn(), FastOptions("t-ingestz"));
  ASSERT_TRUE(server.Start(0).ok());

  FleetClientOptions copts;
  copts.port = server.port();
  copts.client_id = "veh-z";
  copts.batch_size = 2;
  FleetClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Push("veh-z", TimedPoint(0.0, 1.0, 2.0)).ok());
  ASSERT_TRUE(client.Push("veh-z", TimedPoint(1.0, 2.0, 3.0)).ok());
  ASSERT_TRUE(client.Flush().ok());

  const std::string json = server.RenderIngestzJson();
  EXPECT_NE(json.find("\"server\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sessions\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"client\":\"veh-z\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"instance\":\"t-ingestz\""), std::string::npos);
  EXPECT_NE(json.find("\"batches_acked\":1"), std::string::npos) << json;
  server.Stop();
  // After Stop the surface still renders (draining=true, no sessions).
  const std::string after = server.RenderIngestzJson();
  EXPECT_NE(after.find("\"draining\":true"), std::string::npos) << after;
}

TEST(IngestServer, FailingSinkFailsBatchWithoutAck) {
  // A sink that refuses everything: the batch must surface as a typed
  // kInternal error, never an ack — so the client retries it later and
  // no fix is silently dropped.
  IngestServer server(
      [](std::string_view, const TimedPoint&) {
        return InternalError("sink on fire");
      },
      FastOptions("t-sinkfail"));
  ASSERT_TRUE(server.Start(0).ok());

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(EncodeNetFrame(NetFrame::Hello("veh-f")));
  ASSERT_TRUE(conn.ReadFrame().ok());
  std::vector<NetFix> fixes = {{"veh-f", TimedPoint(0.0, 0.0, 0.0)}};
  conn.Send(EncodeNetFrame(NetFrame::Batch(1, fixes)));
  Result<NetFrame> error = conn.ReadFrame();
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, NetMessageType::kError);
  EXPECT_EQ(static_cast<NetErrorCode>(error->code), NetErrorCode::kInternal);
  EXPECT_EQ(server.batches_acked(), 0u);
  server.Stop();
}

TEST(IngestServer, ClientSurvivesServerSideSessionKill) {
  // End-to-end resume through the real client: push through one
  // connection, have the server idle-kill it, keep pushing — the client
  // reconnects and nothing is lost or duplicated.
  RecordingSink sink;
  IngestServerOptions options = FastOptions("t-kill");
  IngestServer server(sink.AsPushFn(), options);
  ASSERT_TRUE(server.Start(0).ok());

  FleetClientOptions copts;
  copts.port = server.port();
  copts.client_id = "veh-k";
  copts.batch_size = 3;
  FleetClient client(copts);
  ASSERT_TRUE(client.Connect().ok());

  Trajectory walk = testutil::RandomWalk(9, 123);
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Push("veh-k", walk.points()[i]).ok());
  }
  ASSERT_TRUE(client.Flush().ok());

  // Simulate a mid-life network partition by restarting the server's
  // view of the session: stop/start would lose acked_ state, so instead
  // drop the client's own socket via a fresh client with the same id —
  // the server-side high-water mark is what resume is built on.
  FleetClient client2(copts);
  ASSERT_TRUE(client2.Connect().ok());
  for (size_t i = 6; i < 9; ++i) {
    ASSERT_TRUE(client2.Push("veh-k", walk.points()[i]).ok());
  }
  ASSERT_TRUE(client2.Bye().ok());

  // One client id == one monotone seq space. client2's process-local
  // numbering would restart at 1 — already acked for veh-k, so the
  // server would drop its batches as duplicates. The kHelloAck said
  // last_acked=2 (two batches of 3), and FleetClient fast-forwards its
  // seq space past it, so client2's first batch goes out as seq 3.
  std::vector<TimedPoint> got = sink.Get("veh-k");
  ASSERT_EQ(got.size(), walk.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].t, walk.points()[i].t) << "fix " << i;
  }
  server.Stop();
}

}  // namespace
}  // namespace stcomp::net
