#include "stcomp/store/grid_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "stcomp/sim/random.h"
#include "test_util.h"

namespace stcomp {
namespace {

TEST(GridIndexTest, EmptyIndex) {
  GridIndex index(100.0);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.QueryBox({{0, 0}, {1000, 1000}}).empty());
  EXPECT_FALSE(index.Nearest({0, 0}).ok());
}

TEST(GridIndexTest, BoxQueryFindsAndExcludes) {
  GridIndex index(50.0);
  index.Insert(1, {10, 10});
  index.Insert(2, {500, 500});
  index.Insert(3, {-75, 30});
  const auto hits = index.QueryBox({{-100, 0}, {100, 100}});
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 3}));
}

TEST(GridIndexTest, BoxQueryDeduplicatesItems) {
  GridIndex index(50.0);
  for (int k = 0; k < 10; ++k) {
    index.Insert(7, {k * 10.0, 0.0});
  }
  const auto hits = index.QueryBox({{-5, -5}, {200, 5}});
  EXPECT_EQ(hits, (std::vector<int64_t>{7}));
}

TEST(GridIndexTest, BoundaryPointsIncluded) {
  GridIndex index(10.0);
  index.Insert(1, {100.0, 100.0});
  EXPECT_EQ(index.QueryBox({{100.0, 100.0}, {100.0, 100.0}}).size(), 1u);
  EXPECT_EQ(index.QueryBox({{0.0, 0.0}, {100.0, 100.0}}).size(), 1u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex index(25.0);
  index.Insert(1, {-1000.5, -2000.5});
  index.Insert(2, {1000.5, 2000.5});
  EXPECT_EQ(index.QueryBox({{-1100, -2100}, {-900, -1900}}),
            (std::vector<int64_t>{1}));
  EXPECT_EQ(index.Nearest({-990, -1990}).value(), 1);
}

TEST(GridIndexTest, NearestMatchesLinearScan) {
  Rng rng(42);
  GridIndex index(80.0);
  std::vector<std::pair<Vec2, int64_t>> reference;
  for (int64_t item = 0; item < 200; ++item) {
    const Vec2 position{rng.NextUniform(-3000, 3000),
                        rng.NextUniform(-3000, 3000)};
    index.Insert(item, position);
    reference.emplace_back(position, item);
  }
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 query{rng.NextUniform(-3500, 3500),
                     rng.NextUniform(-3500, 3500)};
    double best = 1e300;
    int64_t expected = -1;
    for (const auto& [position, item] : reference) {
      const double d = Distance(position, query);
      if (d < best) {
        best = d;
        expected = item;
      }
    }
    EXPECT_EQ(index.Nearest(query).value(), expected) << "trial " << trial;
  }
}

TEST(GridIndexTest, NearestAcrossSparseCells) {
  GridIndex index(10.0);
  index.Insert(5, {0.0, 0.0});
  index.Insert(6, {10000.0, 0.0});
  // Query far from both; many empty rings in between.
  EXPECT_EQ(index.Nearest({4000.0, 0.0}).value(), 5);
  EXPECT_EQ(index.Nearest({6000.0, 0.0}).value(), 6);
}

TEST(GridIndexTest, IndexedStoreQueryMatchesLinearStoreQuery) {
  // Cross-check GridIndex against TrajectoryStore::ObjectsInBox.
  TrajectoryStore store(Codec::kRaw);
  GridIndex index(200.0);
  Rng rng(7);
  std::vector<std::string> ids;
  for (int object = 0; object < 12; ++object) {
    const Trajectory trajectory =
        testutil::RandomWalk(40, 100 + static_cast<uint64_t>(object));
    const std::string id = "obj-" + std::to_string(object);
    ASSERT_TRUE(store.Insert(id, trajectory).ok());
    ids.push_back(id);
    for (const TimedPoint& point : trajectory.points()) {
      index.Insert(object, point.position);
    }
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 corner{rng.NextUniform(-500, 1500),
                      rng.NextUniform(-1500, 500)};
    const BoundingBox box{corner, corner + Vec2{800.0, 800.0}};
    std::vector<std::string> via_store = store.ObjectsInBox(box);
    std::vector<std::string> via_index;
    for (int64_t item : index.QueryBox(box)) {
      via_index.push_back(ids[static_cast<size_t>(item)]);
    }
    // The store orders ids lexicographically, the index numerically;
    // compare as sets.
    std::sort(via_store.begin(), via_store.end());
    std::sort(via_index.begin(), via_index.end());
    EXPECT_EQ(via_store, via_index) << "trial " << trial;
  }
}

}  // namespace
}  // namespace stcomp
