// Blocked codec stream invariants (DESIGN.md §17): incremental per-point
// append produces byte- and summary-identical state to bulk EncodeBlocked;
// every decoded point stays inside its block's declared extents; every
// polyline segment lies within exactly one block's summary (the junction
// invariant that makes query-time block skipping sound); and
// ParseSummaryTable rejects every malformed table with kDataLoss.

#include "stcomp/store/block_summary.h"

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/codec.h"
#include "stcomp/store/trajectory_store.h"
#include "test_util.h"

namespace stcomp {
namespace {

std::vector<BlockSummary> Encode(const Trajectory& trajectory, Codec codec,
                                 size_t block_points, std::string* out) {
  Result<std::vector<BlockSummary>> blocks = EncodeBlocked(
      trajectory.points().data(), trajectory.size(), codec, block_points, out);
  EXPECT_TRUE(blocks.ok()) << blocks.status().ToString();
  return *blocks;
}

TEST(BlockSummaryTest, BulkEncodingSplitsIntoBlocks) {
  const Trajectory walk = testutil::RandomWalk(150, 7);
  std::string payload;
  const std::vector<BlockSummary> blocks =
      Encode(walk, Codec::kDelta, kDefaultBlockPoints, &payload);
  ASSERT_EQ(blocks.size(), 3u);  // ceil(150 / 64)
  EXPECT_EQ(blocks[0].count, 64u);
  EXPECT_EQ(blocks[1].count, 64u);
  EXPECT_EQ(blocks[2].count, 22u);
  size_t points = 0;
  size_t bytes = 0;
  for (const BlockSummary& block : blocks) {
    EXPECT_EQ(block.first_point, points);
    EXPECT_EQ(block.byte_offset, bytes);
    points += block.count;
    bytes += block.byte_length;
  }
  EXPECT_EQ(points, walk.size());
  EXPECT_EQ(bytes, payload.size());
}

// The incremental store append path must be indistinguishable from a bulk
// insert: same payload bytes, same summary table. The store's recovery
// and golden-format stability both lean on this.
TEST(BlockSummaryTest, IncrementalAppendMatchesBulkInsert) {
  const Trajectory walk = testutil::RandomWalk(200, 11);
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    TrajectoryStore bulk(codec);
    ASSERT_TRUE(bulk.Insert("veh", walk).ok());
    TrajectoryStore incremental(codec);
    for (const TimedPoint& point : walk.points()) {
      ASSERT_TRUE(incremental.Append("veh", point).ok());
    }
    std::string bulk_payload;
    std::string incremental_payload;
    std::vector<BlockSummary> bulk_blocks;
    std::vector<BlockSummary> incremental_blocks;
    bulk.VisitBlocks([&](const std::string&, size_t,
                         const std::vector<BlockSummary>& blocks,
                         std::string_view payload) {
      bulk_blocks = blocks;
      bulk_payload = std::string(payload);
    });
    incremental.VisitBlocks([&](const std::string&, size_t,
                                const std::vector<BlockSummary>& blocks,
                                std::string_view payload) {
      incremental_blocks = blocks;
      incremental_payload = std::string(payload);
    });
    EXPECT_EQ(bulk_payload, incremental_payload);
    ASSERT_EQ(bulk_blocks.size(), incremental_blocks.size());
    for (size_t i = 0; i < bulk_blocks.size(); ++i) {
      EXPECT_EQ(bulk_blocks[i].count, incremental_blocks[i].count);
      EXPECT_EQ(bulk_blocks[i].byte_length, incremental_blocks[i].byte_length);
      EXPECT_EQ(bulk_blocks[i].t_min, incremental_blocks[i].t_min);
      EXPECT_EQ(bulk_blocks[i].t_max, incremental_blocks[i].t_max);
      EXPECT_EQ(bulk_blocks[i].bounds.min.x, incremental_blocks[i].bounds.min.x);
      EXPECT_EQ(bulk_blocks[i].bounds.min.y, incremental_blocks[i].bounds.min.y);
      EXPECT_EQ(bulk_blocks[i].bounds.max.x, incremental_blocks[i].bounds.max.x);
      EXPECT_EQ(bulk_blocks[i].bounds.max.y, incremental_blocks[i].bounds.max.y);
    }
  }
}

// Storage-value containment: a decoded point never escapes the extents of
// the block that owns it.
TEST(BlockSummaryTest, DecodedPointsStayInsideBlockExtents) {
  const Trajectory walk = testutil::RandomWalk(180, 3);
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    TrajectoryStore store(codec);
    ASSERT_TRUE(store.Insert("veh", walk).ok());
    Result<const std::vector<BlockSummary>*> blocks =
        store.BlockSummariesOf("veh");
    ASSERT_TRUE(blocks.ok());
    for (size_t b = 0; b < (*blocks)->size(); ++b) {
      const BlockSummary& summary = (**blocks)[b];
      Result<std::vector<TimedPoint>> points = store.DecodeBlock("veh", b);
      ASSERT_TRUE(points.ok());
      ASSERT_EQ(points->size(), summary.count);
      for (const TimedPoint& point : *points) {
        EXPECT_GE(point.t, summary.t_min);
        EXPECT_LE(point.t, summary.t_max);
        EXPECT_TRUE(summary.bounds.Contains(point.position));
      }
    }
  }
}

// The junction invariant: block b's extents also cover the first point of
// block b+1, so the segment crossing the boundary lies entirely inside
// block b's summary. This is what makes skipping non-candidate blocks
// sound for segment-based predicates.
TEST(BlockSummaryTest, JunctionPointCoveredByPrecedingBlock) {
  const Trajectory walk = testutil::RandomWalk(200, 29);
  TrajectoryStore store;  // kDelta
  ASSERT_TRUE(store.Insert("veh", walk).ok());
  Result<const std::vector<BlockSummary>*> blocks =
      store.BlockSummariesOf("veh");
  ASSERT_TRUE(blocks.ok());
  ASSERT_GT((*blocks)->size(), 1u);
  for (size_t b = 0; b + 1 < (*blocks)->size(); ++b) {
    const BlockSummary& summary = (**blocks)[b];
    Result<TimedPoint> junction = store.DecodeBlockFirstPoint("veh", b + 1);
    ASSERT_TRUE(junction.ok());
    EXPECT_GE(junction->t, summary.t_min);
    EXPECT_LE(junction->t, summary.t_max);
    EXPECT_TRUE(summary.bounds.Contains(junction->position));
  }
}

// Every segment of the decoded polyline lies inside at least one block's
// extents (specifically the block owning its start point).
TEST(BlockSummaryTest, EverySegmentLiesInOneBlock) {
  const Trajectory walk = testutil::RandomWalk(130, 41);
  TrajectoryStore store;
  ASSERT_TRUE(store.Insert("veh", walk).ok());
  Result<Trajectory> decoded = store.Get("veh");
  ASSERT_TRUE(decoded.ok());
  Result<const std::vector<BlockSummary>*> blocks =
      store.BlockSummariesOf("veh");
  ASSERT_TRUE(blocks.ok());
  for (size_t i = 0; i + 1 < decoded->size(); ++i) {
    const TimedPoint& p = decoded->points()[i];
    const TimedPoint& q = decoded->points()[i + 1];
    bool covered = false;
    for (const BlockSummary& summary : **blocks) {
      if (i >= summary.first_point && i < summary.first_point + summary.count &&
          p.t >= summary.t_min && q.t <= summary.t_max &&
          summary.bounds.Contains(p.position) &&
          summary.bounds.Contains(q.position)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "segment " << i << " escapes its block's extents";
  }
}

TEST(BlockSummaryTest, SummaryTableRoundTrips) {
  const Trajectory walk = testutil::RandomWalk(100, 5);
  std::string payload;
  const std::vector<BlockSummary> blocks =
      Encode(walk, Codec::kDelta, 16, &payload);
  std::string table;
  AppendSummaryTable(blocks, &table);
  std::string_view input(table);
  Result<std::vector<BlockSummary>> parsed =
      ParseSummaryTable(&input, blocks.size(), walk.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(input.empty());
  ASSERT_EQ(parsed->size(), blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ((*parsed)[i].count, blocks[i].count);
    EXPECT_EQ((*parsed)[i].byte_length, blocks[i].byte_length);
    EXPECT_EQ((*parsed)[i].t_min, blocks[i].t_min);
    EXPECT_EQ((*parsed)[i].t_max, blocks[i].t_max);
    EXPECT_EQ((*parsed)[i].first_point, blocks[i].first_point);
    EXPECT_EQ((*parsed)[i].byte_offset, blocks[i].byte_offset);
  }
}

// Malformed tables must come back as kDataLoss — the parser sits on the
// recovery and fuzz paths, where any other outcome is a bug.
TEST(BlockSummaryTest, ParseRejectsMalformedTables) {
  const Trajectory walk = testutil::RandomWalk(40, 13);
  std::string payload;
  const std::vector<BlockSummary> good =
      Encode(walk, Codec::kDelta, 16, &payload);
  std::string table;
  AppendSummaryTable(good, &table);

  const auto expect_rejected = [&](const std::vector<BlockSummary>& blocks,
                                   uint64_t block_count,
                                   uint64_t expected_points,
                                   const char* label) {
    std::string bytes;
    AppendSummaryTable(blocks, &bytes);
    std::string_view input(bytes);
    Result<std::vector<BlockSummary>> parsed =
        ParseSummaryTable(&input, block_count, expected_points);
    EXPECT_FALSE(parsed.ok()) << label;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << label;
    }
  };

  // Point counts that do not sum to the expected total.
  expect_rejected(good, good.size(), walk.size() + 1, "sum mismatch");

  // A zero-count block.
  std::vector<BlockSummary> zero_count = good;
  zero_count[0].count = 0;
  expect_rejected(zero_count, zero_count.size(), walk.size(),
                  "zero point count");

  // A zero-length payload slice.
  std::vector<BlockSummary> zero_bytes = good;
  zero_bytes[1].byte_length = 0;
  expect_rejected(zero_bytes, zero_bytes.size(), walk.size(),
                  "zero byte length");

  // Inverted time extents.
  std::vector<BlockSummary> inverted = good;
  std::swap(inverted[0].t_min, inverted[0].t_max);
  inverted[0].t_min += 1.0;
  expect_rejected(inverted, inverted.size(), walk.size(),
                  "t_min > t_max");

  // Non-finite extents.
  std::vector<BlockSummary> nan_bounds = good;
  nan_bounds[0].bounds.min.x = std::numeric_limits<double>::quiet_NaN();
  expect_rejected(nan_bounds, nan_bounds.size(), walk.size(), "NaN extent");

  // Truncated input: a block count larger than the table holds.
  std::string_view truncated(table);
  Result<std::vector<BlockSummary>> parsed =
      ParseSummaryTable(&truncated, good.size() + 4, walk.size());
  EXPECT_FALSE(parsed.ok());

  // An absurd block count must fail cleanly (no pre-reserve explosion).
  std::string_view huge(table);
  parsed = ParseSummaryTable(&huge, uint64_t{1} << 60, walk.size());
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace stcomp
