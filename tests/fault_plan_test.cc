#include "stcomp/testing/fault_plan.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/testing/faulty_source.h"

namespace stcomp {
namespace {

using testing::FaultPlan;
using testing::FaultPlanOptions;
using testing::FaultyFeedEvent;
using testing::FaultyFixSource;
using testing::FleetFix;

std::string SampleBytes(size_t n) {
  std::string bytes;
  bytes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bytes.push_back(static_cast<char>((i * 131 + 7) & 0xff));
  }
  return bytes;
}

std::vector<FleetFix> CleanFeed(size_t fixes_per_object) {
  std::vector<FleetFix> feed;
  for (size_t i = 0; i < fixes_per_object; ++i) {
    const double t = static_cast<double>(i) * 5.0;
    feed.push_back({"bus-1", TimedPoint(t, 0.1 * i, 0.2 * i)});
    feed.push_back({"bus-2", TimedPoint(t, -0.3 * i, 50.0)});
  }
  return feed;
}

TEST(FaultPlanTest, SameSeedSameBytes) {
  const std::string input = SampleBytes(4096);
  FaultPlan a(42);
  FaultPlan b(42);
  const std::string mutant_a = a.CorruptBytes(input);
  const std::string mutant_b = b.CorruptBytes(input);
  EXPECT_EQ(mutant_a, mutant_b);
  EXPECT_EQ(a.log(), b.log());
  // A 4 KiB buffer at the default rates essentially always sees a fault;
  // the log names each one for reproduction.
  EXPECT_GT(a.faults_injected(), 0u) << a.Describe();
  EXPECT_NE(mutant_a, input);
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  const std::string input = SampleBytes(4096);
  FaultPlan a(1);
  FaultPlan b(2);
  EXPECT_NE(a.CorruptBytes(input), b.CorruptBytes(input));
}

TEST(FaultPlanTest, ZeroRatesAreIdentity) {
  FaultPlanOptions off;
  off.bit_flip_per_byte = 0.0;
  off.truncate_probability = 0.0;
  off.duplicate_span_probability = 0.0;
  FaultPlan plan(7, off);
  const std::string input = SampleBytes(512);
  EXPECT_EQ(plan.CorruptBytes(input), input);
  EXPECT_EQ(plan.faults_injected(), 0u);
}

TEST(FaultPlanTest, DescribeNamesSeed) {
  FaultPlan plan(99);
  EXPECT_NE(plan.Describe().find("seed=99"), std::string::npos);
}

std::vector<FaultyFeedEvent> DrainSource(FaultyFixSource* source) {
  std::vector<FaultyFeedEvent> events;
  FaultyFeedEvent event;
  while (source->Next(&event)) {
    events.push_back(event);
  }
  return events;
}

TEST(FaultyFixSourceTest, SameSeedSameEventSequence) {
  const std::vector<FleetFix> feed = CleanFeed(200);
  FaultPlan plan_a(2024);
  FaultPlan plan_b(2024);
  FaultyFixSource source_a(feed, &plan_a);
  FaultyFixSource source_b(feed, &plan_b);
  const std::vector<FaultyFeedEvent> events_a = DrainSource(&source_a);
  const std::vector<FaultyFeedEvent> events_b = DrainSource(&source_b);
  ASSERT_EQ(events_a.size(), events_b.size());
  for (size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_EQ(events_a[i].kind, events_b[i].kind) << "event " << i;
    if (events_a[i].kind == FaultyFeedEvent::Kind::kFix) {
      EXPECT_EQ(events_a[i].fix.object_id, events_b[i].fix.object_id);
      // operator== is NaN-poisoned; determinism means bit-identical fixes.
      const TimedPoint& pa = events_a[i].fix.fix;
      const TimedPoint& pb = events_b[i].fix.fix;
      EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(TimedPoint)), 0) << "event " << i;
    }
  }
  EXPECT_EQ(plan_a.log(), plan_b.log());
}

TEST(FaultyFixSourceTest, InjectsEveryFaultKind) {
  FaultPlan plan(7);
  FaultyFixSource source(CleanFeed(600), &plan);
  (void)DrainSource(&source);
  bool saw_dup = false, saw_regress = false, saw_jitter = false,
       saw_nan = false, saw_io = false;
  for (const std::string& entry : plan.log()) {
    saw_dup |= entry.rfind("dup-fix", 0) == 0;
    saw_regress |= entry.rfind("regress", 0) == 0;
    saw_jitter |= entry.rfind("jitter", 0) == 0;
    saw_nan |= entry.rfind("nan", 0) == 0;
    saw_io |= entry.rfind("io-error", 0) == 0;
  }
  EXPECT_TRUE(saw_dup && saw_regress && saw_jitter && saw_nan && saw_io)
      << plan.Describe();
}

TEST(FaultyFixSourceTest, IoErrorRetriesDeliverTheFix) {
  // With only I/O errors enabled, every fix still arrives (after a
  // transient error event), so nothing in the feed is lost.
  FaultPlanOptions only_io;
  only_io.duplicate_fix_probability = 0.0;
  only_io.regress_time_probability = 0.0;
  only_io.jitter_time_probability = 0.0;
  only_io.nan_coordinate_probability = 0.0;
  only_io.io_error_probability = 0.5;
  FaultPlan plan(11, only_io);
  const std::vector<FleetFix> feed = CleanFeed(100);
  FaultyFixSource source(feed, &plan);
  size_t fixes = 0, errors = 0;
  FaultyFeedEvent event;
  while (source.Next(&event)) {
    if (event.kind == FaultyFeedEvent::Kind::kFix) {
      ++fixes;
    } else {
      EXPECT_FALSE(event.error.ok());
      ++errors;
    }
  }
  EXPECT_EQ(fixes, feed.size());
  EXPECT_GT(errors, 0u);
}

// The acceptance demo in test form: a fleet under a faulty feed, repair
// policy on, finishes cleanly with nonzero ingest counters and strictly
// time-ordered store contents.
TEST(IngestHardeningTest, FleetSurvivesFaultyFeedUnderRepair) {
  TrajectoryStore store(Codec::kRaw);
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 30.0;
  FleetCompressor fleet(
      [] {
        return std::make_unique<OpeningWindowStream>(
            5.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      &store, policy, "fault-demo");

  FaultPlan plan(20260805);
  FaultyFixSource source(CleanFeed(400), &plan);
  FaultyFeedEvent event;
  size_t transient_errors = 0;
  while (source.Next(&event)) {
    if (event.kind == FaultyFeedEvent::Kind::kTransientError) {
      ++transient_errors;  // A real consumer would retry; the source does.
      continue;
    }
    ASSERT_TRUE(fleet.Push(event.fix.object_id, event.fix.fix).ok());
  }
  ASSERT_TRUE(fleet.FinishAll().ok());

  EXPECT_GT(plan.faults_injected(), 0u) << plan.Describe();
  EXPECT_GT(transient_errors, 0u);
  EXPECT_GT(fleet.ingest_dropped() + fleet.ingest_repaired(), 0u);

  for (const std::string& id : {std::string("bus-1"), std::string("bus-2")}) {
    const Result<Trajectory> trajectory = store.Get(id);
    ASSERT_TRUE(trajectory.ok()) << id;
    const std::vector<TimedPoint>& points = trajectory->points();
    ASSERT_GT(points.size(), 1u) << id;
    for (size_t i = 1; i < points.size(); ++i) {
      ASSERT_LT(points[i - 1].t, points[i].t) << id << " index " << i;
      ASSERT_TRUE(std::isfinite(points[i].position.x));
      ASSERT_TRUE(std::isfinite(points[i].position.y));
    }
  }
}

}  // namespace
}  // namespace stcomp
