// Unit tests for the observability layer: metric value types, registry
// addressing, exposition round-trips, scoped timing, trace spans, and the
// ground-truth contract of the algorithm-registry instrumentation.
//
// The metric value types and the registry are compiled in every
// configuration (product APIs shim over them), so most tests run under
// STCOMP_DISABLE_METRICS too; only the tests exercising the
// instrumentation *macros* are gated on STCOMP_METRICS_ENABLED.

#include <gtest/gtest.h>

#include <thread>

#include "stcomp/algo/registry.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"
#include "stcomp/obs/trace.h"
#include "test_util.h"

namespace stcomp::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(7.5);
  EXPECT_EQ(gauge.value(), 7.5);
  gauge.Add(-2.5);
  EXPECT_EQ(gauge.value(), 5.0);
}

TEST(HistogramTest, BucketPlacementFollowsLeConvention) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);  // bucket 0
  histogram.Observe(1.0);  // bucket 0 (le: v <= bound)
  histogram.Observe(1.5);  // bucket 1
  histogram.Observe(4.0);  // bucket 2
  histogram.Observe(9.0);  // +Inf bucket
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 16.0);
  EXPECT_EQ(histogram.bucket_counts(),
            (std::vector<uint64_t>{2, 1, 1, 1}));
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram histogram({0.5, 1.5});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const uint64_t expected = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(histogram.count(), expected);
  // The CAS loop makes the sum exact, not just approximately right.
  EXPECT_DOUBLE_EQ(histogram.sum(), static_cast<double>(expected));
  EXPECT_EQ(histogram.bucket_counts(),
            (std::vector<uint64_t>{0, expected, 0}));
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, SameSeriesReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("obs_test_total", {{"k", "v"}});
  // Label order must not matter; a different label set must.
  Counter* b = registry.GetCounter(
      "obs_test_total", {{"z", "9"}, {"k", "v"}});
  Counter* c = registry.GetCounter(
      "obs_test_total", {{"k", "v"}, {"z", "9"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(a, registry.GetCounter("obs_test_total", {{"k", "v"}}));
  EXPECT_EQ(registry.GetGauge("obs_test_gauge"),
            registry.GetGauge("obs_test_gauge"));
  Histogram* h = registry.GetHistogram("obs_test_seconds", {}, {1.0, 2.0});
  // Boundaries are fixed by the first registration.
  EXPECT_EQ(h, registry.GetHistogram("obs_test_seconds", {}, {9.0}));
  EXPECT_EQ(h->upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, ResetForTestZeroesValuesKeepsPointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_reset_total");
  Gauge* gauge = registry.GetGauge("obs_reset_gauge");
  Histogram* histogram = registry.GetHistogram("obs_reset_hist", {}, {1.0});
  counter->Increment(5);
  gauge->Set(3.0);
  histogram->Observe(0.5);
  registry.ResetForTest();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(histogram->sum(), 0.0);
  EXPECT_EQ(histogram->bucket_counts(), (std::vector<uint64_t>{0, 0}));
  counter->Increment();  // the pointer is still live and registered
  EXPECT_EQ(registry.Snapshot().counters.at(0).value, 1u);
}

MetricsSnapshot ExampleSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("stcomp_example_total", {{"algorithm", "td-tr"}})
      ->Increment(3);
  registry.GetGauge("stcomp_example_points")->Set(12.5);
  Histogram* histogram =
      registry.GetHistogram("stcomp_example_seconds", {}, {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.5, 1.6, 3.0, 9.0}) {
    histogram->Observe(v);
  }
  return registry.Snapshot();
}

TEST(ExpositionTest, TextContainsSeriesAndDerivedStats) {
  const std::string text = RenderText(ExampleSnapshot());
  EXPECT_NE(text.find("== counters =="), std::string::npos);
  EXPECT_NE(text.find("stcomp_example_total{algorithm=\"td-tr\"}"),
            std::string::npos);
  EXPECT_NE(text.find("count=5"), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_EQ(RenderText(MetricsSnapshot{}), "(no metrics recorded)\n");
}

TEST(ExpositionTest, JsonHoldsNonCumulativeBuckets) {
  const std::string json = RenderJson(ExampleSnapshot());
  EXPECT_NE(json.find("\"name\":\"stcomp_example_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"algorithm\":\"td-tr\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  // Buckets: {0.5}->b0, {1.5,1.6}->b1, {3.0}->b2, {9.0}->+Inf.
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":2,\"count\":2}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":4,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"+Inf\",\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"count\":5,\"sum\":15.6"), std::string::npos);
}

TEST(ExpositionTest, PrometheusBucketsAreCumulative) {
  const std::string prom = RenderPrometheus(ExampleSnapshot());
  EXPECT_NE(prom.find("# TYPE stcomp_example_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE stcomp_example_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("stcomp_example_total{algorithm=\"td-tr\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("stcomp_example_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("stcomp_example_seconds_bucket{le=\"2\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("stcomp_example_seconds_bucket{le=\"4\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("stcomp_example_seconds_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(prom.find("stcomp_example_seconds_sum 15.6"), std::string::npos);
  EXPECT_NE(prom.find("stcomp_example_seconds_count 5"), std::string::npos);
}

TEST(ExpositionTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("esc_total", {{"path", "a\\b\"c\nd"}})->Increment();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(RenderPrometheus(snapshot).find("path=\"a\\\\b\\\"c\\nd\""),
            std::string::npos);
  EXPECT_NE(RenderJson(snapshot).find("\"path\":\"a\\\\b\\\"c\\nd\""),
            std::string::npos);
}

TEST(ExpositionTest, RenderMetricsDispatchesOnFormat) {
  const MetricsSnapshot snapshot = ExampleSnapshot();
  EXPECT_EQ(RenderMetrics(snapshot, MetricsFormat::kText),
            RenderText(snapshot));
  EXPECT_EQ(RenderMetrics(snapshot, MetricsFormat::kJson),
            RenderJson(snapshot));
  EXPECT_EQ(RenderMetrics(snapshot, MetricsFormat::kPrometheus),
            RenderPrometheus(snapshot));
}

TEST(ExpositionTest, ParseMetricsFormat) {
  EXPECT_EQ(ParseMetricsFormat("text").value(), MetricsFormat::kText);
  EXPECT_EQ(ParseMetricsFormat("JSON").value(), MetricsFormat::kJson);
  EXPECT_EQ(ParseMetricsFormat("Prometheus").value(),
            MetricsFormat::kPrometheus);
  EXPECT_EQ(ParseMetricsFormat("prom").value(), MetricsFormat::kPrometheus);
  EXPECT_EQ(ParseMetricsFormat("yaml").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuantileTest, InterpolatesWithinBuckets) {
  HistogramSample sample;
  sample.upper_bounds = {1.0, 2.0};
  sample.buckets = {10, 10, 0};  // uniform-ish over (0,1] and (1,2]
  sample.count = 20;
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.75), 1.5);
  // The +Inf bucket clamps to the last finite boundary.
  sample.buckets = {0, 0, 5};
  sample.count = 5;
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.99), 2.0);
  // Empty histogram.
  sample.buckets = {0, 0, 0};
  sample.count = 0;
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.5), 0.0);
}

TEST(QuantileTest, EmptyHistogramIsZeroForEveryQuantile) {
  HistogramSample sample;  // no bounds, no buckets, count 0
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, q), 0.0) << "q=" << q;
  }
  // Bounds present but nothing observed must behave the same.
  sample.upper_bounds = {1.0, 10.0};
  sample.buckets = {0, 0, 0};
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.5), 0.0);
}

TEST(QuantileTest, SingleBucketMassInterpolatesWithinThatBucket) {
  HistogramSample sample;
  sample.upper_bounds = {1.0, 2.0, 4.0};
  sample.buckets = {0, 8, 0, 0};  // all mass in (1, 2]
  sample.count = 8;
  // Every quantile lands in the same bucket; interpolation walks its width.
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.25), 1.25);
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 1.0), 2.0);
  // Mass in the first bucket interpolates from an implicit lower bound 0.
  sample.buckets = {8, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, 0.5), 0.5);
}

TEST(QuantileTest, AllObservationsInInfBucketClampToLastFiniteBound) {
  HistogramSample sample;
  sample.upper_bounds = {1.0, 2.0};
  sample.buckets = {0, 0, 7};  // everything overflowed past the last bound
  sample.count = 7;
  for (const double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(ApproximateQuantile(sample, q), 2.0) << "q=" << q;
  }
  // Degenerate histogram with only a +Inf bucket has no finite bound to
  // clamp to; the answer decays to 0 rather than inventing a value.
  HistogramSample inf_only;
  inf_only.buckets = {5};
  inf_only.count = 5;
  EXPECT_DOUBLE_EQ(ApproximateQuantile(inf_only, 0.5), 0.0);
}

TEST(ScopedTimerTest, RecordsExactlyOneObservationPerScope) {
  Histogram histogram(LatencyBucketsSeconds());
  {
    ScopedTimer timer(&histogram);
    EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GE(histogram.sum(), 0.0);
}

TEST(SampledScopedTimerTest, RecordsRoughlyOnePerPeriod) {
  Histogram histogram(LatencyBucketsSeconds());
  constexpr uint64_t kScopes = 4 * SampledScopedTimer::kSamplePeriod;
  for (uint64_t i = 0; i < kScopes; ++i) {
    SampledScopedTimer timer(&histogram);
  }
  // The thread-local tick phase is arbitrary at test start, so allow one
  // extra sample either way; zero would mean sampling is broken.
  EXPECT_GE(histogram.count(), 1u);
  EXPECT_LE(histogram.count(), kScopes / SampledScopedTimer::kSamplePeriod + 1);
}

TEST(TraceBufferTest, RingOverwritesOldestAndCountsTotal) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 6; ++i) {
    buffer.Record({"span-" + std::to_string(i), "", 0, 0});
  }
  EXPECT_EQ(buffer.total_recorded(), 6u);
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "span-2");  // oldest surviving
  EXPECT_EQ(events.back().name, "span-5");
  buffer.Clear();
  EXPECT_TRUE(buffer.Snapshot().empty());
  EXPECT_EQ(buffer.total_recorded(), 0u);
}

TEST(TraceSpanTest, RecordsOnDestruction) {
  TraceBuffer buffer(8);
  {
    TraceSpan span("unit.test", "detail-1", &buffer);
    EXPECT_EQ(buffer.total_recorded(), 0u);
  }
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.test");
  EXPECT_EQ(events[0].detail, "detail-1");
  EXPECT_NE(RenderTraceText(events).find("unit.test detail-1"),
            std::string::npos);
  EXPECT_NE(RenderTraceJson(events).find("\"name\":\"unit.test\""),
            std::string::npos);
}

TEST(TraceSpanTest, EventsCarryThreadIdAndRenderersShowIt) {
  TraceBuffer buffer(8);
  { TraceSpan span("tid.test", "here", &buffer); }
  uint32_t worker_tid = 0;
  std::thread worker([&buffer, &worker_tid] {
    worker_tid = CurrentThreadId();
    TraceSpan span("tid.test", "there", &buffer);
  });
  worker.join();
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].thread_id, CurrentThreadId());
  EXPECT_EQ(events[1].thread_id, worker_tid);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
  EXPECT_NE(events[0].span_id, 0u);
  EXPECT_NE(events[0].span_id, events[1].span_id);
  // Both renderers surface the recording thread.
  const std::string text = RenderTraceText(events);
  EXPECT_NE(text.find(StrFormat("t%02u", events[0].thread_id)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(StrFormat("t%02u", events[1].thread_id)),
            std::string::npos)
      << text;
  const std::string json = RenderTraceJson(events);
  EXPECT_NE(json.find("\"thread_id\":" + std::to_string(events[1].thread_id)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"span_id\":" + std::to_string(events[0].span_id)),
            std::string::npos)
      << json;
}

#if STCOMP_METRICS_ENABLED
// Ground truth: running an algorithm through the registry must move the
// per-algorithm series by exactly the run's input/output sizes.
TEST(AlgoInstrumentationTest, RegistryRunsRecordGroundTruth) {
  const Trajectory trajectory = testutil::RandomWalk(120, 7);
  const algo::AlgorithmInfo* info = algo::FindAlgorithm("td-tr").value();
  algo::AlgorithmParams params;
  params.epsilon_m = 25.0;

  auto& registry = MetricsRegistry::Global();
  const LabelSet labels{{"algorithm", "td-tr"}};
  Counter* runs = registry.GetCounter("stcomp_algo_runs_total", labels);
  Counter* points_in =
      registry.GetCounter("stcomp_algo_points_in_total", labels);
  Counter* points_kept =
      registry.GetCounter("stcomp_algo_points_kept_total", labels);
  Histogram* ratio = registry.GetHistogram("stcomp_algo_compression_ratio",
                                           labels, RatioBuckets());
  Histogram* run_seconds = registry.GetHistogram(
      "stcomp_algo_run_seconds", labels, LatencyBucketsSeconds());

  const uint64_t runs_before = runs->value();
  const uint64_t in_before = points_in->value();
  const uint64_t kept_before = points_kept->value();
  const uint64_t ratio_before = ratio->count();
  const uint64_t seconds_before = run_seconds->count();

  const algo::IndexList kept = info->run(trajectory, params);

  EXPECT_EQ(runs->value(), runs_before + 1);
  EXPECT_EQ(points_in->value(), in_before + trajectory.size());
  EXPECT_EQ(points_kept->value(), kept_before + kept.size());
  EXPECT_EQ(ratio->count(), ratio_before + 1);
  EXPECT_EQ(run_seconds->count(), seconds_before + 1);

  // The run must surface in the Prometheus exposition of the global
  // registry under its {algorithm=...} label.
  const std::string prom = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(prom.find("stcomp_algo_runs_total{algorithm=\"td-tr\"}"),
            std::string::npos);
  EXPECT_NE(
      prom.find("stcomp_algo_run_seconds_bucket{algorithm=\"td-tr\",le="),
      std::string::npos);
}
#endif  // STCOMP_METRICS_ENABLED

}  // namespace
}  // namespace stcomp::obs
