#include "stcomp/error/synchronous_error.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/error/integration.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

double NumericAverageLinearNorm(Vec2 d0, Vec2 d1) {
  return AdaptiveSimpson(
      [&](double u) { return (d0 + (d1 - d0) * u).Norm(); }, 0.0, 1.0, 1e-12);
}

TEST(AverageLinearNormTest, ZeroVectors) {
  EXPECT_DOUBLE_EQ(AverageLinearNorm({0, 0}, {0, 0}), 0.0);
}

TEST(AverageLinearNormTest, ConstantOffsetCase) {
  // Paper case c1 = 0: translated segment, constant distance.
  EXPECT_DOUBLE_EQ(AverageLinearNorm({3, 4}, {3, 4}), 5.0);
}

TEST(AverageLinearNormTest, SharedStartPointCase) {
  // Paper case "segments share start point": d0 = 0 -> average is half the
  // final offset.
  EXPECT_NEAR(AverageLinearNorm({0, 0}, {6, 8}), 5.0, 1e-12);
}

TEST(AverageLinearNormTest, SharedEndPointCase) {
  EXPECT_NEAR(AverageLinearNorm({6, 8}, {0, 0}), 5.0, 1e-12);
}

TEST(AverageLinearNormTest, ZeroCrossingCollinearDeltas) {
  // d(u) passes through 0 in the middle (parallel chords, disc = 0):
  // average of |linear| = (1/4)(|d0| + |d1|) when the zero is at u=1/2.
  EXPECT_NEAR(AverageLinearNorm({-4, 0}, {4, 0}), 2.0, 1e-12);
}

TEST(AverageLinearNormTest, GeneralCaseMatchesQuadrature) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 d0{rng.NextUniform(-100.0, 100.0),
                  rng.NextUniform(-100.0, 100.0)};
    const Vec2 d1{rng.NextUniform(-100.0, 100.0),
                  rng.NextUniform(-100.0, 100.0)};
    const double closed = AverageLinearNorm(d0, d1);
    const double numeric = NumericAverageLinearNorm(d0, d1);
    EXPECT_NEAR(closed, numeric, 1e-8 * (1.0 + numeric))
        << "trial=" << trial << " d0=(" << d0.x << "," << d0.y << ") d1=("
        << d1.x << "," << d1.y << ")";
  }
}

TEST(AverageLinearNormTest, NearDegenerateScales) {
  // Tiny direction change on a huge offset (cancellation regime).
  const Vec2 d0{1e6, 0.0};
  const Vec2 d1{1e6 + 1e-3, 1e-3};
  const double closed = AverageLinearNorm(d0, d1);
  EXPECT_NEAR(closed, 1e6, 1.0);
}

TEST(AverageLinearAbsTest, NoSignChange) {
  EXPECT_DOUBLE_EQ(AverageLinearAbs(2.0, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(AverageLinearAbs(-2.0, -4.0), 3.0);
  EXPECT_DOUBLE_EQ(AverageLinearAbs(0.0, 4.0), 2.0);
}

TEST(AverageLinearAbsTest, SignChange) {
  // Crosses zero at u = 0.5: two triangles of average (1/4)(|s0|+|s1|).
  EXPECT_DOUBLE_EQ(AverageLinearAbs(-4.0, 4.0), 2.0);
  // Asymmetric crossing: s0=-1, s1=3, zero at u=0.25:
  // integral = 0.25*0.5*1 + 0.75*0.5*3 = 1.25.
  EXPECT_DOUBLE_EQ(AverageLinearAbs(-1.0, 3.0), 1.25);
}

TEST(SynchronousErrorTest, IdenticalTrajectoriesHaveZeroError) {
  const Trajectory trajectory = RandomWalk(50, 1);
  EXPECT_DOUBLE_EQ(SynchronousError(trajectory, trajectory).value(), 0.0);
  EXPECT_DOUBLE_EQ(MaxSynchronousError(trajectory, trajectory).value(), 0.0);
}

TEST(SynchronousErrorTest, RequiresMatchingInterval) {
  const Trajectory a = Line(10, 1.0, 1.0, 0.0);
  const Trajectory b = Line(5, 1.0, 1.0, 0.0);
  EXPECT_EQ(SynchronousError(a, b).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SynchronousErrorTest, RequiresTwoPoints) {
  const Trajectory a = Line(10, 1.0, 1.0, 0.0);
  const Trajectory one = Traj({{0, 0, 0}});
  EXPECT_FALSE(SynchronousError(a, one).ok());
  EXPECT_FALSE(SynchronousError(one, a).ok());
}

TEST(SynchronousErrorTest, HandComputedCase) {
  // Original: 0 -> 100 m in 10 s with a detour sample at (50, 40) at t=5.
  // Approximation: straight 0 -> 100.
  // Difference at t=0/10: 0; at t=5: (0, 40). Both halves are the "shared
  // endpoint" case: average 20 each, total 20.
  const Trajectory original =
      Traj({{0, 0, 0}, {5, 50, 40}, {10, 100, 0}});
  const Trajectory approximation = Traj({{0, 0, 0}, {10, 100, 0}});
  EXPECT_NEAR(SynchronousError(original, approximation).value(), 20.0, 1e-12);
  EXPECT_NEAR(MaxSynchronousError(original, approximation).value(), 40.0,
              1e-12);
}

TEST(SynchronousErrorTest, TimeWeightingMatters) {
  // Same geometry, but the detour interval lasts 1 s out of 100 s: the
  // time-weighted error collapses accordingly (Eq. 3's weighting).
  const Trajectory original =
      Traj({{0, 0, 0}, {99, 50, 40}, {100, 100, 0}});
  const Trajectory approximation = Traj({{0, 0, 0}, {100, 100, 0}});
  const double error = SynchronousError(original, approximation).value();
  // First 99 s: shared-start case scaled by the interpolated offset at
  // t=99 (|d(99)| = 40 in y plus x deviation), well below 40 on average;
  // exact value checked against quadrature below.
  const double numeric =
      SynchronousErrorNumeric(original, approximation, 1e-10).value();
  EXPECT_NEAR(error, numeric, 1e-6);
  // Max offset is ~63 m (the object also lags in x); the average stays
  // well below it and below the naive (40+0)/2 midpoint of the detour's
  // y-offset plus x-lag peak.
  EXPECT_LT(error, 40.0);
  EXPECT_GT(error, 20.0);
}

class ClosedFormVsNumeric : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosedFormVsNumeric, AgreeOnCompressedRandomWalks) {
  const Trajectory trajectory = RandomWalk(120, GetParam());
  for (double epsilon : {10.0, 40.0, 120.0}) {
    const Trajectory approximation =
        trajectory.Subset(algo::TdTr(trajectory, epsilon));
    const double closed =
        SynchronousError(trajectory, approximation).value();
    const double numeric =
        SynchronousErrorNumeric(trajectory, approximation, 1e-10).value();
    EXPECT_NEAR(closed, numeric, 1e-6 * (1.0 + numeric))
        << "eps=" << epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormVsNumeric,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SynchronousErrorTest, MaxAttainedAtGridVertex) {
  // The max over the union grid must dominate dense sampling.
  const Trajectory trajectory = RandomWalk(60, 12);
  const Trajectory approximation =
      trajectory.Subset(algo::DouglasPeucker(trajectory, 50.0));
  const double reported =
      MaxSynchronousError(trajectory, approximation).value();
  double dense = 0.0;
  const double t0 = trajectory.front().t;
  const double t1 = trajectory.back().t;
  for (int k = 0; k <= 5000; ++k) {
    const double t = t0 + (t1 - t0) * k / 5000.0;
    dense = std::max(dense, Distance(trajectory.PositionAt(t).value(),
                                     approximation.PositionAt(t).value()));
  }
  EXPECT_GE(reported + 1e-9, dense);
  EXPECT_NEAR(reported, dense, 1e-6 + 0.01 * reported);
}

// Degenerate-input regressions: each test drives one closed-form branch of
// the paper's case analysis through whole trajectories (not just
// AverageLinearNorm vectors) and pins the hand-computed value against the
// adaptive-Simpson integrator.

TEST(SynchronousErrorDegenerateTest, StationaryIdenticalIsExactlyZero) {
  const Trajectory stationary =
      Traj({{0, 5, -3}, {7, 5, -3}, {19, 5, -3}, {40, 5, -3}});
  EXPECT_DOUBLE_EQ(SynchronousError(stationary, stationary).value(), 0.0);
  EXPECT_DOUBLE_EQ(MaxSynchronousError(stationary, stationary).value(), 0.0);
  EXPECT_NEAR(SynchronousErrorNumeric(stationary, stationary, 1e-12).value(),
              0.0, 1e-9);
}

TEST(SynchronousErrorDegenerateTest, ConstantSpeedCollinearRunIsExactlyZero) {
  // Constant velocity sampled at irregular times: the time-ratio schedule
  // of the two-point approximation reproduces the original exactly, so
  // every union interval hits the zero-offset branch.
  std::vector<TimedPoint> points;
  for (double t : {0.0, 1.0, 2.5, 7.0, 11.25, 30.0}) {
    points.emplace_back(t, 3.0 * t, -2.0 * t);
  }
  const Trajectory original = Traj(std::move(points));
  const Trajectory approximation =
      Traj({{0, 0, 0}, {30.0, 90.0, -60.0}});
  EXPECT_NEAR(SynchronousError(original, approximation).value(), 0.0, 1e-12);
  EXPECT_NEAR(MaxSynchronousError(original, approximation).value(), 0.0,
              1e-12);
  EXPECT_NEAR(
      SynchronousErrorNumeric(original, approximation, 1e-12).value(), 0.0,
      1e-9);
}

TEST(SynchronousErrorDegenerateTest, ConstantOffsetBranchPinned) {
  // On [10, 20] the original runs parallel to the approximation at a
  // constant (0, 4) offset — the paper's c1 = 0 branch. The flanking
  // intervals are the shared-start / shared-end cases (average = half the
  // extreme offset): (10*2 + 10*4 + 20*2) / 40 = 2.5.
  const Trajectory original =
      Traj({{0, 0, 0}, {10, 10, 4}, {20, 20, 4}, {40, 40, 0}});
  const Trajectory approximation = Traj({{0, 0, 0}, {40, 40, 0}});
  EXPECT_NEAR(SynchronousError(original, approximation).value(), 2.5, 1e-12);
  EXPECT_NEAR(MaxSynchronousError(original, approximation).value(), 4.0,
              1e-12);
  EXPECT_NEAR(
      SynchronousError(original, approximation).value(),
      SynchronousErrorNumeric(original, approximation, 1e-12).value(), 1e-9);
}

TEST(SynchronousErrorDegenerateTest, ZeroDiscriminantBranchPinned) {
  // On [5, 15] the offset runs from (0, -3) through zero to (0, 3):
  // collinear anti-parallel deltas, the zero-discriminant branch, average
  // (|d0| + |d1|) / 4 = 1.5. Flanks are shared-endpoint cases, also 1.5,
  // so the time-weighted total is exactly 1.5.
  const Trajectory original =
      Traj({{0, 0, 0}, {5, 5, -3}, {15, 15, 3}, {20, 20, 0}});
  const Trajectory approximation = Traj({{0, 0, 0}, {20, 20, 0}});
  EXPECT_NEAR(SynchronousError(original, approximation).value(), 1.5, 1e-12);
  EXPECT_NEAR(MaxSynchronousError(original, approximation).value(), 3.0,
              1e-12);
  EXPECT_NEAR(
      SynchronousError(original, approximation).value(),
      SynchronousErrorNumeric(original, approximation, 1e-12).value(), 1e-9);
}

TEST(IntegrationTest, AdaptiveSimpsonPolynomialsExact) {
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return x * x; }, 0.0, 3.0, 1e-12),
              9.0, 1e-9);
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0,
                              3.14159265358979323846, 1e-12),
              2.0, 1e-9);
  EXPECT_DOUBLE_EQ(AdaptiveSimpson([](double) { return 1.0; }, 2.0, 2.0, 1e-12),
                   0.0);
}

TEST(IntegrationTest, HandlesKinks) {
  // |x - 0.3| has a kink; adaptive refinement must converge anyway.
  const double expected = 0.5 * (0.3 * 0.3 + 0.7 * 0.7);
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return std::abs(x - 0.3); }, 0.0,
                              1.0, 1e-12),
              expected, 1e-9);
}

}  // namespace
}  // namespace stcomp
