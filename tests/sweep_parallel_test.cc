#include "stcomp/exp/sweep.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/geom/kernels.h"
#include "stcomp/obs/metrics.h"
#include "test_util.h"

namespace stcomp {
namespace {

std::vector<Trajectory> SmallDataset() {
  return {testutil::RandomWalk(120, 1), testutil::RandomWalk(90, 2),
          testutil::LineWithStop(12, 8, 12)};
}

bool PointsEqual(const SweepPoint& a, const SweepPoint& b) {
  // Exact doubles: the parallel driver runs the identical arithmetic on
  // the identical shared dataset, just on another thread.
  return a.epsilon_m == b.epsilon_m &&
         a.speed_threshold_mps == b.speed_threshold_mps &&
         a.compression_percent == b.compression_percent &&
         a.sync_error_mean_m == b.sync_error_mean_m &&
         a.sync_error_max_m == b.sync_error_max_m &&
         a.perp_error_mean_m == b.perp_error_mean_m &&
         a.area_error_m == b.area_error_m;
}

TEST(SweepParallelTest, ParallelMatchesSerialExactly) {
  const std::vector<Trajectory> dataset = SmallDataset();
  const std::vector<double> thresholds = {5.0, 20.0, 60.0};
  std::vector<SweepRequest> requests;
  for (const char* name : {"ndp", "td-tr", "opw-tr", "bottom-up-tr"}) {
    algo::AlgorithmParams base;
    base.speed_threshold_mps = 10.0;
    requests.push_back({name, base, thresholds});
  }
  const Result<std::vector<std::vector<SweepPoint>>> parallel =
      SweepManyParallel(dataset, requests, 4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel->size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    const Result<std::vector<SweepPoint>> serial = SweepThresholds(
        dataset, requests[r].algorithm, requests[r].base, thresholds);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ((*parallel)[r].size(), serial->size());
    for (size_t k = 0; k < serial->size(); ++k) {
      EXPECT_TRUE(PointsEqual((*parallel)[r][k], (*serial)[k]))
          << requests[r].algorithm << " threshold " << thresholds[k];
    }
  }
}

TEST(SweepParallelTest, ParallelMatchesSerialUnderEveryKernelBackend) {
  // The bitwise parallel==serial guarantee must hold under the scalar
  // kernels and under the dispatched vector backend alike (the backend is
  // process-wide, so it is pinned before the worker threads start).
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  if (kernels::DetectBestBackend() != kernels::Backend::kScalar) {
    backends.push_back(kernels::DetectBestBackend());
  }
  const std::vector<Trajectory> dataset = SmallDataset();
  const std::vector<double> thresholds = {5.0, 20.0, 60.0};
  std::vector<SweepRequest> requests;
  for (const char* name : {"ndp", "opw-tr", "td-sp", "radial"}) {
    algo::AlgorithmParams base;
    base.speed_threshold_mps = 10.0;
    requests.push_back({name, base, thresholds});
  }
  for (const kernels::Backend backend : backends) {
    const kernels::Backend previous =
        kernels::KernelDispatch::SetForTest(backend);
    const Result<std::vector<std::vector<SweepPoint>>> parallel =
        SweepManyParallel(dataset, requests, 4);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    for (size_t r = 0; r < requests.size(); ++r) {
      const Result<std::vector<SweepPoint>> serial = SweepThresholds(
          dataset, requests[r].algorithm, requests[r].base, thresholds);
      ASSERT_TRUE(serial.ok());
      ASSERT_EQ((*parallel)[r].size(), serial->size());
      for (size_t k = 0; k < serial->size(); ++k) {
        EXPECT_TRUE(PointsEqual((*parallel)[r][k], (*serial)[k]))
            << kernels::BackendName(backend) << " "
            << requests[r].algorithm << " threshold " << thresholds[k];
      }
    }
    kernels::KernelDispatch::SetForTest(previous);
  }
}

TEST(SweepParallelTest, SweepThresholdsParallelMatchesSerial) {
  const std::vector<Trajectory> dataset = SmallDataset();
  const algo::AlgorithmParams base;
  const std::vector<double> thresholds = {10.0, 40.0};
  const Result<std::vector<SweepPoint>> serial =
      SweepThresholds(dataset, "td-tr", base, thresholds);
  const Result<std::vector<SweepPoint>> parallel =
      SweepThresholdsParallel(dataset, "td-tr", base, thresholds, 2);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), serial->size());
  for (size_t k = 0; k < serial->size(); ++k) {
    EXPECT_TRUE(PointsEqual((*parallel)[k], (*serial)[k])) << k;
  }
}

TEST(SweepParallelTest, MoreThreadsThanCellsIsFine) {
  const std::vector<Trajectory> dataset = {testutil::RandomWalk(60, 9)};
  const algo::AlgorithmParams base;
  const Result<std::vector<SweepPoint>> points =
      SweepThresholdsParallel(dataset, "ndp", base, {25.0}, 16);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 1u);
}

TEST(SweepParallelTest, UnknownAlgorithmFailsBeforeAnyWork) {
  const std::vector<Trajectory> dataset = {testutil::RandomWalk(60, 9)};
  std::vector<SweepRequest> requests = {{"bogus", {}, {10.0}}};
  const auto result = SweepManyParallel(dataset, requests);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SweepParallelTest, InvalidThresholdSurfacesAsStatusNotAbort) {
  // A negative epsilon in the grid must come back as kInvalidArgument from
  // params.Validate(), not trip the registry wrapper's check.
  const std::vector<Trajectory> dataset = {testutil::RandomWalk(60, 9)};
  const algo::AlgorithmParams base;
  const auto result =
      SweepThresholdsParallel(dataset, "td-tr", base, {30.0, -5.0}, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SweepParallelTest, EmptyDatasetIsInvalidArgument) {
  const std::vector<Trajectory> dataset;
  const algo::AlgorithmParams base;
  const auto result = SweepThresholds(dataset, "td-tr", base, {30.0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

#if STCOMP_METRICS_ENABLED
TEST(SweepParallelTest, RecordsSweepMetrics) {
  const std::vector<Trajectory> dataset = {testutil::RandomWalk(80, 13)};
  obs::Counter* const cells = obs::MetricsRegistry::Global().GetCounter(
      "stcomp_exp_sweep_cells_total", {{"algorithm", "td-tr"}});
  obs::Histogram* const seconds = obs::MetricsRegistry::Global().GetHistogram(
      "stcomp_exp_sweep_seconds", {}, obs::LatencyBucketsSeconds());
  const uint64_t cells_before = cells->value();
  const uint64_t sweeps_before = seconds->count();
  const algo::AlgorithmParams base;
  ASSERT_TRUE(
      SweepThresholdsParallel(dataset, "td-tr", base, {10.0, 30.0, 50.0}, 2)
          .ok());
  EXPECT_EQ(cells->value(), cells_before + 3);
  EXPECT_EQ(seconds->count(), sweeps_before + 1);
}
#endif  // STCOMP_METRICS_ENABLED

}  // namespace
}  // namespace stcomp
