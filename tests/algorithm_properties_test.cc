// Registry-wide property sweeps: invariants every compression algorithm
// must satisfy on every input, parameterised over (algorithm x input
// shape x threshold).

#include <gtest/gtest.h>

#include "stcomp/algo/registry.h"
#include "stcomp/error/evaluation.h"
#include "test_util.h"

namespace stcomp::algo {
namespace {

struct PropertyCase {
  std::string algorithm;
  std::string shape;
  uint64_t seed;
  double epsilon;
};

void PrintTo(const PropertyCase& param, std::ostream* os) {
  *os << param.algorithm << "/" << param.shape << "/seed" << param.seed
      << "/eps" << param.epsilon;
}

Trajectory MakeShape(const std::string& shape, uint64_t seed) {
  if (shape == "walk") {
    return testutil::RandomWalk(120, seed);
  }
  if (shape == "monotone") {
    return testutil::MonotoneWalk(120, seed);
  }
  if (shape == "line") {
    return testutil::Line(120, 10.0, 11.0, 3.0);
  }
  if (shape == "stop") {
    return testutil::LineWithStop(40, 20, 40);
  }
  STCOMP_CHECK(false);
  return {};
}

class AlgorithmProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AlgorithmProperty, OutputIsValidIndexList) {
  const PropertyCase& param = GetParam();
  const Trajectory trajectory = MakeShape(param.shape, param.seed);
  const AlgorithmInfo* info = FindAlgorithm(param.algorithm).value();
  AlgorithmParams params;
  params.epsilon_m = param.epsilon;
  const IndexList kept = info->run(trajectory, params);
  EXPECT_TRUE(IsValidIndexList(trajectory, kept));
}

TEST_P(AlgorithmProperty, OutputIsDeterministic) {
  const PropertyCase& param = GetParam();
  const Trajectory trajectory = MakeShape(param.shape, param.seed);
  const AlgorithmInfo* info = FindAlgorithm(param.algorithm).value();
  AlgorithmParams params;
  params.epsilon_m = param.epsilon;
  EXPECT_EQ(info->run(trajectory, params), info->run(trajectory, params));
}

TEST_P(AlgorithmProperty, EvaluationSucceedsAndErrorsAreFinite) {
  const PropertyCase& param = GetParam();
  const Trajectory trajectory = MakeShape(param.shape, param.seed);
  const AlgorithmInfo* info = FindAlgorithm(param.algorithm).value();
  AlgorithmParams params;
  params.epsilon_m = param.epsilon;
  const Result<Evaluation> eval =
      Evaluate(trajectory, info->run(trajectory, params));
  ASSERT_TRUE(eval.ok());
  EXPECT_GE(eval->compression_percent, 0.0);
  EXPECT_LT(eval->compression_percent, 100.0);
  EXPECT_GE(eval->sync_error_mean_m, 0.0);
  EXPECT_LE(eval->sync_error_mean_m, eval->sync_error_max_m + 1e-9);
  EXPECT_GE(eval->perp_error_max_m, eval->perp_error_mean_m - 1e-9);
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    for (const char* shape : {"walk", "monotone", "line", "stop"}) {
      for (double epsilon : {15.0, 60.0}) {
        cases.push_back({info.name, shape, 7, epsilon});
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = info.param.algorithm + "_" + info.param.shape + "_" +
                     std::to_string(static_cast<int>(info.param.epsilon));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, AlgorithmProperty,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace stcomp::algo
