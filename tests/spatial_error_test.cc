#include "stcomp/error/spatial_error.h"

#include <gtest/gtest.h>

#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/error/evaluation.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

TEST(PerpendicularErrorTest, ZeroWhenNothingDiscarded) {
  const Trajectory trajectory = RandomWalk(20, 1);
  const algo::IndexList all = algo::KeepAll(trajectory);
  EXPECT_DOUBLE_EQ(MeanPerpendicularError(trajectory, all), 0.0);
  EXPECT_DOUBLE_EQ(MaxPerpendicularError(trajectory, all), 0.0);
}

TEST(PerpendicularErrorTest, HandComputed) {
  // Discarded point at (50, 30) against segment (0,0)-(100,0).
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {5, 50, 30}, {10, 100, 0}});
  EXPECT_DOUBLE_EQ(MeanPerpendicularError(trajectory, {0, 2}), 30.0);
  EXPECT_DOUBLE_EQ(MaxPerpendicularError(trajectory, {0, 2}), 30.0);
}

TEST(PerpendicularErrorTest, MeanAveragesOverDiscarded) {
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {1, 25, 10}, {2, 50, 30}, {3, 100, 0}});
  EXPECT_DOUBLE_EQ(MeanPerpendicularError(trajectory, {0, 3}), 20.0);
  EXPECT_DOUBLE_EQ(MaxPerpendicularError(trajectory, {0, 3}), 30.0);
}

TEST(PerpendicularErrorTest, UsesSegmentNotLine) {
  // Discarded point beyond the segment end: distance clamps to the
  // endpoint (3-4-5 triangle), not the infinite line (4).
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {5, 13, 4}, {10, 10, 0}});
  EXPECT_DOUBLE_EQ(MaxPerpendicularError(trajectory, {0, 2}), 5.0);
}

TEST(AreaErrorTest, ZeroForIdenticalTrajectories) {
  const Trajectory trajectory = RandomWalk(30, 2);
  EXPECT_NEAR(AreaError(trajectory, trajectory).value(), 0.0, 1e-12);
}

TEST(AreaErrorTest, HandComputedTriangleDetour) {
  // Original detours to height 40 at mid-time; approximation runs along
  // the base line. Perpendicular offset is |linear| 0->40->0: average 20.
  const Trajectory original = Traj({{0, 0, 0}, {5, 50, 40}, {10, 100, 0}});
  const Trajectory approximation = Traj({{0, 0, 0}, {10, 100, 0}});
  EXPECT_NEAR(AreaError(original, approximation).value(), 20.0, 1e-12);
}

TEST(AreaErrorTest, PerpendicularNotSynchronous) {
  // A purely *temporal* deviation on a straight path: the object is ahead
  // of schedule but on the line. Perpendicular area error is 0.
  const Trajectory original = Traj({{0, 0, 0}, {2, 80, 0}, {10, 100, 0}});
  const Trajectory approximation = Traj({{0, 0, 0}, {10, 100, 0}});
  EXPECT_NEAR(AreaError(original, approximation).value(), 0.0, 1e-12);
}

TEST(AreaErrorTest, DegenerateApproximationSegment) {
  // Approximation pauses (zero-length segment): falls back to distance to
  // the stationary point.
  const Trajectory original =
      Traj({{0, 0, 0}, {5, 30, 0}, {10, 0, 0}, {20, 0, 0}});
  const Trajectory approximation =
      Traj({{0, 0, 0}, {10, 0, 0}, {20, 0, 0}});
  const double error = AreaError(original, approximation).value();
  // First 10 s: out-and-back detour against the (0,0)-(0,0)... the first
  // approximation segment (0,0)->(0,0) over t in [0,10] is degenerate, so
  // the distance is |p(t)|: 0->30->0 triangle, average 15 over [0,10];
  // second half exact 0. Time-weighted: 15 * 10/20 = 7.5.
  EXPECT_NEAR(error, 7.5, 1e-12);
}

TEST(AreaErrorTest, RequirementsEnforced) {
  const Trajectory a = Line(10, 1.0, 1.0, 0.0);
  const Trajectory b = Line(5, 1.0, 1.0, 0.0);
  EXPECT_FALSE(AreaError(a, b).ok());
}

TEST(EvaluationTest, FullEvaluationOnHandCase) {
  const Trajectory original = Traj({{0, 0, 0}, {5, 50, 40}, {10, 100, 0}});
  const Evaluation evaluation = Evaluate(original, {0, 2}).value();
  EXPECT_EQ(evaluation.original_points, 3u);
  EXPECT_EQ(evaluation.kept_points, 2u);
  EXPECT_NEAR(evaluation.compression_percent, 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(evaluation.sync_error_mean_m, 20.0, 1e-12);
  EXPECT_NEAR(evaluation.sync_error_max_m, 40.0, 1e-12);
  EXPECT_DOUBLE_EQ(evaluation.perp_error_mean_m, 40.0);
  EXPECT_DOUBLE_EQ(evaluation.perp_error_max_m, 40.0);
  EXPECT_NEAR(evaluation.area_error_m, 20.0, 1e-12);
}

TEST(EvaluationTest, RejectsInvalidIndexList) {
  const Trajectory trajectory = RandomWalk(10, 3);
  EXPECT_FALSE(Evaluate(trajectory, {0, 3}).ok());
  EXPECT_FALSE(Evaluate(trajectory, {1, 9}).ok());
}

TEST(EvaluationTest, SyncDominatesOrEqualsAreaOnDpOutput) {
  // The synchronous distance is always >= the perpendicular distance to
  // the active segment's line, so the averaged errors order the same way.
  for (uint64_t seed : {4u, 5u, 6u}) {
    const Trajectory trajectory = RandomWalk(100, seed);
    const algo::IndexList kept = algo::DouglasPeucker(trajectory, 40.0);
    const Evaluation evaluation = Evaluate(trajectory, kept).value();
    EXPECT_GE(evaluation.sync_error_mean_m, evaluation.area_error_m - 1e-9);
  }
}

}  // namespace
}  // namespace stcomp
