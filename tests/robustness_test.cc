// Parser robustness sweeps: random and mutated inputs must produce error
// Statuses, never crashes, hangs, or silent garbage. (The library is
// exception-free; every parser's failure path is a Status code.)

#include <string>

#include <gtest/gtest.h>

#include "stcomp/gps/csv.h"
#include "stcomp/gps/gpx.h"
#include "stcomp/gps/nmea.h"
#include "stcomp/gps/plt.h"
#include "stcomp/gps/xml_scanner.h"
#include "stcomp/sim/random.h"
#include "stcomp/store/serialization.h"
#include "test_util.h"

namespace stcomp {
namespace {

std::string RandomBytes(Rng* rng, size_t length, bool printable) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (printable) {
      out.push_back(static_cast<char>(32 + rng->NextBelow(95)));
    } else {
      out.push_back(static_cast<char>(rng->NextBelow(256)));
    }
  }
  return out;
}

// Flip a few random bytes of a valid document.
std::string Mutate(std::string document, Rng* rng, int flips) {
  for (int i = 0; i < flips && !document.empty(); ++i) {
    const size_t at = rng->NextBelow(document.size());
    document[at] = static_cast<char>(rng->NextBelow(256));
  }
  return document;
}

TEST(RobustnessTest, RandomGarbageIntoEveryParser) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const bool printable = trial % 2 == 0;
    const std::string garbage =
        RandomBytes(&rng, 1 + rng.NextBelow(300), printable);
    // None of these may crash; all must return a Status.
    (void)ParseCsvTrajectory(garbage);
    (void)ParseGpx(garbage);
    (void)ParseXml(garbage);
    (void)ParsePlt(garbage);
    (void)ParseNmea(garbage, nullptr);
    (void)ParseRmcSentence(garbage);
    std::string_view cursor = garbage;
    (void)DeserializeTrajectory(&cursor);
    (void)ParseIso8601(garbage);
  }
}

TEST(RobustnessTest, MutatedCsvNeverCrashes) {
  Rng rng(2);
  const std::string valid =
      WriteCsvTrajectory(testutil::RandomWalk(30, 3));
  int parsed_ok = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto result =
        ParseCsvTrajectory(Mutate(valid, &rng, 1 + trial % 4));
    parsed_ok += result.ok();
  }
  // Some single-byte mutations keep the file valid; most must not.
  EXPECT_LT(parsed_ok, 200);
}

TEST(RobustnessTest, MutatedGpxNeverCrashes) {
  Rng rng(3);
  const std::string valid =
      WriteGpx(testutil::RandomWalk(20, 4), {52.22, 6.89});
  for (int trial = 0; trial < 200; ++trial) {
    (void)ParseGpx(Mutate(valid, &rng, 1 + trial % 6));
  }
}

TEST(RobustnessTest, MutatedNmeaNeverAcceptsCorruptPayloads) {
  Rng rng(4);
  const std::string valid =
      WriteNmea(testutil::RandomWalk(10, 5), {52.22, 6.89});
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = Mutate(valid, &rng, 1);
    const auto result = ParseNmea(mutated, nullptr);
    accepted += result.ok() && mutated != valid;
  }
  // The XOR checksum catches all single-byte payload flips; the only
  // accepted mutants are those that only touched line endings or flipped
  // bytes in ways that keep sentences individually consistent (e.g. a
  // mutation inside an ignored trailing field) — allow a small number.
  EXPECT_LT(accepted, 40);
}

TEST(RobustnessTest, MutatedFramesDetected) {
  Rng rng(5);
  const std::string frame =
      SerializeTrajectory(testutil::RandomWalk(40, 6), Codec::kDelta).value();
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(frame, &rng, 1);
    std::string_view cursor = mutated;
    const auto result = DeserializeTrajectory(&cursor);
    accepted += result.ok() && mutated != frame;
  }
  // CRC-32 catches every single-byte corruption.
  EXPECT_EQ(accepted, 0);
}

TEST(RobustnessTest, TruncatedFramesDetected) {
  const std::string frame =
      SerializeTrajectory(testutil::RandomWalk(25, 7), Codec::kRaw).value();
  for (size_t length = 0; length < frame.size(); length += 7) {
    std::string_view cursor(frame.data(), length);
    EXPECT_FALSE(DeserializeTrajectory(&cursor).ok()) << "len=" << length;
  }
}

TEST(RobustnessTest, DeeplyNestedXmlRejectedNotOverflowed) {
  std::string document;
  for (int i = 0; i < 5000; ++i) {
    document += "<a>";
  }
  document += "x";
  for (int i = 0; i < 5000; ++i) {
    document += "</a>";
  }
  EXPECT_FALSE(ParseXml(document).ok());  // Depth-capped, no stack overflow.
}

}  // namespace
}  // namespace stcomp
