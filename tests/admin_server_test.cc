// Admin-server tests: HTTP plumbing over a real loopback socket, the six
// standard endpoints, and the PR's end-to-end acceptance path — one
// object's fixes pushed through the policed compressor into a segment
// store with tracing at period 1, its connected span tree then retrieved
// via /tracez and exported as Perfetto JSON.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "stcomp/obs/admin_server.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/query.h"
#include "stcomp/store/segment_store.h"
#include "stcomp/store/st_index.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/policed_compressor.h"

namespace stcomp::obs {
namespace {

struct HttpResponse {
  int status = 0;
  std::string content_type;
  std::string body;
  std::string raw;
};

// One-shot HTTP/1.0 GET against the loopback server under test.
HttpResponse Get(uint16_t port, const std::string& target,
                 const std::string& method = "GET") {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return response;
  }
  const std::string request = method + " " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 <status> ..." then headers, blank line, body.
  if (response.raw.size() > 12) {
    response.status = std::atoi(response.raw.c_str() + 9);
  }
  const size_t type_at = response.raw.find("Content-Type: ");
  if (type_at != std::string::npos) {
    const size_t type_end = response.raw.find("\r\n", type_at);
    response.content_type =
        response.raw.substr(type_at + 14, type_end - type_at - 14);
  }
  const size_t body_at = response.raw.find("\r\n\r\n");
  if (body_at != std::string::npos) {
    response.body = response.raw.substr(body_at + 4);
  }
  return response;
}

TEST(AdminServerTest, ServesCustomHandlerWithQueryParams) {
  AdminServer server;
  server.Handle("/echo", [](const AdminRequest& request) {
    return AdminResponse{200, "text/plain; charset=utf-8",
                         "a=" + request.QueryParam("a") +
                             " b=" + request.QueryParam("b") + "\n"};
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);
  const HttpResponse response = Get(server.port(), "/echo?a=1&b=two");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "a=1 b=two\n");
  // Absent keys come back empty rather than failing.
  EXPECT_EQ(Get(server.port(), "/echo").body, "a= b=\n");
  server.Stop();
}

TEST(AdminServerTest, UnknownPathIs404AndNonGetIs405) {
  AdminServer server;
  RegisterStandardEndpoints(server, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(Get(server.port(), "/nope").status, 404);
  EXPECT_EQ(Get(server.port(), "/healthz", "POST").status, 405);
  server.Stop();
}

TEST(AdminServerTest, StartWhileRunningFailsAndStopIsIdempotent) {
  AdminServer server;
  server.Handle("/healthz", [](const AdminRequest&) {
    return AdminResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(server.Start(0).code(), StatusCode::kFailedPrecondition);
  server.Stop();
  EXPECT_EQ(server.port(), 0);
  server.Stop();  // second stop is a no-op
}

TEST(AdminServerTest, StandardEndpointsAllAnswer) {
  AdminServer server;
  RegisterStandardEndpoints(server, [](size_t) {
    return std::string("{\"objects\":[{\"object_id\":\"o-1\"}]}\n");
  });
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t port = server.port();

  const HttpResponse health = Get(port, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpResponse metrics = Get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);

  const HttpResponse objects = Get(port, "/objectz");
  EXPECT_EQ(objects.status, 200);
  EXPECT_NE(objects.body.find("\"object_id\":\"o-1\""), std::string::npos);

  const HttpResponse flight = Get(port, "/flightz");
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.body.find("flight recorder:"), std::string::npos);
  EXPECT_NE(flight.body.find("total_recorded="), std::string::npos);
  const HttpResponse flight_json = Get(port, "/flightz?format=json");
  EXPECT_EQ(flight_json.content_type, "application/json");
  EXPECT_EQ(flight_json.body.front(), '[');

  const HttpResponse trace = Get(port, "/tracez");
  EXPECT_EQ(trace.status, 200);
  const HttpResponse trace_json = Get(port, "/tracez?format=json");
  EXPECT_EQ(trace_json.content_type, "application/json");

  // No queryz provider: the endpoint still answers with an empty document.
  const HttpResponse queries = Get(port, "/queryz");
  EXPECT_EQ(queries.status, 200);
  EXPECT_EQ(queries.content_type, "application/json");
  EXPECT_EQ(queries.body, "{\"queries\":{}}\n");
  server.Stop();
}

// /queryz wired to the real query layer: after an index-accelerated query
// runs, the document reports per-type counts and block/latency counters.
TEST(AdminServerTest, QueryzReportsQueryCounters) {
  TrajectoryStore store;
  std::vector<TimedPoint> points;
  for (int i = 0; i < 80; ++i) {
    points.emplace_back(1.0 * i, 10.0 * i, 5.0 * i);
  }
  ASSERT_TRUE(
      store.Insert("veh-1", Trajectory::FromPoints(std::move(points)).value())
          .ok());
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  QueryRequest request;
  request.type = QueryType::kRange;
  request.box = {{0.0, 0.0}, {500.0, 500.0}};
  ASSERT_TRUE(RunQuery(store, index, request).ok());

  AdminServer server;
  RegisterStandardEndpoints(server, nullptr,
                            [] { return stcomp::RenderQueryzJson(); });
  ASSERT_TRUE(server.Start(0).ok());
  const HttpResponse response = Get(server.port(), "/queryz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"queries\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"range\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"blocks_considered\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"latency_seconds\""), std::string::npos)
      << response.body;
  server.Stop();
}

// Satellite regression (ISSUE 9): /objectz and /queryz share one JSON
// string-escaping helper — object ids with quotes, backslashes, control
// characters and non-ASCII bytes must come out as valid JSON, not as raw
// structure-breaking bytes.
TEST(AdminServerTest, ObjectzEscapesHostileObjectIds) {
  TrajectoryStore store;
  FleetCompressor fleet(
      [] {
        return std::make_unique<OpeningWindowStream>(
            5.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      &store, "objectz-escape");
  const std::string hostile = "veh-\"x\\y\n\xc3\xa9";
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        fleet.Push(hostile, {static_cast<double>(i), {i * 10.0, 0.0}}).ok());
  }
  AdminServer server;
  RegisterStandardEndpoints(
      server, [&fleet](size_t limit) { return fleet.RenderObjectsJson(limit); });
  ASSERT_TRUE(server.Start(0).ok());
  const HttpResponse response = Get(server.port(), "/objectz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("veh-\\\"x\\\\y\\n\xc3\xa9"),
            std::string::npos)
      << response.body;
  // The raw unescaped quote sequence must not appear inside the id.
  EXPECT_EQ(response.body.find(hostile), std::string::npos) << response.body;
  server.Stop();
  ASSERT_TRUE(fleet.FinishAll().ok());
}

TEST(AdminServerTest, ClientDisconnectMidResponseDoesNotKillProcess) {
  AdminServer server;
  server.Handle("/big", [](const AdminRequest&) {
    return AdminResponse{200, "text/plain; charset=utf-8",
                         std::string(8 * 1024 * 1024, 'x')};
  });
  ASSERT_TRUE(server.Start(0).ok());

  // Request a multi-megabyte body, read just the head, then slam the
  // connection shut abortively (SO_LINGER 0 → RST). The server is still
  // mid-WriteAll with megabytes pending; its next send must fail with
  // EPIPE/ECONNRESET, not raise a process-killing SIGPIPE.
  for (int i = 0; i < 3; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    const std::string request = "GET /big HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    char buf[1024];
    ASSERT_GT(::read(fd, buf, sizeof(buf)), 0);  // server is now writing
    const linger abort_on_close{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
                 sizeof(abort_on_close));
    ::close(fd);
  }

  // The accept thread survived and still serves.
  const HttpResponse after = Get(server.port(), "/big");
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body.size(), 8u * 1024 * 1024);
  server.Stop();
}

TEST(AdminServerTest, NullObjectzProviderServesEmptyList) {
  AdminServer server;
  RegisterStandardEndpoints(server, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(Get(server.port(), "/objectz").body, "{\"objects\":[]}\n");
  server.Stop();
}

#if STCOMP_METRICS_ENABLED
// Acceptance: one object's journey — ingest gate → compressor → WAL
// append → segment checkpoint — forms a connected span tree retrievable
// over /tracez, in tree text and as Perfetto JSON.
TEST(AdminServerTest, ObjectJourneySpanTreeRetrievableViaTracez) {
  const std::string dir = ::testing::TempDir() + "admin_tracez_e2e";
  std::filesystem::remove_all(dir);

  TraceBuffer::Global().Clear();
  const uint64_t previous_period = TraceBuffer::SetSampledRootPeriod(1);

  {
    SegmentStore store;
    ASSERT_TRUE(store.Open(dir).ok());
    PolicedCompressor policed(
        std::make_unique<OpeningWindowStream>(5.0, algo::BreakPolicy::kNormal,
                                              StreamCriterion::kSynchronized),
        IngestPolicy{}, "admin-e2e");
    std::vector<TimedPoint> committed;
    for (int i = 0; i < 40; ++i) {
      // Explicit per-fix root; the policed push, any WAL commit and the
      // store append all become its descendants.
      TraceSpan root("ingest.fix", "admin-e2e-obj");
      committed.clear();
      ASSERT_TRUE(
          policed.Push(TimedPoint(i, i * 7.0 * (i % 3), 0.5 * i), &committed)
              .ok());
      for (const TimedPoint& point : committed) {
        ASSERT_TRUE(store.Append("admin-e2e-obj", point).ok());
      }
      ASSERT_TRUE(store.Commit().ok());
    }
    {
      TraceSpan finish("ingest.finish", "admin-e2e-obj");
      committed.clear();
      policed.Finish(&committed);
      for (const TimedPoint& point : committed) {
        ASSERT_TRUE(store.Append("admin-e2e-obj", point).ok());
      }
      ASSERT_TRUE(store.Checkpoint().ok());
    }
  }
  TraceBuffer::SetSampledRootPeriod(previous_period);

  AdminServer server;
  RegisterStandardEndpoints(server, nullptr);
  ASSERT_TRUE(server.Start(0).ok());

  // Tree text: the explicit root is unindented (after the fixed columns),
  // its pipeline children one level deeper.
  const std::string tree = Get(server.port(), "/tracez").body;
  EXPECT_NE(tree.find("  ingest.fix admin-e2e-obj"), std::string::npos)
      << tree;
  EXPECT_NE(tree.find("    policed.push"), std::string::npos) << tree;
  EXPECT_NE(tree.find("    segment_store.append"), std::string::npos) << tree;
  EXPECT_NE(tree.find("    wal.commit"), std::string::npos) << tree;

  // The journey is *connected*: in the JSON view (one span per line),
  // every pipeline span below the explicit roots has a non-zero parent.
  const std::string json = Get(server.port(), "/tracez?format=json").body;
  EXPECT_NE(json.find("\"name\":\"ingest.fix\""), std::string::npos);
  size_t pipeline_spans = 0;
  size_t line_start = 0;
  while (line_start < json.size()) {
    size_t line_end = json.find('\n', line_start);
    if (line_end == std::string::npos) {
      line_end = json.size();
    }
    const std::string line = json.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.find("\"name\":\"policed.push\"") == std::string::npos &&
        line.find("\"name\":\"wal.commit\"") == std::string::npos &&
        line.find("\"name\":\"segment_store.append\"") == std::string::npos) {
      continue;
    }
    ++pipeline_spans;
    EXPECT_EQ(line.find("\"parent_id\":0,"), std::string::npos) << line;
  }
  EXPECT_GT(pipeline_spans, 0u);

  // Perfetto export is served with the chrome://tracing envelope.
  const HttpResponse perfetto =
      Get(server.port(), "/tracez?format=perfetto");
  EXPECT_EQ(perfetto.content_type, "application/json");
  EXPECT_EQ(perfetto.body.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(perfetto.body.find("\"name\":\"ingest.fix\""), std::string::npos);
  EXPECT_NE(perfetto.body.find("\"ph\":\"X\""), std::string::npos);

  // ?object= filters the view down to the tagged spans.
  const std::string filtered =
      Get(server.port(), "/tracez?object=admin-e2e-obj").body;
  EXPECT_NE(filtered.find("ingest.fix"), std::string::npos);
  EXPECT_EQ(filtered.find("no-such-object"), std::string::npos);

  server.Stop();
  std::filesystem::remove_all(dir);
}
#endif  // STCOMP_METRICS_ENABLED

// Satellite regression (ISSUE 8): /objectz must stay bounded on huge
// fleets — ?limit=N caps the rendered entries and flags the cut with
// "truncated", the bare endpoint defaults to kDefaultObjectzLimit, and
// garbage limits fall back to the default instead of "unlimited".
TEST(AdminServerTest, ObjectzHonorsLimitQueryParam) {
  TrajectoryStore store;
  FleetCompressor fleet(
      [] {
        return std::make_unique<OpeningWindowStream>(
            5.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      &store, "objectz-limit");
  for (int object = 0; object < 5; ++object) {
    const std::string id = "veh-" + std::to_string(object);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          fleet.Push(id, {static_cast<double>(i), {i * 10.0, 0.0}}).ok());
    }
  }

  AdminServer server;
  // The fleet is idle for the rest of the test, so serving reads from the
  // server thread is safe (same contract as the streaming example).
  RegisterStandardEndpoints(
      server, [&fleet](size_t limit) { return fleet.RenderObjectsJson(limit); });
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t port = server.port();

  const auto count_entries = [](const std::string& body) {
    size_t count = 0;
    for (size_t pos = body.find("\"object_id\""); pos != std::string::npos;
         pos = body.find("\"object_id\"", pos + 1)) {
      ++count;
    }
    return count;
  };

  const HttpResponse limited = Get(port, "/objectz?limit=2");
  EXPECT_EQ(limited.status, 200);
  EXPECT_EQ(count_entries(limited.body), 2u);
  EXPECT_NE(limited.body.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(limited.body.find("\"objects_total\":5"), std::string::npos);

  // 5 objects < default limit of 1000: everything renders, no truncation.
  const HttpResponse all = Get(port, "/objectz");
  EXPECT_EQ(count_entries(all.body), 5u);
  EXPECT_NE(all.body.find("\"truncated\":false"), std::string::npos);

  // ?limit=0 is the explicit "unlimited" escape hatch.
  const HttpResponse unlimited = Get(port, "/objectz?limit=0");
  EXPECT_EQ(count_entries(unlimited.body), 5u);

  // Malformed limits keep the default instead of dropping the bound.
  const HttpResponse garbage = Get(port, "/objectz?limit=-1");
  EXPECT_EQ(count_entries(garbage.body), 5u);
  EXPECT_NE(garbage.body.find("\"truncated\":false"), std::string::npos);

  server.Stop();
  ASSERT_TRUE(fleet.FinishAll().ok());
}

}  // namespace
}  // namespace stcomp::obs
