// SpatioTemporalIndex (DESIGN.md §17): STIX round trip, candidate
// exactness at summary granularity, stale-index detection via payload
// CRCs, the oversize-block overflow path, and corruption hardening — a
// full single-bit-flip sweep over the serialized image must come back as
// kDataLoss, never a crash or a silently-wrong index.

#include "stcomp/store/st_index.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/serialization.h"
#include "stcomp/store/trajectory_store.h"
#include "test_util.h"

namespace stcomp {
namespace {

TrajectoryStore FleetStore(size_t objects, uint64_t seed) {
  TrajectoryStore store;
  for (size_t i = 0; i < objects; ++i) {
    STCOMP_CHECK_OK(store.Insert("veh-" + std::to_string(i),
                                 testutil::RandomWalk(120, seed + i)));
  }
  return store;
}

std::vector<SpatioTemporalIndex::Posting> BruteForceCandidates(
    const SpatioTemporalIndex& index, const BoundingBox& box, double t0,
    double t1) {
  std::vector<SpatioTemporalIndex::Posting> expected;
  for (uint32_t object = 0; object < index.objects().size(); ++object) {
    const auto& blocks = index.objects()[object].blocks;
    for (uint32_t block = 0; block < blocks.size(); ++block) {
      if (blocks[block].OverlapsTime(t0, t1) &&
          blocks[block].bounds.Intersects(box)) {
        expected.push_back({object, block});
      }
    }
  }
  return expected;
}

TEST(StIndexTest, BuildCoversEveryBlock) {
  const TrajectoryStore store = FleetStore(6, 100);
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  ASSERT_EQ(index.objects().size(), 6u);
  size_t blocks = 0;
  for (const auto& object : index.objects()) {
    EXPECT_EQ(object.num_points, 120u);
    blocks += object.blocks.size();
  }
  EXPECT_EQ(blocks, 12u);  // 120 points => 2 blocks of 64/56 per object.
  // An all-covering query returns every block exactly once.
  const BoundingBox everything{{-1e9, -1e9}, {1e9, 1e9}};
  EXPECT_EQ(index.CandidateBlocks(everything, -1e18, 1e18).size(), blocks);
}

// The grid is a narrowing device, never a filter: candidates must equal a
// brute-force scan of every summary, for any box.
TEST(StIndexTest, CandidatesMatchSummaryScan) {
  const TrajectoryStore store = FleetStore(8, 500);
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  Rng rng(77);
  for (int q = 0; q < 50; ++q) {
    const Vec2 corner{rng.NextUniform(-2000.0, 2000.0),
                      rng.NextUniform(-2000.0, 2000.0)};
    const double edge = rng.NextUniform(10.0, 3000.0);
    const BoundingBox box{corner, corner + Vec2{edge, edge}};
    const double t0 = rng.NextUniform(0.0, 600.0);
    const double t1 = t0 + rng.NextUniform(0.0, 600.0);
    EXPECT_EQ(index.CandidateBlocks(box, t0, t1),
              BruteForceCandidates(index, box, t0, t1));
  }
}

TEST(StIndexTest, SerializeRoundTrips) {
  const TrajectoryStore store = FleetStore(5, 900);
  const SpatioTemporalIndex index =
      SpatioTemporalIndex::BuildFromStore(store, 125.0);
  const std::string image = index.SerializeToString();
  Result<SpatioTemporalIndex> loaded =
      SpatioTemporalIndex::LoadFromBuffer(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->cell_size_m(), 125.0);
  EXPECT_EQ(loaded->posting_count(), index.posting_count());
  ASSERT_EQ(loaded->objects().size(), index.objects().size());
  for (size_t i = 0; i < index.objects().size(); ++i) {
    EXPECT_EQ(loaded->objects()[i].id, index.objects()[i].id);
    EXPECT_EQ(loaded->objects()[i].num_points, index.objects()[i].num_points);
    EXPECT_EQ(loaded->objects()[i].payload_crc,
              index.objects()[i].payload_crc);
  }
  EXPECT_TRUE(loaded->Matches(store));
  // Same candidates from the rebuilt grid.
  const BoundingBox box{{-500.0, -500.0}, {1500.0, 1500.0}};
  EXPECT_EQ(loaded->CandidateBlocks(box, 0.0, 400.0),
            index.CandidateBlocks(box, 0.0, 400.0));
  // Deterministic bytes for a given logical content.
  EXPECT_EQ(loaded->SerializeToString(), image);
}

TEST(StIndexTest, EmptyIndexRoundTrips) {
  const TrajectoryStore store;
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  Result<SpatioTemporalIndex> loaded =
      SpatioTemporalIndex::LoadFromBuffer(index.SerializeToString());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->objects().empty());
  EXPECT_EQ(loaded->posting_count(), 0u);
  EXPECT_TRUE(loaded->Matches(store));
}

// A stale index must be detected even when object ids and point counts
// all still agree — the payload CRC is what catches a same-shape rewrite.
TEST(StIndexTest, MatchesDetectsStaleness) {
  TrajectoryStore store = FleetStore(3, 40);
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  ASSERT_TRUE(index.Matches(store));

  // New object.
  ASSERT_TRUE(store.Insert("veh-9", testutil::RandomWalk(30, 1)).ok());
  EXPECT_FALSE(index.Matches(store));
  ASSERT_TRUE(store.Remove("veh-9").ok());
  EXPECT_TRUE(index.Matches(store));

  // Appended fix (count changes).
  ASSERT_TRUE(store.Append("veh-0", {1e7, 0.0, 0.0}).ok());
  EXPECT_FALSE(index.Matches(store));

  // Same id, same point count, different data (CRC changes).
  TrajectoryStore rewritten;
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(rewritten
                    .Insert("veh-" + std::to_string(i),
                            testutil::RandomWalk(120, 4000 + i))
                    .ok());
  }
  EXPECT_FALSE(index.Matches(rewritten));

  // Removed object.
  TrajectoryStore smaller = FleetStore(2, 40);
  EXPECT_FALSE(index.Matches(smaller));
}

// A block whose bbox would fan out to more than kMaxCellsPerBlock cells
// lands on the always-considered overflow list; candidates must still be
// exact.
TEST(StIndexTest, OversizeBlocksStayExact) {
  TrajectoryStore store;
  // Two fixes 100 km apart inside one block: at 1 m cells that bbox spans
  // ~1e10 cells, far past the fan-out cap.
  ASSERT_TRUE(store.Insert("wide", testutil::Traj({{0.0, 0.0, 0.0},
                                                   {10.0, 100000.0, 100000.0}}))
                  .ok());
  ASSERT_TRUE(store.Insert("near", testutil::RandomWalk(40, 8)).ok());
  const SpatioTemporalIndex index =
      SpatioTemporalIndex::BuildFromStore(store, 1.0);
  Rng rng(5);
  for (int q = 0; q < 20; ++q) {
    const Vec2 corner{rng.NextUniform(-1000.0, 100000.0),
                      rng.NextUniform(-1000.0, 100000.0)};
    const BoundingBox box{corner, corner + Vec2{500.0, 500.0}};
    EXPECT_EQ(index.CandidateBlocks(box, -1e18, 1e18),
              BruteForceCandidates(index, box, -1e18, 1e18));
  }
}

// Corruption hardening: CRC32 detects every single-bit error, so flipping
// any one bit of the image must yield kDataLoss.
TEST(StIndexTest, EverySingleBitFlipIsDataLoss) {
  const TrajectoryStore store = FleetStore(2, 60);
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  const std::string image = index.SerializeToString();
  ASSERT_TRUE(SpatioTemporalIndex::LoadFromBuffer(image).ok());
  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      Result<SpatioTemporalIndex> loaded =
          SpatioTemporalIndex::LoadFromBuffer(mutated);
      ASSERT_FALSE(loaded.ok())
          << "bit " << bit << " of byte " << byte << " accepted";
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
    }
  }
}

// A future format version must be refused even with a valid CRC.
TEST(StIndexTest, RejectsUnknownVersion) {
  const TrajectoryStore store = FleetStore(1, 2);
  std::string image =
      SpatioTemporalIndex::BuildFromStore(store).SerializeToString();
  ASSERT_GT(image.size(), 9u);
  image[4] = 2;  // version byte follows the 4-byte magic
  // Re-stamp the trailing CRC so only the version differs.
  const uint32_t crc = Crc32(std::string_view(image).substr(0, image.size() - 4));
  for (int i = 0; i < 4; ++i) {
    image[image.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  Result<SpatioTemporalIndex> loaded =
      SpatioTemporalIndex::LoadFromBuffer(image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(StIndexTest, RejectsTruncationAndTrailingBytes) {
  const TrajectoryStore store = FleetStore(2, 3);
  const std::string image =
      SpatioTemporalIndex::BuildFromStore(store).SerializeToString();
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{8}, image.size() - 1}) {
    EXPECT_FALSE(
        SpatioTemporalIndex::LoadFromBuffer(image.substr(0, keep)).ok())
        << "accepted a " << keep << "-byte prefix";
  }
  EXPECT_FALSE(SpatioTemporalIndex::LoadFromBuffer(image + "x").ok());
}

}  // namespace
}  // namespace stcomp
