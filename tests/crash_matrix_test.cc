// Crash–recover–verify matrix (DESIGN.md §13): a deterministic SegmentStore
// workload is killed at EVERY durable-write boundary, under every crash
// fate (clean kill, short write, torn write), and recovery must come back
// to a bit-identical prefix of the reference run — the state after the
// last acknowledged commit, or one batch later when the crash hit after
// the commit marker already reached the file. Nothing else is acceptable:
// recovery loses at most the last uncommitted batch.

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/partitioned_store.h"
#include "stcomp/store/query.h"
#include "stcomp/store/segment_store.h"
#include "stcomp/store/st_index.h"
#include "stcomp/testing/crash_plan.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testing::CrashFate;
using testing::CrashFateToString;
using testing::CrashPlan;
using testing::CrashPoint;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "crash_matrix_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Post-recovery query discipline (DESIGN.md §17): whatever the crash did
// to index.stidx, recovery must end with a usable index (loaded when the
// persisted one still matches, rebuilt otherwise — never neither), and
// index-accelerated answers must equal the brute-force oracle bit for bit
// on the recovered contents.
void ExpectQueryableAfterRecovery(SegmentStore* store) {
  const RecoveryReport& report = store->last_recovery();
  EXPECT_TRUE(report.index_loaded || report.index_rebuilt)
      << report.Describe();
  EXPECT_FALSE(report.index_loaded && report.index_rebuilt)
      << report.Describe();
  EXPECT_TRUE(store->Index().Matches(store->store()));
  QueryRequest request;
  request.type = QueryType::kRange;
  request.box = {{-1e7, -1e7}, {1e7, 1e7}};
  const Result<QueryAnswer> engine = store->Query(request);
  const Result<QueryAnswer> oracle = BruteForceQuery(store->store(), request);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(engine->hits.size(), oracle->hits.size());
  for (size_t i = 0; i < engine->hits.size(); ++i) {
    EXPECT_EQ(engine->hits[i].id, oracle->hits[i].id);
    EXPECT_EQ(engine->hits[i].first_hit_t, oracle->hits[i].first_hit_t);
  }
}

SegmentStore::Options MatrixOptions(WriteFaultHook hook) {
  SegmentStore::Options options;
  options.codec = Codec::kRaw;  // Bit-exact image comparison.
  options.write_hook = std::move(hook);
  return options;
}

Trajectory WalkTrajectory() {
  Trajectory trajectory =
      testutil::Traj({{0.5, -1.0, -1.0}, {1.5, -2.0, -2.0}, {2.5, -3.0, 1.0}});
  trajectory.set_name("walk");
  return trajectory;
}

// What the workload left behind: one store image per acknowledged
// durability point (Commit or Checkpoint that returned OK), and the first
// error that stopped it (OK when it ran to completion).
struct WorkloadTrace {
  std::vector<std::string> images;
  Status error;
};

// The reference workload: batched appends on two objects, a whole-
// trajectory insert, a checkpoint mid-way, and a remove — every mutation
// kind crosses every durability mechanism. Stops at the first failure
// (the injected crash); deterministic in its ops, so every crashed run is
// a prefix of the uncrashed one.
WorkloadTrace RunWorkload(SegmentStore* store) {
  WorkloadTrace trace;
  const auto snapshot = [&]() -> bool {
    const Result<std::string> image = store->store().SerializeToString();
    if (!image.ok()) {
      trace.error = image.status();
      return false;
    }
    trace.images.push_back(*image);
    return true;
  };
  const auto run = [&](const Status& status) {
    if (!status.ok()) {
      trace.error = status;
      return false;
    }
    return true;
  };

  int tick = 0;
  const auto append_batch = [&]() -> bool {
    for (int i = 0; i < 2; ++i) {
      ++tick;
      if (!run(store->Append(
              "bus-1", TimedPoint(1.0 * tick, 2.0 * tick, -1.0 * tick))) ||
          !run(store->Append(
              "bus-2", TimedPoint(1.0 * tick, -3.0 * tick, 0.5 * tick)))) {
        return false;
      }
    }
    return run(store->Commit()) && snapshot();
  };

  if (!append_batch()) return trace;
  if (!append_batch()) return trace;
  if (!run(store->Insert("walk", WalkTrajectory())) || !run(store->Commit()) ||
      !snapshot()) {
    return trace;
  }
  if (!run(store->Checkpoint()) || !snapshot()) return trace;
  if (!append_batch()) return trace;
  if (!run(store->Remove("walk")) || !run(store->Commit()) || !snapshot()) {
    return trace;
  }
  if (!append_batch()) return trace;
  return trace;
}

std::vector<uint64_t> MatrixSeeds() {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("STCOMP_CRASH_MATRIX_SEEDS")) {
    std::string list(env);
    size_t start = 0;
    while (start < list.size()) {
      const size_t comma = list.find(',', start);
      const std::string token =
          list.substr(start, comma == std::string::npos ? comma : comma - start);
      if (!token.empty()) {
        seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (seeds.empty()) {
    seeds.push_back(20260805);
  }
  return seeds;
}

TEST(CrashMatrixTest, EveryBoundaryEveryFateRecoversToACommitPoint) {
  for (const uint64_t seed : MatrixSeeds()) {
    // Reference run: a dry-run plan never fires, but counts how many
    // durable-write boundaries the workload crosses.
    CrashPlan reference_plan(seed);
    const std::string reference_dir = FreshDir("reference");
    WorkloadTrace reference;
    {
      SegmentStore store(MatrixOptions(reference_plan.Hook()));
      ASSERT_TRUE(store.Open(reference_dir).ok());
      reference = RunWorkload(&store);
      ASSERT_TRUE(reference.error.ok()) << reference.error;
    }
    const size_t boundaries = reference_plan.boundaries_seen();
    ASSERT_GT(boundaries, 0u);
    ASSERT_FALSE(reference_plan.fired());
    std::string empty_image;
    {
      const TrajectoryStore empty(Codec::kRaw);
      empty_image = empty.SerializeToString().value();
    }

    for (size_t boundary = 0; boundary < boundaries; ++boundary) {
      for (const CrashFate fate :
           {CrashFate::kKill, CrashFate::kShortWrite, CrashFate::kTornWrite}) {
        SCOPED_TRACE(testing::CrashFateToString(fate));
        SCOPED_TRACE("boundary " + std::to_string(boundary) + ", seed " +
                     std::to_string(seed));
        CrashPlan plan(seed ^ (boundary * 31 + static_cast<uint64_t>(fate)),
                       CrashPoint{boundary, fate});
        const std::string dir = FreshDir("run");
        WorkloadTrace crashed;
        {
          SegmentStore store(MatrixOptions(plan.Hook()));
          ASSERT_TRUE(store.Open(dir).ok());
          crashed = RunWorkload(&store);
        }
        ASSERT_TRUE(plan.fired()) << plan.Describe();
        ASSERT_EQ(crashed.error.code(), StatusCode::kUnavailable)
            << crashed.error;
        const size_t commits = crashed.images.size();

        // Recover with no hook: a fresh process on the same directory.
        SegmentStore recovered(MatrixOptions(nullptr));
        ASSERT_TRUE(recovered.Open(dir).ok());
        const Result<std::string> image =
            recovered.store().SerializeToString();
        ASSERT_TRUE(image.ok());

        // The recovered state must be exactly a commit point: the last
        // acknowledged one, or — when the crash landed after the commit
        // marker bytes reached the file (e.g. at the fsync) — the batch
        // that was in flight. Never anything in between, never older.
        std::vector<const std::string*> acceptable;
        acceptable.push_back(commits == 0 ? &empty_image
                                          : &reference.images[commits - 1]);
        if (commits < reference.images.size()) {
          acceptable.push_back(&reference.images[commits]);
        }
        bool matched = false;
        for (const std::string* candidate : acceptable) {
          matched |= (*image == *candidate);
        }
        EXPECT_TRUE(matched)
            << plan.Describe() << "\nacked commits: " << commits
            << "\nrecovery: " << recovered.last_recovery().Describe();
        ExpectQueryableAfterRecovery(&recovered);
      }
    }
  }
}

// Index-persistence boundaries specifically: a checkpointed store whose
// index.stidx is deleted or corrupted out from under it must recover by
// rebuilding (never by trusting the bad file), and a matching index must
// be adopted as-is — with identical query answers either way.
TEST(CrashMatrixTest, IndexLossOrCorruptionRebuildsOnRecovery) {
  const std::string dir = FreshDir("index_fate");
  {
    SegmentStore store(MatrixOptions(nullptr));
    ASSERT_TRUE(store.Open(dir).ok());
    ASSERT_TRUE(store.Insert("walk", WalkTrajectory()).ok());
    for (int i = 1; i <= 150; ++i) {
      ASSERT_TRUE(
          store.Append("bus-1", TimedPoint(1.0 * i, 2.0 * i, -1.0 * i)).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  const std::string index_path = dir + "/index.stidx";
  ASSERT_TRUE(std::filesystem::exists(index_path));

  // Clean reopen: the persisted index matches and is adopted.
  {
    SegmentStore store(MatrixOptions(nullptr));
    ASSERT_TRUE(store.Open(dir).ok());
    EXPECT_TRUE(store.last_recovery().index_loaded)
        << store.last_recovery().Describe();
    ExpectQueryableAfterRecovery(&store);
  }

  // Deleted index (crash between segment write and index write of the
  // very first checkpoint looks like this): rebuild.
  ASSERT_TRUE(std::filesystem::remove(index_path));
  {
    SegmentStore store(MatrixOptions(nullptr));
    ASSERT_TRUE(store.Open(dir).ok());
    EXPECT_TRUE(store.last_recovery().index_rebuilt)
        << store.last_recovery().Describe();
    ExpectQueryableAfterRecovery(&store);
    ASSERT_TRUE(store.Checkpoint().ok());  // Re-persist for the next leg.
  }

  // Corrupted index file: rejected by its CRC, rebuilt.
  {
    std::string bytes = ReadFileToString(index_path).value();
    bytes[bytes.size() / 2] ^= 0x10;
    ASSERT_TRUE(AtomicWriteFile(index_path, bytes).ok());
  }
  {
    SegmentStore store(MatrixOptions(nullptr));
    ASSERT_TRUE(store.Open(dir).ok());
    EXPECT_TRUE(store.last_recovery().index_rebuilt)
        << store.last_recovery().Describe();
    ExpectQueryableAfterRecovery(&store);
    ASSERT_TRUE(store.Checkpoint().ok());
  }

  // Stale index: valid bytes describing older contents (mutations landed
  // in the WAL after the checkpoint). Matches() must veto it.
  {
    SegmentStore store(MatrixOptions(nullptr));
    ASSERT_TRUE(store.Open(dir).ok());
    ASSERT_TRUE(
        store.Append("bus-1", TimedPoint(1000.0, 5.0, 5.0)).ok());
    ASSERT_TRUE(store.Commit().ok());  // WAL only; index.stidx now stale.
  }
  {
    SegmentStore store(MatrixOptions(nullptr));
    ASSERT_TRUE(store.Open(dir).ok());
    EXPECT_TRUE(store.last_recovery().index_rebuilt)
        << store.last_recovery().Describe();
    ExpectQueryableAfterRecovery(&store);
  }
}

// Sharded crash matrix (DESIGN.md §16): the same discipline applied to a
// PartitionedSegmentStore, with the fault hook wired into exactly ONE
// shard's durable writes while the others commit clean. After every
// boundary × fate, parallel recovery must land the crashed shard on a
// commit point (last acked, or the in-flight batch when the marker
// already hit the file) and every other shard bit-exactly on its own last
// acknowledged commit — shard independence is the whole point of the
// partitioned layout.

constexpr size_t kShardedShards = 3;
constexpr size_t kFaultShard = 1;

PartitionedSegmentStore::Options ShardedMatrixOptions(WriteFaultHook hook) {
  PartitionedSegmentStore::Options options;
  options.num_shards = kShardedShards;
  options.shard_options.codec = Codec::kRaw;  // Bit-exact comparison.
  options.per_shard_hook = [hook = std::move(hook)](size_t shard) {
    return shard == kFaultShard ? hook : WriteFaultHook();
  };
  return options;
}

// Per-shard acked durability points: images[s] holds shard s's store
// image after each acknowledged Commit/Checkpoint, acked[s] their count.
struct ShardedTrace {
  std::vector<std::vector<std::string>> images;
  std::vector<size_t> acked;
  Status error;
};

// Deterministic multi-shard workload: every round appends one fix for
// each of 8 objects (spanning all shards by hash), then commits shard by
// shard — round 2 checkpoints instead, so segment-snapshot boundaries get
// crossed on every shard too. Stops at the first failure; per-shard ack
// counts make every crashed run a per-shard prefix of the reference.
ShardedTrace RunShardedWorkload(PartitionedSegmentStore* store) {
  constexpr int kRounds = 5;
  constexpr int kObjects = 8;
  ShardedTrace trace;
  trace.images.assign(store->num_shards(), {});
  trace.acked.assign(store->num_shards(), 0);
  for (int round = 0; round < kRounds; ++round) {
    for (int object = 0; object < kObjects; ++object) {
      const Status status = store->Append(
          "veh-" + std::to_string(object),
          TimedPoint(round + 1.0, 2.0 * object + round, -1.0 * round));
      if (!status.ok()) {
        trace.error = status;
        return trace;
      }
    }
    for (size_t shard = 0; shard < store->num_shards(); ++shard) {
      const Status status = round == 2 ? store->shard(shard).Checkpoint()
                                       : store->shard(shard).Commit();
      if (!status.ok()) {
        trace.error = status;
        return trace;
      }
      const Result<std::string> image =
          store->shard(shard).store().SerializeToString();
      if (!image.ok()) {
        trace.error = image.status();
        return trace;
      }
      ++trace.acked[shard];
      trace.images[shard].push_back(*image);
    }
  }
  return trace;
}

TEST(CrashMatrixTest, ShardedOneShardCrashLeavesOthersBitExact) {
  std::string empty_image;
  {
    const TrajectoryStore empty(Codec::kRaw);
    empty_image = empty.SerializeToString().value();
  }
  for (const uint64_t seed : MatrixSeeds()) {
    // Dry run: counts the fault shard's durable-write boundaries.
    CrashPlan reference_plan(seed);
    ShardedTrace reference;
    {
      PartitionedSegmentStore store(
          ShardedMatrixOptions(reference_plan.Hook()));
      ASSERT_TRUE(store.Open(FreshDir("sharded_reference")).ok());
      reference = RunShardedWorkload(&store);
      ASSERT_TRUE(reference.error.ok()) << reference.error;
    }
    const size_t boundaries = reference_plan.boundaries_seen();
    ASSERT_GT(boundaries, 0u);
    ASSERT_FALSE(reference_plan.fired());

    for (size_t boundary = 0; boundary < boundaries; ++boundary) {
      for (const CrashFate fate :
           {CrashFate::kKill, CrashFate::kShortWrite, CrashFate::kTornWrite}) {
        SCOPED_TRACE(testing::CrashFateToString(fate));
        SCOPED_TRACE("boundary " + std::to_string(boundary) + ", seed " +
                     std::to_string(seed));
        CrashPlan plan(seed ^ (boundary * 131 + static_cast<uint64_t>(fate)),
                       CrashPoint{boundary, fate});
        const std::string dir = FreshDir("sharded_run");
        ShardedTrace crashed;
        {
          PartitionedSegmentStore store(ShardedMatrixOptions(plan.Hook()));
          ASSERT_TRUE(store.Open(dir).ok());
          crashed = RunShardedWorkload(&store);
        }
        ASSERT_TRUE(plan.fired()) << plan.Describe();
        ASSERT_EQ(crashed.error.code(), StatusCode::kUnavailable)
            << crashed.error;

        // Fresh process: adopt the layout, recover all shards in
        // parallel, no fault hooks.
        PartitionedSegmentStore::Options recover_options;
        recover_options.shard_options.codec = Codec::kRaw;
        PartitionedSegmentStore recovered(recover_options);
        ASSERT_TRUE(recovered.Open(dir).ok());
        ASSERT_EQ(recovered.num_shards(), kShardedShards);

        for (size_t shard = 0; shard < kShardedShards; ++shard) {
          const Result<std::string> image =
              recovered.shard(shard).store().SerializeToString();
          ASSERT_TRUE(image.ok());
          const size_t acked = crashed.acked[shard];
          const std::string* last_acked =
              acked == 0 ? &empty_image : &reference.images[shard][acked - 1];
          if (shard != kFaultShard) {
            // Untouched shards: staged-but-uncommitted appends from the
            // aborted round vanish; everything acked survives, exactly.
            EXPECT_EQ(*image, *last_acked)
                << "shard " << shard << "\n"
                << plan.Describe() << "\nrecovery: "
                << recovered.shard(shard).last_recovery().Describe();
            continue;
          }
          std::vector<const std::string*> acceptable{last_acked};
          if (acked < reference.images[shard].size()) {
            acceptable.push_back(&reference.images[shard][acked]);
          }
          bool matched = false;
          for (const std::string* candidate : acceptable) {
            matched |= (*image == *candidate);
          }
          EXPECT_TRUE(matched)
              << "fault shard, acked " << acked << "\n"
              << plan.Describe() << "\nrecovery: "
              << recovered.shard(shard).last_recovery().Describe();
        }
      }
    }
  }
}

// The end-to-end salvage criterion: corrupt one frame of a committed WAL
// on disk, reopen, and exactly that one record is lost.
TEST(CrashMatrixTest, SingleWalCorruptionCostsOneRecord) {
  const std::string dir = FreshDir("salvage");
  constexpr int kRecords = 10;
  {
    SegmentStore store(MatrixOptions(nullptr));
    ASSERT_TRUE(store.Open(dir).ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(store
                      .Append("obj-" + std::to_string(i),
                              TimedPoint(1.0, 1.0 * i, 2.0 * i))
                      .ok());
    }
    ASSERT_TRUE(store.Commit().ok());
  }
  // Flip one byte around the middle of the log.
  const std::string wal_path = dir + "/wal.stwal";
  {
    std::string bytes = ReadFileToString(wal_path).value();
    bytes[bytes.size() / 2] ^= 0x08;
    ASSERT_TRUE(AtomicWriteFile(wal_path, bytes).ok());
  }
  SegmentStore recovered(MatrixOptions(nullptr));
  ASSERT_TRUE(recovered.Open(dir).ok());
  const RecoveryReport& report = recovered.last_recovery();
  EXPECT_EQ(recovered.store().object_count(),
            static_cast<size_t>(kRecords - 1))
      << report.Describe();
  EXPECT_EQ(report.wal_records_replayed, static_cast<size_t>(kRecords - 1));
  EXPECT_GE(report.wal_frames_salvaged, 1u);
}

}  // namespace
}  // namespace stcomp
