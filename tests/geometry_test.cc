#include "stcomp/geom/geometry.h"

#include <cmath>

#include <gtest/gtest.h>

namespace stcomp {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -0.5));
}

TEST(Vec2Test, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.Dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(Vec2(1.0, 0.0).Cross({0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Vec2(0.0, 1.0).Cross({1.0, 0.0}), -1.0);
}

TEST(GeometryTest, DistanceSymmetric) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({3, 4}, {0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {2, 2}), 2.0);
}

TEST(PointToLineTest, PerpendicularOffset) {
  // Horizontal line y = 0; point at height 7.
  EXPECT_DOUBLE_EQ(PointToLineDistance({5, 7}, {0, 0}, {10, 0}), 7.0);
  // Distance to the infinite line ignores being beyond the segment ends.
  EXPECT_DOUBLE_EQ(PointToLineDistance({-100, 7}, {0, 0}, {10, 0}), 7.0);
}

TEST(PointToLineTest, DegenerateLineFallsBackToPointDistance) {
  EXPECT_DOUBLE_EQ(PointToLineDistance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(PointToSegmentTest, InteriorProjection) {
  EXPECT_DOUBLE_EQ(PointToSegmentDistance({5, 7}, {0, 0}, {10, 0}), 7.0);
}

TEST(PointToSegmentTest, ClampsToEndpoints) {
  EXPECT_DOUBLE_EQ(PointToSegmentDistance({-3, 4}, {0, 0}, {10, 0}), 5.0);
  EXPECT_DOUBLE_EQ(PointToSegmentDistance({13, 4}, {0, 0}, {10, 0}), 5.0);
}

TEST(PointToSegmentTest, DegenerateSegment) {
  EXPECT_DOUBLE_EQ(PointToSegmentDistance({3, 4}, {1, 1}, {1, 1}),
                   Distance({3, 4}, {1, 1}));
}

TEST(ProjectOntoSegmentTest, Parameters) {
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({5, 3}, {0, 0}, {10, 0}), 0.5);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({-5, 3}, {0, 0}, {10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({15, 3}, {0, 0}, {10, 0}), 1.0);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({5, 3}, {2, 2}, {2, 2}), 0.0);
}

TEST(AngleTest, InteriorAngleStraightAndRightAndReversal) {
  EXPECT_NEAR(InteriorAngle({0, 0}, {1, 0}, {2, 0}), kPi, 1e-12);
  EXPECT_NEAR(InteriorAngle({0, 0}, {1, 0}, {1, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(InteriorAngle({0, 0}, {1, 0}, {0, 0}), 0.0, 1e-12);
}

TEST(AngleTest, DegenerateArmTreatedAsStraight) {
  EXPECT_NEAR(InteriorAngle({1, 0}, {1, 0}, {2, 0}), kPi, 1e-12);
}

TEST(AngleTest, HeadingChangeComplements) {
  EXPECT_NEAR(HeadingChange({0, 0}, {1, 0}, {2, 0}), 0.0, 1e-12);
  EXPECT_NEAR(HeadingChange({0, 0}, {1, 0}, {1, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(HeadingChange({0, 0}, {1, 0}, {0, 0}), kPi, 1e-12);
}

TEST(AngleTest, Heading) {
  EXPECT_NEAR(Heading({0, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(Heading({0, 0}, {0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(Heading({0, 0}, {-1, 0}), kPi, 1e-12);
  EXPECT_DOUBLE_EQ(Heading({1, 1}, {1, 1}), 0.0);
}

TEST(LerpTest, Endpoints) {
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.0), Vec2(0, 0));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 1.0), Vec2(10, 20));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.25), Vec2(2.5, 5.0));
}

}  // namespace
}  // namespace stcomp
