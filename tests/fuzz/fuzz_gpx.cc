// Fuzzes the GPX track reader (and, transitively, the XML scanner, ISO
// 8601 parsing and the local ENU projection) on arbitrary bytes.

#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/gps/gpx.h"

namespace {

int FuzzGpx(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)stcomp::ParseGpx(text);
  (void)stcomp::ParseIso8601(text);
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(gpx, FuzzGpx)
