// Seed-corpus replay driver: links every registered fuzz entrypoint into
// one binary and drives each over its checked-in corpus directory, then
// over `--mutants` deterministic FaultPlan corruptions of every corpus
// file. This is the `fuzz_corpus_replay` ctest target, so the same
// entrypoints that libFuzzer explores under -DSTCOMP_FUZZ=ON also run on
// hostile bytes in plain CI and under ASan/UBSan — reproducibly, from one
// seed.
//
// Usage: fuzz_replay --corpus=<dir> [--mutants=N] [--seed=S]
// Fails (exit 1) if any registered target has no corpus file: every
// entrypoint must ship seeds.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_registry.h"
#include "stcomp/testing/fault_plan.h"

namespace {

namespace fs = std::filesystem;

// FNV-1a fold so per-file mutant streams are unrelated across files and
// targets but stable across runs and platforms.
uint64_t MixSeed(uint64_t seed, const std::string& target,
                 const std::string& file, uint64_t k) {
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (char c : target + "/" + file) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  return h ^ (k * 0x9e3779b97f4a7c15ull);
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void RunInput(stcomp::fuzz::FuzzEntry entry, const std::string& bytes) {
  entry(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_root;
  uint64_t mutants = 32;
  uint64_t seed = 20260805;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--corpus=", 0) == 0) {
      corpus_root = arg.substr(9);
    } else if (arg.rfind("--mutants=", 0) == 0) {
      mutants = std::stoull(arg.substr(10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (corpus_root.empty()) {
    std::fprintf(stderr,
                 "usage: fuzz_replay --corpus=<dir> [--mutants=N] [--seed=S]\n");
    return 1;
  }
  const auto& targets = stcomp::fuzz::AllTargets();
  if (targets.empty()) {
    std::fprintf(stderr, "no fuzz targets registered\n");
    return 1;
  }
  bool ok = true;
  size_t total_inputs = 0;
  for (const stcomp::fuzz::FuzzTarget& target : targets) {
    const fs::path dir = fs::path(corpus_root) / target.name;
    std::vector<fs::path> files;
    if (fs::is_directory(dir)) {
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
    }
    // Deterministic order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr, "FAIL %s: no corpus files under %s\n", target.name,
                   dir.string().c_str());
      ok = false;
      continue;
    }
    size_t inputs = 0;
    for (const fs::path& file : files) {
      const std::string bytes = ReadFileBytes(file);
      RunInput(target.entry, bytes);
      ++inputs;
      for (uint64_t k = 0; k < mutants; ++k) {
        stcomp::testing::FaultPlan plan(
            MixSeed(seed, target.name, file.filename().string(), k));
        RunInput(target.entry, plan.CorruptBytes(bytes));
        ++inputs;
      }
    }
    std::printf("ok   %-14s %3zu corpus files, %5zu inputs\n", target.name,
                files.size(), inputs);
    total_inputs += inputs;
  }
  if (!ok) {
    return 1;
  }
  std::printf("replayed %zu targets, %zu inputs, seed=%llu\n", targets.size(),
              total_inputs, static_cast<unsigned long long>(seed));
  return 0;
}
