// Fuzzes the Geolife .plt trace reader on arbitrary bytes: header
// skipping, per-line field parsing, fractional-day timestamp conversion.

#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/gps/plt.h"

namespace {

int FuzzPlt(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)stcomp::ParsePlt(text);
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(plt, FuzzPlt)
