// Fuzzes the WAL reader (DESIGN.md §13): an arbitrary byte image fed to
// the salvaging scanner must never crash, and every record it returns must
// be internally consistent. The strict single-frame decoder is exercised
// on the same bytes — it may fail (kDataLoss) but must not misbehave.

#include <cstdlib>
#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/store/wal.h"

namespace {

int FuzzWal(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view image(reinterpret_cast<const char*>(data), size);

  // The salvaging scan never fails; it only shrinks its output.
  stcomp::WalScanStats stats;
  const std::vector<stcomp::WalRecord> records =
      stcomp::ScanWal(image, &stats);
  if (stats.records_replayed != records.size()) {
    std::abort();  // The stats must agree with the returned batch.
  }
  for (const stcomp::WalRecord& record : records) {
    // A commit marker never escapes the scanner, and every surviving
    // record must round-trip through the frame codec.
    if (record.type == stcomp::WalRecordType::kCommit) {
      std::abort();
    }
    const std::string frame = stcomp::EncodeWalFrame(record);
    std::string_view cursor = frame;
    if (!stcomp::DecodeWalFrame(&cursor).ok() || !cursor.empty()) {
      std::abort();
    }
  }

  // The strict decoder on hostile bytes: clean Status, never a crash.
  std::string_view cursor = image;
  while (!cursor.empty()) {
    const size_t before = cursor.size();
    if (!stcomp::DecodeWalFrame(&cursor).ok()) {
      break;
    }
    if (cursor.size() >= before) {
      std::abort();  // Forward progress on success.
    }
  }
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(wal, FuzzWal)
