// Fuzzes the NMEA RMC sentence and multi-line document parsers on
// arbitrary bytes: checksum handling, field splitting, angle/date parsing.

#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/gps/nmea.h"

namespace {

int FuzzNmea(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)stcomp::ParseRmcSentence(text);
  stcomp::LatLon origin;
  (void)stcomp::ParseNmea(text, &origin);
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(nmea, FuzzNmea)
