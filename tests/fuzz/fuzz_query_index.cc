// Fuzzes the spatio-temporal index reader: an arbitrary byte image fed to
// SpatioTemporalIndex::LoadFromBuffer (the index.stidx format) must yield
// a clean Status — kDataLoss on corruption — and a queryable index on
// success. The single-bit-flip sweep over the seed corpus (replay_main's
// mutant pass) is the ISSUE 9 corruption gate.

#include <cstdlib>
#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/store/st_index.h"

namespace {

int FuzzQueryIndex(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view image(reinterpret_cast<const char*>(data), size);
  const stcomp::Result<stcomp::SpatioTemporalIndex> index =
      stcomp::SpatioTemporalIndex::LoadFromBuffer(image);
  if (!index.ok()) {
    if (index.status().code() != stcomp::StatusCode::kDataLoss) {
      std::abort();  // The only allowed rejection is kDataLoss.
    }
    return 0;
  }
  // An index parsed from hostile bytes must still answer candidate scans
  // in bounded time and round-trip deterministically.
  const stcomp::BoundingBox everything{{-1e12, -1e12}, {1e12, 1e12}};
  (void)index->CandidateBlocks(everything, -1e18, 1e18);
  const stcomp::BoundingBox sliver{{0.0, 0.0}, {1.0, 1.0}};
  (void)index->CandidateBlocks(sliver, 0.0, 1.0);
  const std::string reserialized = index->SerializeToString();
  const stcomp::Result<stcomp::SpatioTemporalIndex> again =
      stcomp::SpatioTemporalIndex::LoadFromBuffer(reserialized);
  if (!again.ok()) {
    std::abort();  // Accepted images must re-serialize loadably.
  }
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(query_index, FuzzQueryIndex)
