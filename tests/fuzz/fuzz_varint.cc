// Fuzzes the varint/zigzag/double primitives with round-trip properties:
// every value decoded from arbitrary bytes must re-encode canonically and
// decode back to itself.

#include <cstdlib>
#include <string>
#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/store/varint.h"

namespace {

int FuzzVarint(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  std::string_view cursor = input;
  while (true) {
    const stcomp::Result<uint64_t> value = stcomp::GetVarint(&cursor);
    if (!value.ok()) {
      break;
    }
    std::string reencoded;
    stcomp::PutVarint(*value, &reencoded);
    std::string_view check = reencoded;
    const stcomp::Result<uint64_t> again = stcomp::GetVarint(&check);
    if (!again.ok() || *again != *value || !check.empty()) {
      std::abort();  // Round-trip broken: a real bug, make the fuzzer stop.
    }
  }
  cursor = input;
  while (true) {
    const stcomp::Result<int64_t> value = stcomp::GetSignedVarint(&cursor);
    if (!value.ok()) {
      break;
    }
    if (stcomp::ZigZagDecode(stcomp::ZigZagEncode(*value)) != *value) {
      std::abort();
    }
    std::string reencoded;
    stcomp::PutSignedVarint(*value, &reencoded);
    std::string_view check = reencoded;
    const stcomp::Result<int64_t> again = stcomp::GetSignedVarint(&check);
    if (!again.ok() || *again != *value || !check.empty()) {
      std::abort();
    }
  }
  cursor = input;
  while (stcomp::GetDouble(&cursor).ok()) {
  }
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(varint, FuzzVarint)
