#include "fuzz/fuzz_registry.h"

namespace stcomp::fuzz {

namespace {

std::vector<FuzzTarget>* MutableTargets() {
  static std::vector<FuzzTarget>* const kTargets =
      new std::vector<FuzzTarget>();
  return kTargets;
}

}  // namespace

const std::vector<FuzzTarget>& AllTargets() { return *MutableTargets(); }

int RegisterFuzzTarget(const char* name, FuzzEntry entry) {
  MutableTargets()->push_back({name, entry});
  return 0;
}

}  // namespace stcomp::fuzz
