// Fuzzes the trajectory store reader: an arbitrary byte image fed to
// LoadFromBuffer (the SaveToFile format) must yield a clean Status —
// kDataLoss on corruption — and a usable store on success.

#include <cstdlib>
#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/store/trajectory_store.h"

namespace {

int FuzzStore(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view image(reinterpret_cast<const char*>(data), size);
  stcomp::TrajectoryStore store;
  const stcomp::Status status = store.LoadFromBuffer(image);
  if (status.ok()) {
    // A store parsed from hostile bytes must still answer queries.
    for (const std::string& id : store.ObjectIds()) {
      if (!store.Get(id).ok()) {
        std::abort();  // Loaded entries must decode.
      }
    }
    (void)store.StorageBytes();
  }
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(store, FuzzStore)
