// Fuzzes the dependency-free XML scanner directly (GPX rides on it):
// tags, attributes, entities, CDATA, comments, nesting depth limits.

#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/gps/xml_scanner.h"

namespace {

int FuzzXml(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)stcomp::ParseXml(text);
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(xml, FuzzXml)
