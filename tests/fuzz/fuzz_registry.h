// Structured fuzz entrypoints (DESIGN.md §12). Each fuzz_<name>.cc defines
// one `LLVMFuzzerTestOneInput`-shaped function and declares it with
// STCOMP_FUZZ_TARGET. The same translation unit serves two builds:
//
//  - replay build (default): the macro registers the entrypoint in a
//    process-wide list; replay_main.cc links all entrypoints into one
//    binary and drives each over its checked-in seed corpus plus
//    deterministic FaultPlan mutants — the `fuzz_corpus_replay` ctest
//    target, which therefore also runs under ASan/UBSan via check.sh.
//
//  - libFuzzer build (-DSTCOMP_FUZZ=ON, Clang): each file compiles
//    standalone with STCOMP_FUZZ_STANDALONE defined, exporting the real
//    `LLVMFuzzerTestOneInput` symbol for coverage-guided fuzzing.
//
// Entrypoint contract: never crash/leak/hang on arbitrary bytes; return 0.

#ifndef STCOMP_TESTS_FUZZ_FUZZ_REGISTRY_H_
#define STCOMP_TESTS_FUZZ_FUZZ_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stcomp::fuzz {

using FuzzEntry = int (*)(const uint8_t* data, size_t size);

struct FuzzTarget {
  const char* name;  // Corpus directory name under tests/fuzz/corpus/.
  FuzzEntry entry;
};

// Registration order (= file link order); stable within one binary.
const std::vector<FuzzTarget>& AllTargets();

// Called by STCOMP_FUZZ_TARGET at static-init time; returns 0.
int RegisterFuzzTarget(const char* name, FuzzEntry entry);

}  // namespace stcomp::fuzz

#if defined(STCOMP_FUZZ_STANDALONE)
#define STCOMP_FUZZ_TARGET(target_name, entry_fn)                      \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data,           \
                                        size_t size) {                 \
    return entry_fn(data, size);                                       \
  }
#else
#define STCOMP_FUZZ_TARGET(target_name, entry_fn)                      \
  [[maybe_unused]] static const int stcomp_fuzz_registered_##target_name = \
      ::stcomp::fuzz::RegisterFuzzTarget(#target_name, entry_fn);
#endif

#endif  // STCOMP_TESTS_FUZZ_FUZZ_REGISTRY_H_
