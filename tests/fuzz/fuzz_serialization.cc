// Fuzzes the CRC-framed trajectory deserializer (and the point codecs
// under it) on arbitrary bytes, with a byte-level round-trip property on
// every frame that parses: serialize(parsed) must re-parse to a frame that
// serializes identically (NaN-safe, unlike point-wise comparison).

#include <cstdlib>
#include <string>
#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/store/serialization.h"

namespace {

int FuzzSerialization(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  std::string_view cursor = input;
  while (!cursor.empty()) {
    const size_t before = cursor.size();
    const stcomp::Result<stcomp::Trajectory> parsed =
        stcomp::DeserializeTrajectory(&cursor);
    if (!parsed.ok()) {
      break;
    }
    const stcomp::Result<std::string> frame =
        stcomp::SerializeTrajectory(*parsed, stcomp::Codec::kRaw);
    if (frame.ok()) {
      std::string_view reparse_cursor = *frame;
      const stcomp::Result<stcomp::Trajectory> reparsed =
          stcomp::DeserializeTrajectory(&reparse_cursor);
      if (!reparsed.ok()) {
        std::abort();  // Our own raw frame must always parse.
      }
      const stcomp::Result<std::string> frame_again =
          stcomp::SerializeTrajectory(*reparsed, stcomp::Codec::kRaw);
      if (!frame_again.ok() || *frame_again != *frame) {
        std::abort();  // Raw round-trip must be byte-identical.
      }
    }
    if (cursor.size() == before) {
      break;  // Defensive: a parser that consumes nothing would loop.
    }
  }
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(serialization, FuzzSerialization)
