// Fuzzes the STNI wire-protocol codec (DESIGN.md §18): arbitrary bytes
// through the incremental scan, the strict decoder, and the FrameReader
// must never crash, and every frame that survives the strict decode must
// re-encode byte-identically — the property the exactly-once resume
// story leans on (clients resend *encoded bytes*, servers compare
// decoded state).

#include <cstdlib>
#include <string>
#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/net/frame.h"

namespace {

int FuzzIngestFrame(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view image(reinterpret_cast<const char*>(data), size);

  // The incremental scan on hostile bytes: one of the three verdicts,
  // never a crash, and a kFrame verdict must be strictly decodable or
  // cleanly rejected (a scan only validates framing, not the CRC).
  size_t frame_size = 0;
  stcomp::Status scan_error;
  const stcomp::net::FrameScan scan = stcomp::net::ScanNetFrame(
      image, stcomp::net::kNetMaxPayloadBytes, &frame_size, &scan_error);
  if (scan == stcomp::net::FrameScan::kFrame) {
    if (frame_size == 0 || frame_size > image.size()) {
      std::abort();  // A complete frame must lie within the buffer.
    }
  }
  if (scan == stcomp::net::FrameScan::kError && scan_error.ok()) {
    std::abort();  // Errors always carry a reason.
  }

  // The strict decoder: clean Status or a frame that round-trips.
  std::string_view cursor = image;
  while (!cursor.empty()) {
    const size_t before = cursor.size();
    stcomp::Result<stcomp::net::NetFrame> decoded =
        stcomp::net::DecodeNetFrame(&cursor);
    if (!decoded.ok()) {
      break;
    }
    if (cursor.size() >= before) {
      std::abort();  // Forward progress on success.
    }
    // Round trip. Not byte-identity with the *input* (GetVarint accepts
    // overlong varints the canonical encoder never emits), but encode ∘
    // decode must be a fixed point on codec-produced bytes.
    const std::string reencoded = stcomp::net::EncodeNetFrame(*decoded);
    std::string_view again = reencoded;
    stcomp::Result<stcomp::net::NetFrame> redecoded =
        stcomp::net::DecodeNetFrame(&again);
    if (!redecoded.ok() || !again.empty() ||
        stcomp::net::EncodeNetFrame(*redecoded) != reencoded) {
      std::abort();
    }
  }

  // The FrameReader over the same bytes, fed in two torn halves: every
  // yielded frame is complete, and after the first error it stays
  // poisoned (no resync).
  stcomp::net::FrameReader reader;
  reader.Append(image.substr(0, size / 2));
  reader.Append(image.substr(size / 2));
  bool poisoned = false;
  while (true) {
    stcomp::net::NetFrame frame;
    stcomp::Status error;
    const stcomp::net::FrameScan verdict = reader.Next(&frame, &error);
    if (verdict == stcomp::net::FrameScan::kNeedMore) {
      if (poisoned) {
        std::abort();  // Poison is permanent; kNeedMore must not follow.
      }
      break;
    }
    if (verdict == stcomp::net::FrameScan::kError) {
      if (error.ok()) {
        std::abort();
      }
      if (poisoned) {
        break;  // Same error again, as promised; done.
      }
      poisoned = true;
      continue;  // One more turn to check the poison sticks.
    }
  }
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(ingest_frame, FuzzIngestFrame)
