// Fuzzes the CSV trajectory reader on arbitrary bytes: header/schema
// detection, numeric parsing, the t,lat,lon projection path.

#include <string_view>

#include "fuzz/fuzz_registry.h"
#include "stcomp/gps/csv.h"

namespace {

int FuzzCsv(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)stcomp::ParseCsvTrajectory(text);
  return 0;
}

}  // namespace

STCOMP_FUZZ_TARGET(csv, FuzzCsv)
