#include "stcomp/algo/registry.h"

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stcomp::algo {
namespace {

TEST(RegistryTest, ContainsThePaperAlgorithms) {
  const std::set<std::string> expected = {"ndp",    "nopw",  "bopw",
                                          "td-tr",  "opw-tr", "opw-sp",
                                          "td-sp"};
  std::set<std::string> names;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    names.insert(info.name);
  }
  for (const std::string& name : expected) {
    EXPECT_TRUE(names.contains(name)) << name;
  }
}

TEST(RegistryTest, NamesAreUniqueAndDescribed) {
  std::set<std::string> names;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_NE(info.run, nullptr);
  }
}

TEST(RegistryTest, FindByName) {
  const AlgorithmInfo* info = FindAlgorithm("td-tr").value();
  EXPECT_EQ(info->name, "td-tr");
  EXPECT_TRUE(info->spatiotemporal);
  EXPECT_FALSE(info->online);
  const AlgorithmInfo* opw = FindAlgorithm("opw-tr").value();
  EXPECT_TRUE(opw->online);
}

TEST(RegistryTest, UnknownNameListsAlternatives) {
  const auto result = FindAlgorithm("bogus");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("td-tr"), std::string::npos);
}

TEST(RegistryTest, EveryAlgorithmProducesValidOutput) {
  const Trajectory trajectory = testutil::RandomWalk(80, 42);
  AlgorithmParams params;
  params.epsilon_m = 30.0;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    const IndexList kept = info.run(trajectory, params);
    EXPECT_TRUE(IsValidIndexList(trajectory, kept)) << info.name;
    EXPECT_GE(kept.size(), 2u) << info.name;
  }
}

TEST(RegistryTest, EveryAlgorithmHandlesTinyInputs) {
  const Trajectory two = testutil::Traj({{0, 0, 0}, {1, 5, 5}});
  AlgorithmParams params;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    const IndexList kept = info.run(two, params);
    EXPECT_EQ(kept, (IndexList{0, 1})) << info.name;
  }
}

TEST(RegistryTest, SpatiotemporalFlagMatchesBehaviour) {
  // Spatially-invisible stop: only algorithms flagged spatiotemporal react
  // (uniform/temporal sampling excepted — they ignore geometry entirely).
  const Trajectory trajectory = testutil::LineWithStop(10, 10, 10);
  AlgorithmParams params;
  params.epsilon_m = 10.0;
  params.speed_threshold_mps = 5.0;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    if (info.name == "uniform" || info.name == "temporal" ||
        info.name == "radial") {
      // Pure-sampling baselines ignore the path geometry altogether.
      continue;
    }
    const IndexList kept = info.run(trajectory, params);
    if (info.spatiotemporal) {
      EXPECT_GT(kept.size(), 2u) << info.name;
    } else {
      EXPECT_EQ(kept.size(), 2u) << info.name;
    }
  }
}

}  // namespace
}  // namespace stcomp::algo
