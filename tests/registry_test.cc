#include "stcomp/algo/registry.h"

#include <limits>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stcomp::algo {
namespace {

TEST(RegistryTest, ContainsThePaperAlgorithms) {
  const std::set<std::string> expected = {"ndp",    "nopw",  "bopw",
                                          "td-tr",  "opw-tr", "opw-sp",
                                          "td-sp"};
  std::set<std::string> names;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    names.insert(info.name);
  }
  for (const std::string& name : expected) {
    EXPECT_TRUE(names.contains(name)) << name;
  }
}

TEST(RegistryTest, NamesAreUniqueAndDescribed) {
  std::set<std::string> names;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_NE(info.run, nullptr);
  }
}

TEST(RegistryTest, FindByName) {
  const AlgorithmInfo* info = FindAlgorithm("td-tr").value();
  EXPECT_EQ(info->name, "td-tr");
  EXPECT_TRUE(info->spatiotemporal);
  EXPECT_FALSE(info->online);
  const AlgorithmInfo* opw = FindAlgorithm("opw-tr").value();
  EXPECT_TRUE(opw->online);
}

TEST(RegistryTest, UnknownNameListsAlternatives) {
  const auto result = FindAlgorithm("bogus");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("td-tr"), std::string::npos);
}

TEST(RegistryTest, EveryAlgorithmProducesValidOutput) {
  const Trajectory trajectory = testutil::RandomWalk(80, 42);
  AlgorithmParams params;
  params.epsilon_m = 30.0;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    const IndexList kept = info.run(trajectory, params);
    EXPECT_TRUE(IsValidIndexList(trajectory, kept)) << info.name;
    EXPECT_GE(kept.size(), 2u) << info.name;
  }
}

TEST(RegistryTest, EveryAlgorithmHandlesTinyInputs) {
  const Trajectory two = testutil::Traj({{0, 0, 0}, {1, 5, 5}});
  AlgorithmParams params;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    const IndexList kept = info.run(two, params);
    EXPECT_EQ(kept, (IndexList{0, 1})) << info.name;
  }
}

TEST(ParamsValidateTest, DefaultsAreValid) {
  EXPECT_TRUE(AlgorithmParams{}.Validate().ok());
}

TEST(ParamsValidateTest, BoundaryValuesAreValid) {
  AlgorithmParams params;
  params.epsilon_m = 0.0;
  params.speed_threshold_mps = 0.0;
  params.keep_every = 1;
  params.interval_s = 1e-9;
  params.min_heading_change_rad = 0.0;
  params.max_window = 2;
  EXPECT_TRUE(params.Validate().ok());
}

TEST(ParamsValidateTest, RejectsEachOutOfDomainField) {
  const auto expect_invalid = [](const AlgorithmParams& params,
                                 const std::string& field) {
    const Status status = params.Validate();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << field;
    EXPECT_NE(status.message().find(field), std::string::npos)
        << status.ToString();
  };
  AlgorithmParams params;
  params.epsilon_m = -1.0;
  expect_invalid(params, "epsilon_m");
  params = {};
  params.speed_threshold_mps = -0.5;
  expect_invalid(params, "speed_threshold_mps");
  params = {};
  params.keep_every = 0;
  expect_invalid(params, "keep_every");
  params = {};
  params.interval_s = 0.0;
  expect_invalid(params, "interval_s");
  params = {};
  params.min_heading_change_rad = -0.1;
  expect_invalid(params, "min_heading_change_rad");
  params = {};
  params.min_heading_change_rad = 4.0;  // > pi
  expect_invalid(params, "min_heading_change_rad");
  params = {};
  params.max_window = 1;
  expect_invalid(params, "max_window");
}

TEST(ParamsValidateTest, RejectsNaNThresholds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  AlgorithmParams params;
  params.epsilon_m = nan;
  EXPECT_EQ(params.Validate().code(), StatusCode::kInvalidArgument);
  params = {};
  params.speed_threshold_mps = nan;
  EXPECT_EQ(params.Validate().code(), StatusCode::kInvalidArgument);
  params = {};
  params.interval_s = nan;
  EXPECT_EQ(params.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, ViewEntryPointsRegisteredForEveryAlgorithm) {
  Workspace workspace;
  IndexList kept;
  const Trajectory trajectory = testutil::RandomWalk(50, 77);
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    ASSERT_NE(info.run_view, nullptr) << info.name;
    info.run_view(trajectory, AlgorithmParams{}, workspace, kept);
    EXPECT_EQ(kept, info.run(trajectory, AlgorithmParams{})) << info.name;
  }
}

TEST(RegistryTest, SpatiotemporalFlagMatchesBehaviour) {
  // Spatially-invisible stop: only algorithms flagged spatiotemporal react
  // (uniform/temporal sampling excepted — they ignore geometry entirely).
  const Trajectory trajectory = testutil::LineWithStop(10, 10, 10);
  AlgorithmParams params;
  params.epsilon_m = 10.0;
  params.speed_threshold_mps = 5.0;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    if (info.name == "uniform" || info.name == "temporal" ||
        info.name == "radial") {
      // Pure-sampling baselines ignore the path geometry altogether.
      continue;
    }
    const IndexList kept = info.run(trajectory, params);
    if (info.spatiotemporal) {
      EXPECT_GT(kept.size(), 2u) << info.name;
    } else {
      EXPECT_EQ(kept.size(), 2u) << info.name;
    }
  }
}

}  // namespace
}  // namespace stcomp::algo
