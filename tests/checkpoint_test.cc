// Checkpoint/restore matrix (DESIGN.md §13): for every checkpointing
// compressor, interrupting a stream with SaveState + RestoreState into a
// freshly constructed instance must be invisible — the resumed run's output
// is bit-for-bit identical to an uninterrupted one.

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/algo/registry.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/batch_adapter.h"
#include "stcomp/stream/dead_reckoning_stream.h"
#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/ingest_policy.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/policed_compressor.h"
#include "stcomp/stream/squish_stream.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::RandomWalk;

using CompressorFactory = std::function<std::unique_ptr<OnlineCompressor>()>;

void ExpectBitIdentical(const std::vector<TimedPoint>& a,
                        const std::vector<TimedPoint>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(TimedPoint)), 0)
        << what << " point " << i;
  }
}

// Streams `points` through a fresh compressor, interrupting after
// `split` pushes with a save/restore into another fresh instance, and
// checks the total output matches the uninterrupted reference run.
void CheckSplitResume(const CompressorFactory& factory,
                      const std::vector<TimedPoint>& points, size_t split,
                      const std::string& what) {
  std::vector<TimedPoint> reference;
  {
    std::unique_ptr<OnlineCompressor> compressor = factory();
    for (const TimedPoint& point : points) {
      ASSERT_TRUE(compressor->Push(point, &reference).ok()) << what;
    }
    compressor->Finish(&reference);
  }

  std::vector<TimedPoint> resumed;
  std::string state;
  {
    std::unique_ptr<OnlineCompressor> first = factory();
    for (size_t i = 0; i < split; ++i) {
      ASSERT_TRUE(first->Push(points[i], &resumed).ok()) << what;
    }
    ASSERT_TRUE(first->SaveState(&state).ok()) << what;
    // `first` is destroyed here — the "process" died after checkpointing.
  }
  {
    std::unique_ptr<OnlineCompressor> second = factory();
    ASSERT_TRUE(second->RestoreState(state).ok()) << what;
    for (size_t i = split; i < points.size(); ++i) {
      ASSERT_TRUE(second->Push(points[i], &resumed).ok()) << what;
    }
    second->Finish(&resumed);
  }
  ExpectBitIdentical(reference, resumed, what);
}

// Every split point of a modest stream, for one factory.
void CheckEverySplit(const CompressorFactory& factory,
                     const std::string& what) {
  const std::vector<TimedPoint> points = RandomWalk(40, 77).points();
  for (size_t split = 0; split <= points.size(); split += 7) {
    CheckSplitResume(factory, points, split,
                     what + " split=" + std::to_string(split));
  }
}

TEST(CheckpointTest, OpeningWindowStreamResumesBitIdentical) {
  CheckEverySplit(
      [] {
        return std::make_unique<OpeningWindowStream>(
            25.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
      },
      "opening-window");
}

TEST(CheckpointTest, DeadReckoningStreamResumesBitIdentical) {
  CheckEverySplit([] { return std::make_unique<DeadReckoningStream>(30.0); },
                  "dead-reckoning");
}

TEST(CheckpointTest, BatchAdapterResumesBitIdentical) {
  CheckEverySplit(
      [] {
        const algo::AlgorithmInfo* info = algo::FindAlgorithm("td-tr").value();
        algo::AlgorithmParams params;
        params.epsilon_m = 40.0;
        return std::make_unique<BatchAdapter>(info->run, params, "td-tr");
      },
      "batch-adapter");
}

TEST(CheckpointTest, SquishStreamResumesBitIdentical) {
  CheckEverySplit([] { return std::make_unique<SquishStream>(8, 0.0); },
                  "squish-capacity");
  CheckEverySplit([] { return std::make_unique<SquishStream>(0, 60.0); },
                  "squish-error-driven");
}

TEST(CheckpointTest, PolicedCompressorResumesBitIdenticalUnderRepair) {
  // Repair mode with a reorder window keeps fixes *held inside the gate*
  // across the checkpoint — exactly the state a restart must not lose.
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 20.0;
  CheckEverySplit(
      [policy] {
        return std::make_unique<PolicedCompressor>(
            std::make_unique<OpeningWindowStream>(
                25.0, algo::BreakPolicy::kNormal,
                StreamCriterion::kSynchronized),
            policy, "ckpt-policed");
      },
      "policed-repair");
}

TEST(CheckpointTest, ConfigEchoMismatchIsInvalidArgument) {
  OpeningWindowStream a(25.0, algo::BreakPolicy::kNormal,
                        StreamCriterion::kSynchronized);
  std::vector<TimedPoint> out;
  ASSERT_TRUE(a.Push(TimedPoint(1.0, 0.0, 0.0), &out).ok());
  std::string state;
  ASSERT_TRUE(a.SaveState(&state).ok());

  OpeningWindowStream different_epsilon(30.0, algo::BreakPolicy::kNormal,
                                        StreamCriterion::kSynchronized);
  EXPECT_EQ(different_epsilon.RestoreState(state).code(),
            StatusCode::kInvalidArgument);

  DeadReckoningStream different_kind(25.0);
  EXPECT_EQ(different_kind.RestoreState(state).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, MalformedBlobIsDataLoss) {
  OpeningWindowStream a(25.0, algo::BreakPolicy::kNormal,
                        StreamCriterion::kSynchronized);
  std::vector<TimedPoint> out;
  ASSERT_TRUE(a.Push(TimedPoint(1.0, 0.0, 0.0), &out).ok());
  std::string state;
  ASSERT_TRUE(a.SaveState(&state).ok());

  OpeningWindowStream b(25.0, algo::BreakPolicy::kNormal,
                        StreamCriterion::kSynchronized);
  EXPECT_EQ(b.RestoreState(state.substr(0, state.size() - 3)).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(b.RestoreState(state + "xx").code(), StatusCode::kDataLoss);
}

// A compressor that never opted into checkpointing reports kUnimplemented,
// and PolicedCompressor propagates it instead of writing a partial image.
class NoCheckpointCompressor final : public OnlineCompressor {
 public:
  Status Push(const TimedPoint&, std::vector<TimedPoint>*) override {
    return Status();
  }
  void Finish(std::vector<TimedPoint>*) override {}
  size_t buffered_points() const override { return 0; }
  std::string_view name() const override { return "no-checkpoint"; }
};

TEST(CheckpointTest, UnimplementedPropagates) {
  NoCheckpointCompressor bare;
  std::string state;
  EXPECT_EQ(bare.SaveState(&state).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(bare.RestoreState("").code(), StatusCode::kUnimplemented);

  PolicedCompressor policed(std::make_unique<NoCheckpointCompressor>(),
                            IngestPolicy{}, "ckpt-unimpl");
  state.clear();
  EXPECT_EQ(policed.SaveState(&state).code(), StatusCode::kUnimplemented);
}

TEST(CheckpointTest, IngestGateResumesHeldFixes) {
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 100.0;  // Everything stays held until Flush.
  IngestGate gate(policy, IngestCounters::ForInstance("ckpt-gate"));
  std::vector<TimedPoint> admitted;
  ASSERT_TRUE(gate.Admit(TimedPoint(1.0, 0.0, 0.0), &admitted).ok());
  ASSERT_TRUE(gate.Admit(TimedPoint(3.0, 1.0, 1.0), &admitted).ok());
  ASSERT_TRUE(gate.Admit(TimedPoint(2.0, 2.0, 2.0), &admitted).ok());
  ASSERT_TRUE(admitted.empty());
  std::string state;
  ASSERT_TRUE(gate.SaveState(&state).ok());

  IngestGate restored(policy, IngestCounters::ForInstance("ckpt-gate-2"));
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.held_points(), 3u);
  std::vector<TimedPoint> flushed;
  restored.Flush(&flushed);
  ASSERT_EQ(flushed.size(), 3u);
  EXPECT_EQ(flushed[0].t, 1.0);
  EXPECT_EQ(flushed[1].t, 2.0);  // Late fix re-sorted, not lost.
  EXPECT_EQ(flushed[2].t, 3.0);

  // Policy echo mismatch refuses.
  IngestPolicy other = policy;
  other.reorder_window_s = 5.0;
  IngestGate wrong(other, IngestCounters::ForInstance("ckpt-gate-3"));
  EXPECT_EQ(wrong.RestoreState(state).code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, FleetCompressorResumesBitIdenticalStore) {
  const auto factory = [] {
    return std::make_unique<OpeningWindowStream>(
        25.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
  };
  IngestPolicy policy;
  policy.mode = IngestMode::kRepair;
  policy.reorder_window_s = 15.0;

  // Interleaved two-object feed.
  const std::vector<TimedPoint> walk_a = RandomWalk(40, 5).points();
  const std::vector<TimedPoint> walk_b = RandomWalk(40, 6).points();
  struct Fix {
    std::string id;
    TimedPoint point;
  };
  std::vector<Fix> feed;
  for (size_t i = 0; i < walk_a.size(); ++i) {
    feed.push_back({"bus-a", walk_a[i]});
    feed.push_back({"bus-b", walk_b[i]});
  }

  // Reference: one uninterrupted fleet.
  TrajectoryStore store_ref(Codec::kRaw);
  {
    FleetCompressor fleet(factory, &store_ref, policy, "ckpt-fleet-ref");
    for (const Fix& fix : feed) {
      ASSERT_TRUE(fleet.Push(fix.id, fix.point).ok());
    }
    ASSERT_TRUE(fleet.FinishAll().ok());
  }

  // Interrupted: checkpoint mid-feed, restore into a brand-new fleet.
  TrajectoryStore store_resumed(Codec::kRaw);
  std::string image;
  const size_t split = feed.size() / 2;
  std::vector<FleetCompressor::ObjectInfo> saved_objects;
  {
    FleetCompressor fleet(factory, &store_resumed, policy, "ckpt-fleet-1");
    for (size_t i = 0; i < split; ++i) {
      ASSERT_TRUE(fleet.Push(feed[i].id, feed[i].point).ok());
    }
    ASSERT_TRUE(fleet.SaveState(&image).ok());
    EXPECT_EQ(fleet.active_objects(), 2u);
    saved_objects = fleet.ObjectsSnapshot();
    // Fleet destroyed without FinishAll: the process died here.
  }
  {
    FleetCompressor fleet(factory, &store_resumed, policy, "ckpt-fleet-2");
    ASSERT_TRUE(fleet.RestoreState(image).ok());
    EXPECT_EQ(fleet.active_objects(), 2u);
    // The per-object lifetime counters ride in the image: /objectz after a
    // restart must report the same fixes_in/fixes_out, not zeros.
    const std::vector<FleetCompressor::ObjectInfo> restored_objects =
        fleet.ObjectsSnapshot();
    ASSERT_EQ(restored_objects.size(), saved_objects.size());
    for (size_t i = 0; i < saved_objects.size(); ++i) {
      EXPECT_EQ(restored_objects[i].object_id, saved_objects[i].object_id);
      EXPECT_EQ(restored_objects[i].fixes_in, saved_objects[i].fixes_in);
      EXPECT_GT(restored_objects[i].fixes_in, 0u);
      EXPECT_EQ(restored_objects[i].fixes_out, saved_objects[i].fixes_out);
    }
    for (size_t i = split; i < feed.size(); ++i) {
      ASSERT_TRUE(fleet.Push(feed[i].id, feed[i].point).ok());
    }
    ASSERT_TRUE(fleet.FinishAll().ok());
  }

  const Result<std::string> ref_image = store_ref.SerializeToString();
  const Result<std::string> resumed_image = store_resumed.SerializeToString();
  ASSERT_TRUE(ref_image.ok() && resumed_image.ok());
  EXPECT_EQ(*ref_image, *resumed_image);

  // Restore refuses a fleet that has already seen fixes.
  TrajectoryStore scratch(Codec::kRaw);
  FleetCompressor busy(factory, &scratch, policy, "ckpt-fleet-busy");
  ASSERT_TRUE(busy.Push("bus-a", TimedPoint(1.0, 0.0, 0.0)).ok());
  EXPECT_EQ(busy.RestoreState(image).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace stcomp
