// Span-context tests: the thread-local span stack that wires parent ids,
// head sampling at hot-path roots, the tree renderer, and structural
// verification of the Perfetto/Chrome trace_event export.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "stcomp/obs/exposition.h"
#include "stcomp/obs/trace.h"

namespace stcomp::obs {
namespace {

// Restores the sampling period on scope exit so tests cannot leak their
// setting into each other.
class ScopedSamplePeriod {
 public:
  explicit ScopedSamplePeriod(uint64_t period)
      : previous_(TraceBuffer::SetSampledRootPeriod(period)) {}
  ~ScopedSamplePeriod() { TraceBuffer::SetSampledRootPeriod(previous_); }

 private:
  const uint64_t previous_;
};

TEST(SpanStackTest, NestedSpansLinkParentIds) {
  TraceBuffer buffer(16);
  // A fresh thread guarantees an empty span stack underneath the roots.
  std::thread worker([&buffer] {
    TraceSpan root("root", "obj-1", &buffer);
    {
      TraceSpan child_a("child-a", "", &buffer);
      TraceSpan grand("grand", "", &buffer);
    }
    TraceSpan child_b("child-b", "", &buffer);
  });
  worker.join();
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // destruction order: grand, a, b, root
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : events) {
    EXPECT_NE(event.span_id, 0u);
    by_name[event.name] = event;
  }
  ASSERT_EQ(by_name.size(), 4u);
  EXPECT_EQ(by_name["root"].parent_id, 0u);
  EXPECT_EQ(by_name["child-a"].parent_id, by_name["root"].span_id);
  EXPECT_EQ(by_name["child-b"].parent_id, by_name["root"].span_id);
  EXPECT_EQ(by_name["grand"].parent_id, by_name["child-a"].span_id);
  // All on one thread, all distinct span ids.
  for (const auto& [name, event] : by_name) {
    EXPECT_EQ(event.thread_id, by_name["root"].thread_id) << name;
  }
  EXPECT_NE(by_name["child-a"].span_id, by_name["child-b"].span_id);
}

TEST(SpanStackTest, SampledRootDecisionIsInheritedBySubtree) {
  TraceBuffer buffer(64);
  ScopedSamplePeriod period(3);
  // Fresh thread: its per-thread sampling tick starts at 0, so roots
  // 0 and 3 of six record, the rest do not — each recorded root brings
  // its child with it (complete trees, never torn ones).
  std::thread worker([&buffer] {
    for (int i = 0; i < 6; ++i) {
      TraceSpan root("push", "obj-" + std::to_string(i), &buffer,
                     /*sampled_root=*/true);
      TraceSpan child("inner", "", &buffer);
      EXPECT_EQ(child.active(), root.active()) << "iteration " << i;
      EXPECT_EQ(root.active(), i % 3 == 0) << "iteration " << i;
    }
  });
  worker.join();
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Every recorded child links to a recorded root.
  for (const TraceEvent& event : events) {
    if (event.name != "inner") {
      continue;
    }
    bool parent_found = false;
    for (const TraceEvent& candidate : events) {
      parent_found |= candidate.span_id == event.parent_id;
    }
    EXPECT_TRUE(parent_found);
  }
}

TEST(SpanStackTest, UnsampledSpanNeverTouchesTheBuffer) {
  TraceBuffer buffer(16);
  ScopedSamplePeriod period(1000000);
  std::thread worker([&buffer] {
    {
      // Tick 0 records even under a huge period (1 in N includes the
      // first); burn it so the next root is the interesting one.
      TraceSpan first("first", "", &buffer, true);
    }
    TraceSpan skipped("skipped", "", &buffer, true);
    EXPECT_FALSE(skipped.active());
    EXPECT_EQ(skipped.span_id(), 0u);
  });
  worker.join();
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "first");
}

TraceEvent MakeEvent(std::string name, uint64_t span_id, uint64_t parent_id,
                     uint64_t start_us, uint64_t duration_us,
                     uint32_t thread_id = 1) {
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.span_id = span_id;
  event.parent_id = parent_id;
  event.thread_id = thread_id;
  return event;
}

TEST(TraceTreeTest, IndentsChildrenAndPromotesOrphans) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent("child", 2, 1, 10, 5));
  events.push_back(MakeEvent("root", 1, 0, 5, 20));
  events.push_back(MakeEvent("orphan", 3, 99, 30, 1));  // parent missing
  const std::string tree = RenderTraceTree(events);
  // Root renders unindented, its child two spaces deeper, and the orphan
  // is promoted to a root rather than dropped.
  EXPECT_NE(tree.find("  root\n"), std::string::npos) << tree;
  EXPECT_NE(tree.find("    child\n"), std::string::npos) << tree;
  EXPECT_NE(tree.find("  orphan\n"), std::string::npos) << tree;
  // Chronological: root line precedes child line precedes orphan line.
  EXPECT_LT(tree.find("root"), tree.find("child"));
  EXPECT_LT(tree.find("child"), tree.find("orphan"));
  EXPECT_EQ(RenderTraceTree({}), "(no trace spans recorded)\n");
}

// --- Minimal trace_event JSON scanner for structural verification -------
// The exporter's output is machine-generated and flat, so a targeted
// scanner is enough: split the traceEvents array into objects and pull
// the numeric fields out of each.

struct PerfettoEvent {
  std::string name;
  uint64_t ts = 0;
  uint64_t dur = 0;
  uint64_t tid = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
};

uint64_t NumberAfter(const std::string& object, const std::string& key) {
  const size_t at = object.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key << " missing in " << object;
  if (at == std::string::npos) {
    return 0;
  }
  return std::stoull(object.substr(at + key.size() + 3));
}

std::vector<PerfettoEvent> ParsePerfetto(const std::string& json) {
  std::vector<PerfettoEvent> events;
  const size_t array = json.find("\"traceEvents\":[");
  EXPECT_NE(array, std::string::npos);
  size_t cursor = array;
  while (true) {
    const size_t open = json.find('{', cursor + 1);
    if (open == std::string::npos) {
      break;
    }
    const size_t close = json.find('}', open);  // args is the last field
    const size_t inner_close = json.find("}}", open);
    const size_t end = inner_close != std::string::npos ? inner_close + 2
                                                        : close + 1;
    const std::string object = json.substr(open, end - open);
    PerfettoEvent event;
    const size_t name_at = object.find("\"name\":\"");
    if (name_at != std::string::npos) {
      const size_t name_end = object.find('"', name_at + 8);
      event.name = object.substr(name_at + 8, name_end - name_at - 8);
    }
    event.ts = NumberAfter(object, "ts");
    event.dur = NumberAfter(object, "dur");
    event.tid = NumberAfter(object, "tid");
    event.span_id = NumberAfter(object, "span_id");
    event.parent_id = NumberAfter(object, "parent_id");
    events.push_back(std::move(event));
    cursor = end;
  }
  return events;
}

TEST(PerfettoExportTest, RealSpanTreeParentsResolveAndTimestampsNest) {
  TraceBuffer buffer(32);
  std::thread worker([&buffer] {
    TraceSpan root("push", "obj-9", &buffer);
    {
      TraceSpan compress("compress", "", &buffer);
      TraceSpan append("wal.append", "", &buffer);
    }
    TraceSpan checkpoint("checkpoint", "", &buffer);
  });
  worker.join();

  const std::string json = RenderTracePerfetto(buffer.Snapshot());
  // Envelope basics chrome://tracing expects.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stcomp\""), std::string::npos);

  const std::vector<PerfettoEvent> events = ParsePerfetto(json);
  ASSERT_EQ(events.size(), 4u);
  std::map<uint64_t, const PerfettoEvent*> by_id;
  for (const PerfettoEvent& event : events) {
    ASSERT_NE(event.span_id, 0u);
    by_id[event.span_id] = &event;
  }
  size_t roots = 0;
  for (const PerfettoEvent& event : events) {
    if (event.parent_id == 0) {
      ++roots;
      continue;
    }
    // Every parent id resolves to an exported span...
    const auto parent = by_id.find(event.parent_id);
    ASSERT_NE(parent, by_id.end()) << event.name;
    // ...on the same thread, and the child's interval nests within it.
    EXPECT_EQ(event.tid, parent->second->tid) << event.name;
    EXPECT_GE(event.ts, parent->second->ts) << event.name;
    EXPECT_LE(event.ts + event.dur,
              parent->second->ts + parent->second->dur)
        << event.name;
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(RenderTracePerfetto({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

}  // namespace
}  // namespace stcomp::obs
