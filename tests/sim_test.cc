#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "stcomp/core/trajectory_stats.h"
#include "stcomp/sim/gps_noise.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/sim/random.h"
#include "stcomp/sim/road_network.h"
#include "stcomp/sim/trip_generator.h"
#include "test_util.h"

namespace stcomp {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextUint64() == b.NextUint64();
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.NextUniform(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBool(0.3);
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RoadNetworkTest, GeneratesExpectedShape) {
  RoadNetworkConfig config;
  config.grid_width = 10;
  config.grid_height = 8;
  const RoadNetwork network = RoadNetwork::Generate(config, 1);
  EXPECT_EQ(network.nodes().size(), 80u);
  EXPECT_GT(network.edges().size(), 100u);
  for (const RoadEdge& edge : network.edges()) {
    EXPECT_GT(edge.length_m, 0.0);
    EXPECT_GT(edge.speed_limit_mps, 0.0);
  }
}

TEST(RoadNetworkTest, DeterministicInSeed) {
  RoadNetworkConfig config;
  const RoadNetwork a = RoadNetwork::Generate(config, 9);
  const RoadNetwork b = RoadNetwork::Generate(config, 9);
  ASSERT_EQ(a.edges().size(), b.edges().size());
  EXPECT_EQ(a.nodes()[5].position, b.nodes()[5].position);
}

TEST(RoadNetworkTest, RouteConnectsEndpoints) {
  RoadNetworkConfig config;
  config.grid_width = 12;
  config.grid_height = 12;
  const RoadNetwork network = RoadNetwork::Generate(config, 2);
  const auto route = network.Route(0, 143);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->front(), 0);
  EXPECT_EQ(route->back(), 143);
  // Consecutive route nodes share an edge.
  for (size_t i = 0; i + 1 < route->size(); ++i) {
    bool connected = false;
    for (int e : network.AdjacentEdges((*route)[i])) {
      const RoadEdge& edge = network.edges()[static_cast<size_t>(e)];
      connected |= edge.from == (*route)[i + 1] || edge.to == (*route)[i + 1];
    }
    EXPECT_TRUE(connected) << "hop " << i;
  }
}

TEST(RoadNetworkTest, RouteWithLengthApproximatesTarget) {
  RoadNetworkConfig config;
  config.grid_width = 24;
  config.grid_height = 24;
  const RoadNetwork network = RoadNetwork::Generate(config, 3);
  const auto route = network.RouteWithLength(24 * 12 + 12, 5000.0);
  ASSERT_TRUE(route.ok());
  double length = 0.0;
  for (size_t i = 0; i + 1 < route->size(); ++i) {
    length += Distance(
        network.nodes()[static_cast<size_t>((*route)[i])].position,
        network.nodes()[static_cast<size_t>((*route)[i + 1])].position);
  }
  EXPECT_NEAR(length, 5000.0, 1500.0);
}

TEST(GpsNoiseTest, PreservesTimestampsAndCount) {
  const Trajectory clean = testutil::Line(50, 10.0, 10.0, 0.0);
  Rng rng(11);
  const Trajectory noisy = AddGpsNoise(clean, GpsNoiseConfig{}, &rng);
  ASSERT_EQ(noisy.size(), clean.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_DOUBLE_EQ(noisy[i].t, clean[i].t);
  }
}

TEST(GpsNoiseTest, NoiseMagnitudeMatchesSigma) {
  const Trajectory clean = testutil::Line(5000, 10.0, 0.0, 0.0);
  GpsNoiseConfig config;
  config.sigma_m = 4.0;
  Rng rng(13);
  const Trajectory noisy = AddGpsNoise(clean, config, &rng);
  double sum_sq = 0.0;
  for (size_t i = 0; i < clean.size(); ++i) {
    sum_sq += SquaredDistance(noisy[i].position, clean[i].position);
  }
  // E[|noise|^2] = 2 sigma^2 (two axes).
  EXPECT_NEAR(sum_sq / static_cast<double>(clean.size()),
              2.0 * config.sigma_m * config.sigma_m, 4.0);
}

TEST(GpsNoiseTest, NoiseIsAutocorrelated) {
  const Trajectory clean = testutil::Line(5000, 10.0, 0.0, 0.0);
  GpsNoiseConfig config;
  config.sigma_m = 4.0;
  config.correlation_time_s = 25.0;
  Rng rng(17);
  const Trajectory noisy = AddGpsNoise(clean, config, &rng);
  // Lag-1 autocorrelation of the x-axis noise should be near
  // exp(-10/25) ~ 0.67, far from iid's 0.
  double c0 = 0.0;
  double c1 = 0.0;
  for (size_t i = 0; i + 1 < clean.size(); ++i) {
    const double a = noisy[i].position.x - clean[i].position.x;
    const double b = noisy[i + 1].position.x - clean[i + 1].position.x;
    c0 += a * a;
    c1 += a * b;
  }
  EXPECT_NEAR(c1 / c0, std::exp(-10.0 / 25.0), 0.08);
}

TEST(TripGeneratorTest, ProducesDrivableTrajectory) {
  RoadNetworkConfig network_config;
  const RoadNetwork network = RoadNetwork::Generate(network_config, 21);
  TripConfig config;
  config.target_length_m = 8000.0;
  Rng rng(23);
  const Trajectory trip = GenerateTrip(network, config, -1, &rng).value();
  ASSERT_GE(trip.size(), 10u);
  // 10-second sampling.
  for (size_t i = 1; i < trip.size() - 1; ++i) {
    EXPECT_NEAR(trip[i].t - trip[i - 1].t, 10.0, 1e-9);
  }
  // No physically absurd speeds (limits max ~25 m/s * factor).
  for (double v : trip.SegmentSpeeds()) {
    EXPECT_LE(v, 40.0);
  }
  // Roughly the requested length.
  EXPECT_NEAR(trip.Length(), 8000.0, 4000.0);
}

TEST(TripGeneratorTest, DeterministicGivenSeedAndStart) {
  RoadNetworkConfig network_config;
  const RoadNetwork network = RoadNetwork::Generate(network_config, 25);
  TripConfig config;
  Rng rng_a(31);
  Rng rng_b(31);
  const Trajectory a = GenerateTrip(network, config, 10, &rng_a).value();
  const Trajectory b = GenerateTrip(network, config, 10, &rng_b).value();
  EXPECT_EQ(a.points(), b.points());
}

TEST(TripGeneratorTest, ContainsSpeedVariation) {
  RoadNetworkConfig network_config;
  const RoadNetwork network = RoadNetwork::Generate(network_config, 27);
  TripConfig config;
  config.target_length_m = 15000.0;
  config.stop_probability = 0.8;
  Rng rng(33);
  const Trajectory trip = GenerateTrip(network, config, -1, &rng).value();
  const std::vector<double> speeds = trip.SegmentSpeeds();
  const double fastest = *std::max_element(speeds.begin(), speeds.end());
  const double slowest = *std::min_element(speeds.begin(), speeds.end());
  EXPECT_GT(fastest, 10.0);
  EXPECT_LT(slowest, 2.0);  // Stops produce near-zero segments.
}

TEST(PaperDatasetTest, TenNamedTrajectories) {
  PaperDatasetConfig config;
  const std::vector<Trajectory> dataset = GeneratePaperDataset(config);
  ASSERT_EQ(dataset.size(), 10u);
  EXPECT_EQ(dataset[0].name(), "trace-0");
  EXPECT_EQ(dataset[9].name(), "trace-9");
  for (const Trajectory& trajectory : dataset) {
    EXPECT_GE(trajectory.size(), 30u);
  }
}

TEST(PaperDatasetTest, DeterministicInSeed) {
  PaperDatasetConfig config;
  const auto a = GeneratePaperDataset(config);
  const auto b = GeneratePaperDataset(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].points(), b[i].points()) << "trace " << i;
  }
}

TEST(PaperDatasetTest, StatisticsLandNearTable2) {
  PaperDatasetConfig config;
  const DatasetStats stats = ComputeDatasetStats(GeneratePaperDataset(config));
  const Table2Reference reference;
  // Shape-level agreement: within ~40% of the paper's means.
  EXPECT_NEAR(stats.duration_s.mean, reference.duration_mean_s,
              0.4 * reference.duration_mean_s);
  EXPECT_NEAR(stats.avg_speed_mps.mean, reference.speed_mean_mps,
              0.4 * reference.speed_mean_mps);
  EXPECT_NEAR(stats.length_m.mean, reference.length_mean_m,
              0.4 * reference.length_mean_m);
  EXPECT_NEAR(stats.num_points.mean, reference.num_points_mean,
              0.4 * reference.num_points_mean);
  // And the spread is substantial, as in the paper.
  EXPECT_GT(stats.length_m.sd, 0.3 * stats.length_m.mean);
}

}  // namespace
}  // namespace stcomp
