// ShardedFleetCompressor (DESIGN.md §16): the differential property the
// whole design rests on — per-object output of the sharded engine equals
// a single FleetCompressor fed the same per-object sequences — plus
// backpressure accounting, async error surfacing, cross-shard /objectz
// aggregation, the STSM checkpoint round trip (including the reshard
// refusal), and durable mode over a PartitionedSegmentStore.

#include "stcomp/stream/sharded_fleet.h"

#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/sim/random.h"
#include "stcomp/store/codec.h"
#include "stcomp/store/partitioned_store.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/opening_window_stream.h"
#include "test_util.h"

namespace stcomp {
namespace {

std::unique_ptr<OnlineCompressor> MakeOpw() {
  return std::make_unique<OpeningWindowStream>(
      25.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
}

ShardedFleetOptions FourShards(const std::string& instance) {
  ShardedFleetOptions options;
  options.num_shards = 4;
  options.queue_capacity = 64;
  options.max_batch = 16;
  options.instance = instance;
  return options;
}

// One interleaved fleet feed: (object id, fix) in global arrival order,
// per-object subsequences in time order.
using Feed = std::vector<std::pair<std::string, TimedPoint>>;

std::vector<Trajectory> ObjectWalks(size_t objects, size_t fixes,
                                    uint64_t seed) {
  std::vector<Trajectory> walks;
  walks.reserve(objects);
  for (size_t i = 0; i < objects; ++i) {
    walks.push_back(
        testutil::RandomWalk(static_cast<int>(fixes), seed + i));
  }
  return walks;
}

Feed UniformFeed(const std::vector<Trajectory>& walks) {
  Feed feed;
  const size_t fixes = walks.empty() ? 0 : walks[0].size();
  for (size_t k = 0; k < fixes; ++k) {
    for (size_t i = 0; i < walks.size(); ++i) {
      feed.emplace_back("veh-" + std::to_string(i), walks[i].points()[k]);
    }
  }
  return feed;
}

// Seeded Zipf(s=1) arrival order: hot objects dominate the interleaving
// while every object's own fixes stay in time order.
Feed ZipfFeed(const std::vector<Trajectory>& walks, uint64_t seed) {
  std::vector<double> cdf(walks.size());
  double total = 0.0;
  for (size_t i = 0; i < walks.size(); ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cdf[i] = total;
  }
  Rng rng(seed);
  std::vector<size_t> next(walks.size(), 0);
  size_t remaining = 0;
  for (const Trajectory& walk : walks) {
    remaining += walk.size();
  }
  Feed feed;
  feed.reserve(remaining);
  while (remaining > 0) {
    const double u = rng.NextDouble() * total;
    size_t pick = 0;
    while (pick + 1 < cdf.size() && cdf[pick] < u) {
      ++pick;
    }
    // Exhausted objects pass their draw to the next live one.
    size_t scanned = 0;
    while (next[pick] >= walks[pick].size() && scanned < walks.size()) {
      pick = (pick + 1) % walks.size();
      ++scanned;
    }
    if (next[pick] >= walks[pick].size()) {
      break;
    }
    feed.emplace_back("veh-" + std::to_string(pick),
                      walks[pick].points()[next[pick]++]);
    --remaining;
  }
  return feed;
}

// Pushes `feed` through `producers` threads, each owning a disjoint
// object subset (object index mod producers) so per-object order is
// preserved end to end.
void PushConcurrently(ShardedFleetCompressor* engine, const Feed& feed,
                      size_t producers) {
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([engine, &feed, p, producers] {
      for (const auto& [id, fix] : feed) {
        // Owner = numeric suffix mod producers (ids are "veh-<n>").
        const size_t index = std::stoul(id.substr(4));
        if (index % producers != p) {
          continue;
        }
        ASSERT_TRUE(engine->Push(id, fix).ok());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

// Committed per-object outputs: id → points, from any TrajectoryStore
// reader. Missing objects simply don't appear.
std::map<std::string, std::vector<TimedPoint>> Committed(
    const std::vector<Trajectory>& walks,
    const std::function<Result<Trajectory>(const std::string&)>& get) {
  std::map<std::string, std::vector<TimedPoint>> out;
  for (size_t i = 0; i < walks.size(); ++i) {
    const std::string id = "veh-" + std::to_string(i);
    const Result<Trajectory> trajectory = get(id);
    if (trajectory.ok()) {
      out[id] = trajectory->points();
    }
  }
  return out;
}

void ExpectSameOutputs(
    const std::map<std::string, std::vector<TimedPoint>>& sharded,
    const std::map<std::string, std::vector<TimedPoint>>& reference) {
  ASSERT_EQ(sharded.size(), reference.size());
  for (const auto& [id, expected] : reference) {
    const auto it = sharded.find(id);
    ASSERT_NE(it, sharded.end()) << id;
    ASSERT_EQ(it->second.size(), expected.size()) << id;
    for (size_t k = 0; k < expected.size(); ++k) {
      // Bitwise equality: both engines run the identical per-object
      // computation, so even the doubles must agree exactly.
      EXPECT_EQ(it->second[k].t, expected[k].t) << id << " point " << k;
      EXPECT_EQ(it->second[k].position.x, expected[k].position.x) << id;
      EXPECT_EQ(it->second[k].position.y, expected[k].position.y) << id;
    }
  }
}

void RunDifferential(const Feed& feed, const std::vector<Trajectory>& walks,
                     const std::string& instance) {
  ShardedFleetCompressor engine(MakeOpw, FourShards(instance));
  PushConcurrently(&engine, feed, 3);
  ASSERT_TRUE(engine.FinishAll().ok());

  TrajectoryStore reference_store;
  FleetCompressor reference(MakeOpw, &reference_store,
                            instance + "-reference");
  for (const auto& [id, fix] : feed) {
    ASSERT_TRUE(reference.Push(id, fix).ok());
  }
  ASSERT_TRUE(reference.FinishAll().ok());

  ExpectSameOutputs(
      Committed(walks,
                [&engine](const std::string& id) { return engine.Get(id); }),
      Committed(walks, [&reference_store](const std::string& id) {
        return reference_store.Get(id);
      }));
  EXPECT_EQ(engine.fixes_in(), feed.size());
  EXPECT_EQ(engine.fixes_in(), reference.fixes_in());
  EXPECT_EQ(engine.fixes_out(), reference.fixes_out());
}

TEST(ShardedFleetTest, UniformDifferentialMatchesSingleShard) {
  const std::vector<Trajectory> walks = ObjectWalks(24, 60, 101);
  RunDifferential(UniformFeed(walks), walks, "diff-uniform");
}

TEST(ShardedFleetTest, ZipfSkewDifferentialMatchesSingleShard) {
  // The seeded Zipf property test from ISSUE 8: a skewed interleaving
  // (hot head objects) still yields per-object outputs identical to the
  // single-shard engine.
  const std::vector<Trajectory> walks = ObjectWalks(24, 60, 202);
  RunDifferential(ZipfFeed(walks, 777), walks, "diff-zipf");
}

TEST(ShardedFleetTest, FinishObjectIsSynchronousAndReportsNotFound) {
  ShardedFleetCompressor engine(MakeOpw, FourShards("finish-sync"));
  const Trajectory walk = testutil::RandomWalk(40, 5);
  for (const TimedPoint& fix : walk.points()) {
    ASSERT_TRUE(engine.Push("veh-0", fix).ok());
  }
  EXPECT_EQ(engine.FinishObject("no-such-object").code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(engine.FinishObject("veh-0").ok());
  // The tail is flushed: last input point is committed (opening-window
  // contract), visible immediately after the synchronous finish. The
  // in-memory store uses the delta codec, so compare at its quantum.
  const Result<Trajectory> committed = engine.Get("veh-0");
  ASSERT_TRUE(committed.ok());
  EXPECT_NEAR(committed->points().back().t, walk.points().back().t,
              kTimeQuantumS);
  // Finishing twice: the stream is gone.
  EXPECT_EQ(engine.FinishObject("veh-0").code(), StatusCode::kNotFound);
}

// Passthrough that sleeps per fix: makes the worker measurably slower
// than the producer so a tiny queue must backpressure.
class SlowPassthrough : public OnlineCompressor {
 public:
  Status Push(const TimedPoint& point,
              std::vector<TimedPoint>* out) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    out->push_back(point);
    return Status::Ok();
  }
  void Finish(std::vector<TimedPoint>*) override {}
  size_t buffered_points() const override { return 0; }
  std::string_view name() const override { return "slow-passthrough"; }
};

TEST(ShardedFleetTest, BackpressureBoundsQueueAndIsCounted) {
  ShardedFleetOptions options;
  options.num_shards = 1;
  options.queue_capacity = 4;
  options.max_batch = 2;
  options.instance = "backpressure";
  ShardedFleetCompressor engine(
      [] { return std::make_unique<SlowPassthrough>(); }, options);
  const Trajectory walk = testutil::RandomWalk(200, 9);
  for (const TimedPoint& fix : walk.points()) {
    ASSERT_TRUE(engine.Push("veh-0", fix).ok());
  }
  ASSERT_TRUE(engine.FinishAll().ok());
  const std::vector<ShardedFleetCompressor::ShardStats> stats =
      engine.StatsSnapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].enqueued, 200u);
  EXPECT_EQ(stats[0].queue_depth, 0u);
  EXPECT_EQ(stats[0].fixes_in, 200u);
  EXPECT_EQ(stats[0].fixes_out, 200u);  // Passthrough commits everything.
  EXPECT_TRUE(stats[0].error.ok());
  // 200 fixes against a 4-deep queue and a 200µs/fix worker: producers
  // must have waited for space (deterministically many times).
  EXPECT_GT(stats[0].backpressure_waits, 0u);
  EXPECT_GT(stats[0].batches, 1u);
}

TEST(ShardedFleetTest, AsyncErrorsStickAndSurfaceOnFlush) {
  ShardedFleetCompressor engine(MakeOpw, FourShards("async-errors"));
  ASSERT_TRUE(engine.Push("veh-0", {10.0, {0.0, 0.0}}).ok());
  // Out of order under the default kReject policy: the shard records the
  // error asynchronously; the enqueue itself succeeds.
  ASSERT_TRUE(engine.Push("veh-0", {5.0, {1.0, 0.0}}).ok());
  // A sibling object on any shard still processes cleanly.
  ASSERT_TRUE(engine.Push("veh-1", {1.0, {0.0, 0.0}}).ok());
  const Status flushed = engine.Flush();
  EXPECT_EQ(flushed.code(), StatusCode::kInvalidArgument) << flushed;
  // Sticky: a later flush still reports it.
  EXPECT_EQ(engine.Flush().code(), StatusCode::kInvalidArgument);
  const std::vector<ShardedFleetCompressor::ShardStats> stats =
      engine.StatsSnapshot();
  size_t shards_with_errors = 0;
  for (const auto& shard : stats) {
    if (!shard.error.ok()) {
      ++shards_with_errors;
    }
  }
  EXPECT_EQ(shards_with_errors, 1u);  // Only veh-0's shard.
  EXPECT_EQ(engine.fixes_in(), 3u);  // The rejected fix still counted in.
}

TEST(ShardedFleetTest, ObjectsJsonAggregatesAcrossShardsAndLimits) {
  ShardedFleetCompressor engine(MakeOpw, FourShards("objectz-agg"));
  for (int i = 0; i < 10; ++i) {
    const std::string id = "veh-" + std::to_string(i);
    ASSERT_TRUE(engine.Push(id, {1.0, {0.0, 0.0}}).ok());
    ASSERT_TRUE(engine.Push(id, {2.0, {5.0, 0.0}}).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  const std::string all = engine.RenderObjectsJson();
  EXPECT_NE(all.find("\"shards\":4"), std::string::npos);
  EXPECT_NE(all.find("\"objects_total\":10"), std::string::npos);
  EXPECT_NE(all.find("\"truncated\":false"), std::string::npos);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(all.find("\"object_id\":\"veh-" + std::to_string(i) + "\""),
              std::string::npos);
  }
  const std::string limited = engine.RenderObjectsJson(3);
  EXPECT_NE(limited.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(limited.find("\"objects_total\":10"), std::string::npos);
  size_t entries = 0;
  for (size_t pos = limited.find("\"object_id\"");
       pos != std::string::npos;
       pos = limited.find("\"object_id\"", pos + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, 3u);
  // Per-object stats route to the right shard's engine.
  const auto stats = engine.ObjectStats("veh-3");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->fixes_in, 2u);
  EXPECT_FALSE(engine.ObjectStats("veh-99").has_value());
  ASSERT_TRUE(engine.FinishAll().ok());
}

// Satellite regression (ISSUE 9): the cross-shard aggregate goes through
// the shared obs::JsonEscape helper — hostile object ids (quotes,
// newlines, non-ASCII) must render as valid JSON.
TEST(ShardedFleetTest, ObjectsJsonEscapesHostileIds) {
  ShardedFleetCompressor engine(MakeOpw, FourShards("objectz-escape"));
  const std::string hostile = "veh-\"q\"\n\xc3\xa9";
  ASSERT_TRUE(engine.Push(hostile, {1.0, {0.0, 0.0}}).ok());
  ASSERT_TRUE(engine.Push(hostile, {2.0, {5.0, 0.0}}).ok());
  ASSERT_TRUE(engine.Flush().ok());
  const std::string json = engine.RenderObjectsJson();
  EXPECT_NE(json.find("veh-\\\"q\\\"\\n\xc3\xa9"), std::string::npos) << json;
  EXPECT_EQ(json.find(hostile), std::string::npos) << json;
  ASSERT_TRUE(engine.FinishAll().ok());
}

TEST(ShardedFleetTest, CheckpointRoundTripResumesIdentically) {
  const std::vector<Trajectory> walks = ObjectWalks(12, 40, 303);
  const Feed feed = UniformFeed(walks);
  const size_t cut = feed.size() / 2;

  // Uninterrupted run.
  ShardedFleetCompressor full(MakeOpw, FourShards("ckpt-full"));
  for (const auto& [id, fix] : feed) {
    ASSERT_TRUE(full.Push(id, fix).ok());
  }
  ASSERT_TRUE(full.FinishAll().ok());

  // Checkpoint at the cut, restore into a fresh engine, resume.
  std::string image;
  {
    ShardedFleetCompressor first(MakeOpw, FourShards("ckpt-first"));
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(first.Push(feed[i].first, feed[i].second).ok());
    }
    ASSERT_TRUE(first.SaveState(&image).ok());
  }
  ShardedFleetCompressor resumed(MakeOpw, FourShards("ckpt-resumed"));
  ASSERT_TRUE(resumed.RestoreState(image).ok());
  for (size_t i = cut; i < feed.size(); ++i) {
    ASSERT_TRUE(resumed.Push(feed[i].first, feed[i].second).ok());
  }
  ASSERT_TRUE(resumed.FinishAll().ok());

  // Caveat: the restored engine's stores only hold post-restore commits
  // (the store is durable separately), so compare only the resumed tail:
  // every object's resumed output must be a suffix of the full run's.
  for (size_t i = 0; i < walks.size(); ++i) {
    const std::string id = "veh-" + std::to_string(i);
    const Result<Trajectory> full_out = full.Get(id);
    const Result<Trajectory> resumed_out = resumed.Get(id);
    ASSERT_TRUE(full_out.ok()) << id;
    if (!resumed_out.ok()) {
      continue;  // Object committed nothing after the cut.
    }
    const std::vector<TimedPoint>& expect = full_out->points();
    const std::vector<TimedPoint>& got = resumed_out->points();
    ASSERT_LE(got.size(), expect.size()) << id;
    const size_t offset = expect.size() - got.size();
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].t, expect[offset + k].t) << id << " point " << k;
      EXPECT_EQ(got[k].position.x, expect[offset + k].position.x) << id;
      EXPECT_EQ(got[k].position.y, expect[offset + k].position.y) << id;
    }
  }
}

TEST(ShardedFleetTest, RestoreRefusesReshardedManifest) {
  ShardedFleetCompressor four(MakeOpw, FourShards("reshard-four"));
  ASSERT_TRUE(four.Push("veh-0", {1.0, {0.0, 0.0}}).ok());
  std::string image;
  ASSERT_TRUE(four.SaveState(&image).ok());

  ShardedFleetOptions two = FourShards("reshard-two");
  two.num_shards = 2;
  ShardedFleetCompressor resharded(MakeOpw, two);
  const Status status = resharded.RestoreState(image);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(
      status.message().find("resharding requires an explicit migration"),
      std::string_view::npos)
      << status.ToString();
}

TEST(ShardedFleetTest, DurableModeCommitsEveryShardAndRecovers) {
  const std::string dir =
      ::testing::TempDir() + "sharded_fleet_durable";
  std::filesystem::remove_all(dir);
  const std::vector<Trajectory> walks = ObjectWalks(16, 30, 404);
  const Feed feed = UniformFeed(walks);

  {
    PartitionedSegmentStore::Options store_options;
    store_options.num_shards = 4;
    store_options.shard_options.codec = Codec::kRaw;
    PartitionedSegmentStore store(store_options);
    ASSERT_TRUE(store.Open(dir).ok());
    ShardedFleetOptions options = FourShards("durable");
    options.num_shards = 0;  // Adopt the store's layout.
    ShardedFleetCompressor engine(MakeOpw, &store, options);
    EXPECT_EQ(engine.num_shards(), 4u);
    PushConcurrently(&engine, feed, 2);
    ASSERT_TRUE(engine.FinishAll().ok());
    // Engine commits on every batch + FinishAll; nothing staged remains.
    for (size_t i = 0; i < store.num_shards(); ++i) {
      EXPECT_EQ(store.shard(i).staged_records(), 0u) << "shard " << i;
    }
  }

  // Reference: single-shard run over the same feed.
  TrajectoryStore reference_store;
  FleetCompressor reference(MakeOpw, &reference_store, "durable-reference");
  for (const auto& [id, fix] : feed) {
    ASSERT_TRUE(reference.Push(id, fix).ok());
  }
  ASSERT_TRUE(reference.FinishAll().ok());

  // Crash-free reopen: parallel recovery lands every object exactly where
  // the single-shard reference puts it.
  PartitionedSegmentStore reopened;
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(reopened.num_shards(), 4u);
  EXPECT_TRUE(reopened.recovery_clean()) << reopened.DescribeRecovery();
  ExpectSameOutputs(
      Committed(walks,
                [&reopened](const std::string& id) {
                  return reopened.Get(id);
                }),
      Committed(walks, [&reference_store](const std::string& id) {
        return reference_store.Get(id);
      }));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace stcomp
