#include "stcomp/sim/map_matching.h"

#include <gtest/gtest.h>

#include "stcomp/sim/gps_noise.h"
#include "stcomp/sim/trip_generator.h"
#include "test_util.h"

namespace stcomp {
namespace {

RoadNetwork TestNetwork(uint64_t seed = 3) {
  RoadNetworkConfig config;
  config.grid_width = 12;
  config.grid_height = 12;
  config.spacing_m = 400.0;
  return RoadNetwork::Generate(config, seed);
}

// A trip over the network, with and without noise.
struct TripFixture {
  Trajectory clean;
  Trajectory noisy;
};

TripFixture MakeTrip(const RoadNetwork& network, uint64_t seed) {
  Rng rng(seed);
  TripConfig config;
  config.target_length_m = 4000.0;
  TripFixture fixture;
  fixture.clean = GenerateTrip(network, config, -1, &rng).value();
  GpsNoiseConfig noise;
  noise.sigma_m = 8.0;
  fixture.noisy = AddGpsNoise(fixture.clean, noise, &rng);
  return fixture;
}

TEST(MapMatchTest, CleanTripSnapsAlmostPerfectly) {
  const RoadNetwork network = TestNetwork();
  const TripFixture trip = MakeTrip(network, 11);
  const MapMatchResult result =
      MatchToNetwork(network, trip.clean, MapMatchConfig{}).value();
  ASSERT_EQ(result.points.size(), trip.clean.size());
  // Clean samples lie on edges: residuals ~ 0.
  EXPECT_LT(result.mean_residual_m, 0.5);
}

TEST(MapMatchTest, NoisyTripResidualNearNoiseSigma) {
  const RoadNetwork network = TestNetwork();
  const TripFixture trip = MakeTrip(network, 13);
  MapMatchConfig config;
  config.gps_sigma_m = 8.0;
  const MapMatchResult result =
      MatchToNetwork(network, trip.noisy, config).value();
  // The matcher cannot remove the along-road component of the noise, but
  // the cross-road residual it *does* remove should leave the mean
  // snapped-vs-fix distance in the order of sigma.
  EXPECT_GT(result.mean_residual_m, 1.0);
  EXPECT_LT(result.mean_residual_m, 20.0);
}

TEST(MapMatchTest, SnappingRecoversTheCleanPath) {
  const RoadNetwork network = TestNetwork();
  const TripFixture trip = MakeTrip(network, 17);
  MapMatchConfig config;
  config.gps_sigma_m = 8.0;
  const MapMatchResult result =
      MatchToNetwork(network, trip.noisy, config).value();
  // Snapped positions should be closer to the clean ground truth than the
  // noisy input was, on average.
  double noisy_error = 0.0;
  double snapped_error = 0.0;
  for (size_t i = 0; i < trip.clean.size(); ++i) {
    noisy_error += Distance(trip.noisy[i].position, trip.clean[i].position);
    snapped_error +=
        Distance(result.snapped[i].position, trip.clean[i].position);
  }
  EXPECT_LT(snapped_error, noisy_error);
}

TEST(MapMatchTest, MatchedPointsAreConsistent) {
  const RoadNetwork network = TestNetwork();
  const TripFixture trip = MakeTrip(network, 19);
  const MapMatchResult result =
      MatchToNetwork(network, trip.noisy, MapMatchConfig{}).value();
  for (size_t i = 0; i < result.points.size(); ++i) {
    const MatchedPoint& matched = result.points[i];
    ASSERT_GE(matched.edge_index, 0);
    ASSERT_LT(static_cast<size_t>(matched.edge_index),
              network.edges().size());
    const RoadEdge& edge =
        network.edges()[static_cast<size_t>(matched.edge_index)];
    EXPECT_GE(matched.offset_m, -1e-9);
    EXPECT_LE(matched.offset_m, edge.length_m + 1e-9);
    // The snapped point is on the edge segment.
    const Vec2 a = network.nodes()[static_cast<size_t>(edge.from)].position;
    const Vec2 b = network.nodes()[static_cast<size_t>(edge.to)].position;
    EXPECT_LT(PointToSegmentDistance(matched.snapped, a, b), 1e-6);
    // Residual matches the reported distance.
    EXPECT_NEAR(Distance(trip.noisy[i].position, matched.snapped),
                matched.distance_m, 1e-9);
  }
}

TEST(MapMatchTest, FailsWhenFixIsOffTheMap) {
  const RoadNetwork network = TestNetwork();
  const Trajectory far_away =
      testutil::Traj({{0, 1e7, 1e7}, {10, 1e7 + 50, 1e7}});
  MapMatchConfig config;
  const auto result = MatchToNetwork(network, far_away, config);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MapMatchTest, RejectsEmptyInputs) {
  const RoadNetwork network = TestNetwork();
  Trajectory empty;
  EXPECT_FALSE(MatchToNetwork(network, empty, MapMatchConfig{}).ok());
}

TEST(MapMatchTest, TransitionPenaltyPicksTheConnectedRoad) {
  // Two parallel horizontal roads 100 m apart, connected only at the left
  // end. A fix sequence driving along the bottom road with one outlier
  // nudged towards the top road must NOT jump roads mid-way: the network
  // detour (left and back) is far longer than the straight-line step.
  //
  // Build a tiny custom network through the grid generator is impractical;
  // instead pick a generated network and verify path coherence: matched
  // consecutive edges are either equal or near each other on the network.
  const RoadNetwork network = TestNetwork(23);
  const TripFixture trip = MakeTrip(network, 29);
  MapMatchConfig config;
  config.gps_sigma_m = 8.0;
  const MapMatchResult result =
      MatchToNetwork(network, trip.noisy, config).value();
  int jumps = 0;
  for (size_t i = 1; i < result.points.size(); ++i) {
    const Vec2 previous = result.points[i - 1].snapped;
    const Vec2 current = result.points[i].snapped;
    const double hop = Distance(previous, current);
    const double fix_hop = Distance(trip.noisy[i - 1].position,
                                    trip.noisy[i].position);
    if (hop > 3.0 * fix_hop + 100.0) {
      ++jumps;
    }
  }
  EXPECT_EQ(jumps, 0);
}

}  // namespace
}  // namespace stcomp
