#include "stcomp/algo/time_ratio.h"

#include <gtest/gtest.h>

#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/error/synchronous_error.h"
#include "test_util.h"

namespace stcomp::algo {
namespace {

using testutil::Line;
using testutil::LineWithStop;
using testutil::RandomWalk;
using testutil::Traj;

TEST(TdTrTest, ConstantSpeedLineCollapses) {
  // Constant speed on a straight line: SED of every interior point is 0.
  const Trajectory trajectory = Line(40, 10.0, 12.0, 5.0);
  EXPECT_EQ(TdTr(trajectory, 1.0), (IndexList{0, 39}));
}

TEST(TdTrTest, StopIsInvisibleToNdpButNotToTdTr) {
  // A 10-sample stop in the middle of a straight drive: spatially collinear
  // (NDP collapses everything), but temporally a huge deviation.
  const Trajectory trajectory = LineWithStop(10, 10, 10);
  EXPECT_EQ(DouglasPeucker(trajectory, 10.0).size(), 2u);
  EXPECT_GT(TdTr(trajectory, 10.0).size(), 2u);
}

TEST(TdTrTest, GuaranteesMaxSynchronousError) {
  // The TD invariant under the SED criterion bounds the synchronous error
  // at every original point — and, by convexity, everywhere.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Trajectory trajectory = RandomWalk(250, seed);
    for (double epsilon : {15.0, 40.0, 90.0}) {
      const IndexList kept = TdTr(trajectory, epsilon);
      const Trajectory approximation = trajectory.Subset(kept);
      const double max_error =
          MaxSynchronousError(trajectory, approximation).value();
      EXPECT_LE(max_error, epsilon + 1e-9)
          << "seed=" << seed << " eps=" << epsilon;
    }
  }
}

TEST(TdTrTest, MeanSyncErrorBelowNdpOnStopHeavyTraces) {
  // The paper's Fig. 7 shape on a single adversarial trace.
  const Trajectory trajectory = LineWithStop(15, 12, 15);
  const double epsilon = 30.0;
  const Trajectory ndp =
      trajectory.Subset(DouglasPeucker(trajectory, epsilon));
  const Trajectory tdtr = trajectory.Subset(TdTr(trajectory, epsilon));
  EXPECT_LT(SynchronousError(trajectory, tdtr).value(),
            SynchronousError(trajectory, ndp).value());
}

TEST(TdTrTest, MonotoneCompressionInThreshold) {
  const Trajectory trajectory = RandomWalk(200, 5);
  size_t previous = trajectory.size() + 1;
  for (double epsilon : {5.0, 15.0, 45.0, 135.0}) {
    const IndexList kept = TdTr(trajectory, epsilon);
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
    EXPECT_LE(kept.size(), previous);
    previous = kept.size();
  }
}

TEST(OpwTrTest, ConstantSpeedLineCollapses) {
  const Trajectory trajectory = Line(40, 10.0, 12.0, 5.0);
  EXPECT_EQ(OpwTr(trajectory, 1.0), (IndexList{0, 39}));
}

TEST(OpwTrTest, CommittedSegmentsRespectSedThreshold) {
  const Trajectory trajectory = RandomWalk(180, 21);
  const double epsilon = 35.0;
  const IndexList kept = OpwTr(trajectory, epsilon);
  // All but the final forced segment honour the SED bound at interiors.
  for (size_t s = 1; s + 1 < kept.size(); ++s) {
    const TimedPoint& anchor = trajectory[static_cast<size_t>(kept[s - 1])];
    const TimedPoint& end = trajectory[static_cast<size_t>(kept[s])];
    for (int i = kept[s - 1] + 1; i < kept[s]; ++i) {
      EXPECT_LE(SynchronizedDistance(anchor, end,
                                     trajectory[static_cast<size_t>(i)]),
                epsilon);
    }
  }
}

TEST(OpwTrTest, DetectsTemporalDeviationOnCollinearPath) {
  const Trajectory trajectory = LineWithStop(10, 10, 10);
  EXPECT_GT(OpwTr(trajectory, 10.0).size(), 2u);
}

TEST(TdTrMaxPointsTest, HonoursBudgetAndUsesSed) {
  const Trajectory trajectory = RandomWalk(100, 41);
  for (int budget : {2, 5, 20}) {
    const IndexList kept = TdTrMaxPoints(trajectory, budget);
    EXPECT_EQ(kept.size(), static_cast<size_t>(budget));
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
  }
  // On a collinear path with a stop, the first extra point the SED budget
  // spends must land inside the stop region — perpendicular DP would see
  // nothing there.
  const Trajectory with_stop = LineWithStop(10, 10, 10);
  const IndexList kept = TdTrMaxPoints(with_stop, 3);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GT(kept[1], 9);
  EXPECT_LT(kept[1], 22);
}

TEST(OpwTrTest, SplitDistanceAccessor) {
  const Trajectory trajectory = Traj({{0, 0, 0}, {2, 80, 0}, {10, 100, 0}});
  // At t=2 the time-ratio position is 20 east; the sample sits at 80.
  EXPECT_DOUBLE_EQ(SynchronizedSplitDistance(trajectory, 0, 2, 1), 60.0);
}

}  // namespace
}  // namespace stcomp::algo
