#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/codec.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/store/varint.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t value : std::vector<uint64_t>{0, 1, 127, 128, 16383, 16384,
                                              uint64_t{1} << 32,
                                              UINT64_MAX}) {
    std::string buffer;
    PutVarint(value, &buffer);
    std::string_view cursor = buffer;
    EXPECT_EQ(GetVarint(&cursor).value(), value);
    EXPECT_TRUE(cursor.empty());
  }
}

TEST(VarintTest, EncodingLengths) {
  std::string buffer;
  PutVarint(127, &buffer);
  EXPECT_EQ(buffer.size(), 1u);
  buffer.clear();
  PutVarint(128, &buffer);
  EXPECT_EQ(buffer.size(), 2u);
  buffer.clear();
  PutVarint(UINT64_MAX, &buffer);
  EXPECT_EQ(buffer.size(), 10u);
}

TEST(VarintTest, TruncationDetected) {
  std::string buffer;
  PutVarint(1ull << 40, &buffer);
  std::string_view truncated(buffer.data(), buffer.size() - 1);
  EXPECT_FALSE(GetVarint(&truncated).ok());
  std::string_view empty;
  EXPECT_FALSE(GetVarint(&empty).ok());
}

TEST(ZigZagTest, RoundTrip) {
  for (int64_t value : std::vector<int64_t>{0, 1, -1, 63, -64, 1234567,
                                            -1234567, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(value)), value);
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(SignedVarintTest, RoundTrip) {
  for (int64_t value : std::vector<int64_t>{0, -5, 300, -70000, INT64_MAX,
                                            INT64_MIN}) {
    std::string buffer;
    PutSignedVarint(value, &buffer);
    std::string_view cursor = buffer;
    EXPECT_EQ(GetSignedVarint(&cursor).value(), value);
  }
}

TEST(DoubleCodecTest, RoundTripExact) {
  for (double value : {0.0, -0.0, 1.5, -3.25e300, 5e-324}) {
    std::string buffer;
    PutDouble(value, &buffer);
    std::string_view cursor = buffer;
    EXPECT_EQ(GetDouble(&cursor).value(), value);
  }
}

TEST(CodecTest, RawRoundTripBitExact) {
  const Trajectory trajectory = RandomWalk(100, 1);
  std::string buffer;
  ASSERT_TRUE(EncodePoints(trajectory, Codec::kRaw, &buffer).ok());
  EXPECT_EQ(buffer.size(), 24u * trajectory.size());
  std::string_view cursor = buffer;
  const auto points =
      DecodePoints(&cursor, Codec::kRaw, trajectory.size()).value();
  EXPECT_EQ(points, trajectory.points());
}

TEST(CodecTest, DeltaRoundTripWithinQuantum) {
  const Trajectory trajectory = RandomWalk(100, 2);
  std::string buffer;
  ASSERT_TRUE(EncodePoints(trajectory, Codec::kDelta, &buffer).ok());
  std::string_view cursor = buffer;
  const auto points =
      DecodePoints(&cursor, Codec::kDelta, trajectory.size()).value();
  ASSERT_EQ(points.size(), trajectory.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR(points[i].t, trajectory[i].t, kTimeQuantumS / 2 + 1e-12);
    EXPECT_NEAR(points[i].position.x, trajectory[i].position.x,
                kCoordQuantumM / 2 + 1e-12);
    EXPECT_NEAR(points[i].position.y, trajectory[i].position.y,
                kCoordQuantumM / 2 + 1e-12);
  }
}

TEST(CodecTest, DeltaIsIdempotentOnQuantisedData) {
  // Once decoded (quantised), re-encoding and decoding is lossless.
  const Trajectory trajectory = RandomWalk(50, 3);
  std::string buffer;
  ASSERT_TRUE(EncodePoints(trajectory, Codec::kDelta, &buffer).ok());
  std::string_view cursor = buffer;
  const Trajectory quantised = Trajectory::FromPoints(
      DecodePoints(&cursor, Codec::kDelta, trajectory.size()).value()).value();
  std::string buffer2;
  ASSERT_TRUE(EncodePoints(quantised, Codec::kDelta, &buffer2).ok());
  std::string_view cursor2 = buffer2;
  const auto again =
      DecodePoints(&cursor2, Codec::kDelta, quantised.size()).value();
  EXPECT_EQ(again, quantised.points());
}

TEST(CodecTest, DeltaBeatsRawOnRealisticStreams) {
  // 10 s sampling, tens of metres of movement per fix: deltas are small.
  const Trajectory trajectory = Line(500, 10.0, 12.0, 5.0);
  const size_t raw = EncodedSize(trajectory, Codec::kRaw).value();
  const size_t delta = EncodedSize(trajectory, Codec::kDelta).value();
  EXPECT_LT(delta * 2, raw);  // At least 2x smaller.
}

TEST(SerializationTest, RoundTrip) {
  Trajectory trajectory = RandomWalk(80, 4);
  trajectory.set_name("object-7");
  for (Codec codec : {Codec::kRaw, Codec::kDelta}) {
    const std::string frame =
        SerializeTrajectory(trajectory, codec).value();
    std::string_view cursor = frame;
    const Trajectory decoded = DeserializeTrajectory(&cursor).value();
    EXPECT_TRUE(cursor.empty());
    EXPECT_EQ(decoded.name(), "object-7");
    EXPECT_EQ(decoded.size(), trajectory.size());
    if (codec == Codec::kRaw) {
      EXPECT_EQ(decoded.points(), trajectory.points());
    }
  }
}

TEST(SerializationTest, DetectsCorruption) {
  const Trajectory trajectory = RandomWalk(20, 5);
  std::string frame = SerializeTrajectory(trajectory, Codec::kDelta).value();
  frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^ 0x40);
  std::string_view cursor = frame;
  EXPECT_FALSE(DeserializeTrajectory(&cursor).ok());
}

TEST(SerializationTest, DetectsTruncationAndBadMagic) {
  const Trajectory trajectory = RandomWalk(20, 6);
  const std::string frame =
      SerializeTrajectory(trajectory, Codec::kRaw).value();
  std::string_view truncated(frame.data(), frame.size() - 5);
  EXPECT_FALSE(DeserializeTrajectory(&truncated).ok());
  std::string bad = frame;
  bad[0] = 'X';
  std::string_view cursor = bad;
  EXPECT_FALSE(DeserializeTrajectory(&cursor).ok());
}

TEST(SerializationTest, MultipleFramesInOneBuffer) {
  const Trajectory a = RandomWalk(10, 7);
  const Trajectory b = RandomWalk(15, 8);
  const std::string buffer = SerializeTrajectory(a, Codec::kRaw).value() +
                             SerializeTrajectory(b, Codec::kRaw).value();
  std::string_view cursor = buffer;
  EXPECT_EQ(DeserializeTrajectory(&cursor).value().size(), 10u);
  EXPECT_EQ(DeserializeTrajectory(&cursor).value().size(), 15u);
  EXPECT_TRUE(cursor.empty());
}

TEST(SerializationTest, FileRoundTrip) {
  const Trajectory trajectory = RandomWalk(30, 9);
  const std::string path = ::testing::TempDir() + "/stcomp_store_test.bin";
  ASSERT_TRUE(WriteTrajectoryFile(trajectory, Codec::kRaw, path).ok());
  EXPECT_EQ(ReadTrajectoryFile(path).value().points(), trajectory.points());
}

TEST(Crc32Test, KnownVector) {
  // The canonical test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(TrajectoryStoreTest, InsertGetRemove) {
  TrajectoryStore store;
  const Trajectory trajectory = RandomWalk(40, 10);
  ASSERT_TRUE(store.Insert("car-1", trajectory).ok());
  EXPECT_EQ(store.Insert("car-1", trajectory).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(store.object_count(), 1u);
  const Trajectory loaded = store.Get("car-1").value();
  EXPECT_EQ(loaded.size(), trajectory.size());
  EXPECT_TRUE(store.Remove("car-1").ok());
  EXPECT_EQ(store.Remove("car-1").code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.Get("car-1").ok());
}

TEST(TrajectoryStoreTest, RawCodecIsLossless) {
  TrajectoryStore store(Codec::kRaw);
  const Trajectory trajectory = RandomWalk(40, 11);
  ASSERT_TRUE(store.Insert("x", trajectory).ok());
  EXPECT_EQ(store.Get("x").value().points(), trajectory.points());
}

TEST(TrajectoryStoreTest, AppendBuildsTrajectory) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Append("live", {0.0, 0.0, 0.0}).ok());
  ASSERT_TRUE(store.Append("live", {10.0, 50.0, 0.0}).ok());
  ASSERT_TRUE(store.Append("live", {20.0, 100.0, 25.0}).ok());
  EXPECT_FALSE(store.Append("live", {20.0, 1.0, 1.0}).ok());
  const Trajectory loaded = store.Get("live").value();
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_NEAR(loaded[2].position.y, 25.0, kCoordQuantumM);
}

TEST(TrajectoryStoreTest, AppendMatchesInsertEncoding) {
  // Appending point-by-point must yield the same bytes as inserting whole.
  const Trajectory trajectory = RandomWalk(60, 12);
  TrajectoryStore whole;
  ASSERT_TRUE(whole.Insert("t", trajectory).ok());
  TrajectoryStore incremental;
  for (const TimedPoint& point : trajectory.points()) {
    ASSERT_TRUE(incremental.Append("t", point).ok());
  }
  EXPECT_EQ(whole.StorageBytes(), incremental.StorageBytes());
  EXPECT_EQ(whole.Get("t").value().points(),
            incremental.Get("t").value().points());
}

TEST(TrajectoryStoreTest, PositionAtAndTimeSlice) {
  TrajectoryStore store(Codec::kRaw);
  ASSERT_TRUE(store.Insert("car", Traj({{0, 0, 0}, {10, 100, 0},
                                        {20, 100, 100}})).ok());
  EXPECT_EQ(store.PositionAt("car", 5.0).value(), Vec2(50, 0));
  EXPECT_FALSE(store.PositionAt("car", 25.0).ok());
  const Trajectory slice = store.TimeSlice("car", 5.0, 15.0).value();
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[0], TimedPoint(5.0, 50.0, 0.0));
  EXPECT_EQ(slice[1], TimedPoint(10.0, 100.0, 0.0));
  EXPECT_EQ(slice[2], TimedPoint(15.0, 100.0, 50.0));
}

TEST(TrajectoryStoreTest, TimeSliceClipsAndRejects) {
  TrajectoryStore store(Codec::kRaw);
  ASSERT_TRUE(store.Insert("car", Traj({{0, 0, 0}, {10, 100, 0}})).ok());
  const Trajectory clipped = store.TimeSlice("car", -5.0, 5.0).value();
  EXPECT_DOUBLE_EQ(clipped.front().t, 0.0);
  EXPECT_DOUBLE_EQ(clipped.back().t, 5.0);
  EXPECT_FALSE(store.TimeSlice("car", 11.0, 12.0).ok());
  EXPECT_FALSE(store.TimeSlice("ghost", 0.0, 1.0).ok());
}

TEST(TrajectoryStoreTest, ObjectsInBox) {
  TrajectoryStore store(Codec::kRaw);
  ASSERT_TRUE(store.Insert("east", Traj({{0, 100, 0}, {10, 200, 0}})).ok());
  ASSERT_TRUE(store.Insert("north", Traj({{0, 0, 100}, {10, 0, 200}})).ok());
  const BoundingBox east_box{{50, -50}, {250, 50}};
  const auto hits = store.ObjectsInBox(east_box);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], "east");
}

TEST(TrajectoryStoreTest, StorageAccounting) {
  TrajectoryStore delta(Codec::kDelta);
  TrajectoryStore raw(Codec::kRaw);
  const Trajectory trajectory = Line(200, 10.0, 12.0, 0.0);
  ASSERT_TRUE(delta.Insert("t", trajectory).ok());
  ASSERT_TRUE(raw.Insert("t", trajectory).ok());
  EXPECT_LT(delta.StorageBytes(), raw.StorageBytes() / 2);
  EXPECT_EQ(raw.StorageBytes(), 24u * trajectory.size());
}

}  // namespace
}  // namespace stcomp
