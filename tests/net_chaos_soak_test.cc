// The ISSUE 10 acceptance gate: a seeded chaos soak over a real TCP
// loopback path. Several concurrent FleetClients stream a simulated
// fleet into an IngestServer feeding a ShardedFleetCompressor while a
// per-client FaultPlan injects mid-frame disconnects, stalled sockets,
// split writes and corrupted spans into every socket write. Asserts:
//
//   1. the server never dies and never leaks a session;
//   2. every fix the clients pushed arrives exactly once (acked batches
//      survive disconnects, duplicates are never re-applied);
//   3. the compressed store is bit-identical — per object, down to the
//      serialized bytes — to in-process ingest of the same fleet.
//
// Everything is deterministic in kSoakSeed: a failure reproduces from
// the seed in the failure message alone. Runs under ASan/UBSan and TSan
// in scripts/check.sh (the TSan pass is what certifies the poll-thread /
// client-thread / metrics-reader interleavings).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/common/strings.h"
#include "stcomp/net/fleet_client.h"
#include "stcomp/net/ingest_server.h"
#include "stcomp/store/codec.h"
#include "stcomp/store/serialization.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/stream/sharded_fleet.h"
#include "stcomp/testing/fault_plan.h"
#include "test_util.h"

namespace stcomp {
namespace {

constexpr uint64_t kSoakSeed = 20260807;
constexpr size_t kClients = 6;
constexpr size_t kObjectsPerClient = 4;
constexpr size_t kFixesPerObject = 120;

std::unique_ptr<OnlineCompressor> MakeOpw() {
  return std::make_unique<OpeningWindowStream>(
      25.0, algo::BreakPolicy::kNormal, StreamCriterion::kSynchronized);
}

ShardedFleetOptions EngineOptions(const std::string& instance) {
  ShardedFleetOptions options;
  options.num_shards = 4;
  options.queue_capacity = 64;
  options.max_batch = 16;
  options.instance = instance;
  return options;
}

std::string ObjectId(size_t client, size_t object) {
  return StrFormat("veh-%zu-%zu", client, object);
}

// The fleet: per-object random walks, deterministic in the soak seed.
std::map<std::string, Trajectory> BuildFleet() {
  std::map<std::string, Trajectory> fleet;
  for (size_t c = 0; c < kClients; ++c) {
    for (size_t o = 0; o < kObjectsPerClient; ++o) {
      fleet.emplace(ObjectId(c, o),
                    testutil::RandomWalk(
                        static_cast<int>(kFixesPerObject),
                        kSoakSeed + c * kObjectsPerClient + o));
    }
  }
  return fleet;
}

TEST(NetChaosSoak, AckedFixesSurviveWireChaosBitIdentically) {
  const std::map<std::string, Trajectory> fleet = BuildFleet();

  // --- Reference: in-process ingest of the same fleet. ---------------
  ShardedFleetCompressor reference(MakeOpw, EngineOptions("soak-ref"));
  for (const auto& [id, walk] : fleet) {
    for (const TimedPoint& p : walk.points()) {
      ASSERT_TRUE(reference.Push(id, p).ok());
    }
  }
  ASSERT_TRUE(reference.FinishAll().ok());

  // --- System under chaos: the same fleet over real TCP. -------------
  ShardedFleetCompressor engine(MakeOpw, EngineOptions("soak-net"));
  net::IngestServerOptions server_options;
  server_options.instance = "soak-server";
  net::IngestServer server(
      [&engine](std::string_view id, const TimedPoint& fix) {
        return engine.Push(id, fix);
      },
      server_options);
  ASSERT_TRUE(server.Start(0).ok());

  std::atomic<size_t> client_failures{0};
  std::atomic<uint64_t> total_reconnects{0};
  std::vector<std::string> fault_logs(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      // One seeded fault plan per client: every socket write can draw a
      // disconnect, corrupt span, split write or stall.
      testing::FaultPlan plan(kSoakSeed * 1000 + c);
      net::FleetClientOptions copts;
      copts.port = server.port();
      copts.client_id = StrFormat("client-%zu", c);
      copts.batch_size = 16;
      copts.max_reconnects = 200;
      copts.fault_hook = [&plan](size_t write_size) {
        return plan.NextWireFault(write_size);
      };
      net::FleetClient client(copts);

      // Interleave this client's objects round-robin, per-object time
      // order preserved — the fleet-feed shape.
      bool ok = true;
      for (size_t i = 0; ok && i < kFixesPerObject; ++i) {
        for (size_t o = 0; ok && o < kObjectsPerClient; ++o) {
          const std::string id = ObjectId(c, o);
          ok = client.Push(id, fleet.at(id).points()[i]).ok();
        }
      }
      if (ok) ok = client.Bye().ok();
      if (!ok) {
        client_failures.fetch_add(1);
        fault_logs[c] = plan.Describe();
      }
      total_reconnects.fetch_add(client.reconnects());
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::string failed_plans;
  for (const std::string& log : fault_logs) {
    if (!log.empty()) failed_plans += log + " ";
  }
  ASSERT_EQ(client_failures.load(), 0u)
      << "soak seed " << kSoakSeed << "; failing plans: " << failed_plans;

  server.Stop();
  EXPECT_EQ(server.active_sessions(), 0u) << "leaked sessions after Stop";
  ASSERT_TRUE(engine.FinishAll().ok());

  // The chaos layer must actually have bitten for the soak to certify
  // anything: with these seeds the clients reconnect many times.
  EXPECT_GT(total_reconnects.load(), 0u)
      << "chaos plan injected no disconnects — soak is vacuous";
  EXPECT_GT(server.sessions_accepted(), kClients)
      << "no reconnections ever reached the server";

  // --- The headline: exactly-once, bit-identical. --------------------
  // Every fix arrived exactly once and in order iff each object's
  // compressed output — and its serialized bytes — equals the reference.
  EXPECT_EQ(server.fixes_in(),
            kClients * kObjectsPerClient * kFixesPerObject)
      << "applied-fix count differs: lost or duplicated batches";
  for (const auto& [id, walk] : fleet) {
    Result<Trajectory> got = engine.Get(id);
    Result<Trajectory> want = reference.Get(id);
    ASSERT_TRUE(got.ok()) << id << ": " << got.status();
    ASSERT_TRUE(want.ok()) << id << ": " << want.status();
    ASSERT_EQ(got->size(), want->size()) << id;
    for (size_t i = 0; i < got->size(); ++i) {
      ASSERT_EQ(got->points()[i].t, want->points()[i].t) << id;
      ASSERT_EQ(got->points()[i].position.x, want->points()[i].position.x)
          << id;
      ASSERT_EQ(got->points()[i].position.y, want->points()[i].position.y)
          << id;
    }
    Result<std::string> got_bytes = SerializeTrajectory(*got, Codec::kDelta);
    Result<std::string> want_bytes =
        SerializeTrajectory(*want, Codec::kDelta);
    ASSERT_TRUE(got_bytes.ok());
    ASSERT_TRUE(want_bytes.ok());
    EXPECT_EQ(*got_bytes, *want_bytes)
        << id << ": serialized bytes diverge (seed " << kSoakSeed << ")";
  }
}

TEST(NetChaosSoak, ServerSurvivesPureGarbageFlood) {
  // A second, nastier angle: raw corrupt byte blobs (FaultPlan-mutated
  // valid frames) thrown at the port from several threads. The server
  // must shrug every one off with a typed close — counters move, nothing
  // crashes, and a well-behaved client still gets service afterwards.
  net::IngestServerOptions options;
  options.instance = "soak-garbage";
  std::atomic<size_t> sunk{0};
  net::IngestServer server(
      [&sunk](std::string_view, const TimedPoint&) {
        sunk.fetch_add(1);
        return Status::Ok();
      },
      options);
  ASSERT_TRUE(server.Start(0).ok());

  std::vector<std::thread> floods;
  for (size_t t = 0; t < 4; ++t) {
    floods.emplace_back([&, t] {
      testing::FaultPlanOptions aggressive;
      aggressive.bit_flip_per_byte = 0.05;
      testing::FaultPlan plan(kSoakSeed + 31 * t, aggressive);
      for (size_t round = 0; round < 24; ++round) {
        std::vector<net::NetFix> fixes = {
            {"junk", TimedPoint(static_cast<double>(round), 1.0, 2.0)}};
        std::string bytes =
            EncodeNetFrame(net::NetFrame::Hello("flood")) +
            EncodeNetFrame(net::NetFrame::Batch(round + 1, fixes));
        net::FleetClientOptions copts;
        copts.port = server.port();
        copts.client_id = "unused";
        // Raw socket spray via the client's dial path would handshake;
        // use a bare connection instead.
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
          ::close(fd);
          continue;
        }
        net::SendAll(fd, plan.CorruptBytes(bytes)).ok();
        ::close(fd);
      }
    });
  }
  for (std::thread& thread : floods) thread.join();

  // Service still works for a polite client.
  net::FleetClientOptions copts;
  copts.port = server.port();
  copts.client_id = "survivor";
  net::FleetClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Push("obj", TimedPoint(0.0, 1.0, 2.0)).ok());
  ASSERT_TRUE(client.Flush().ok());
  ASSERT_TRUE(client.Bye().ok());
  EXPECT_EQ(sunk.load(), 1u);
  server.Stop();
  EXPECT_EQ(server.active_sessions(), 0u);
}

}  // namespace
}  // namespace stcomp
