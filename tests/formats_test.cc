#include <gtest/gtest.h>

#include "stcomp/gps/csv.h"
#include "stcomp/gps/gpx.h"
#include "stcomp/gps/plt.h"
#include "stcomp/gps/xml_scanner.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Traj;

TEST(XmlTest, ParsesElementsAttributesText) {
  const auto root = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<a x=\"1\" y='two'><b>hello</b><b>world</b><c/></a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->name, "a");
  EXPECT_EQ(*(*root)->FindAttribute("x"), "1");
  EXPECT_EQ(*(*root)->FindAttribute("y"), "two");
  EXPECT_EQ((*root)->FindAttribute("z"), nullptr);
  ASSERT_NE((*root)->FindChild("b"), nullptr);
  EXPECT_EQ((*root)->FindChild("b")->text, "hello");
  EXPECT_EQ((*root)->FindChildren("b").size(), 2u);
  EXPECT_NE((*root)->FindChild("c"), nullptr);
}

TEST(XmlTest, EntitiesAndCdataAndComments) {
  const auto root = ParseXml(
      "<r a=\"&lt;&amp;&gt;\"><!-- note --><t>x &amp; y</t>"
      "<d><![CDATA[1 < 2]]></d></r>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*(*root)->FindAttribute("a"), "<&>");
  EXPECT_EQ((*root)->FindChild("t")->text, "x & y");
  EXPECT_EQ((*root)->FindChild("d")->text, "1 < 2");
}

TEST(XmlTest, RejectsMalformed) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a").ok());
  EXPECT_FALSE(ParseXml("<a x=1></a>").ok());
}

TEST(XmlTest, Escape) {
  EXPECT_EQ(XmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(CsvTest, ProjectedSchemaRoundTrip) {
  Trajectory trajectory =
      Traj({{0, 1.5, -2.5}, {10, 100.25, 50.125}, {20.5, -3, 4}});
  const std::string text = WriteCsvTrajectory(trajectory);
  const Trajectory parsed = ParseCsvTrajectory(text).value();
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.points(), trajectory.points());
}

TEST(CsvTest, GeographicSchemaProjectsLocally) {
  const std::string text =
      "t,lat,lon\n"
      "0,52.2200,6.8900\n"
      "10,52.2210,6.8900\n";
  const Trajectory parsed = ParseCsvTrajectory(text).value();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_NEAR(parsed[0].position.x, 0.0, 1e-9);
  // 0.001 degrees of latitude is ~111 m north.
  EXPECT_NEAR(parsed[1].position.y, 111.0, 1.0);
}

TEST(CsvTest, SkipsCommentsAndBlanks) {
  const std::string text =
      "# produced by a unit test\n\nt,x,y\n0,0,0\n# interior comment\n1,1,1\n";
  EXPECT_EQ(ParseCsvTrajectory(text).value().size(), 2u);
}

TEST(CsvTest, Rejections) {
  EXPECT_FALSE(ParseCsvTrajectory("").ok());
  EXPECT_FALSE(ParseCsvTrajectory("a,b,c\n1,2,3\n").ok());
  EXPECT_FALSE(ParseCsvTrajectory("t,x,y\n1,2\n").ok());
  EXPECT_FALSE(ParseCsvTrajectory("t,x,y\n1,2,zz\n").ok());
  // Duplicate timestamps violate the trajectory invariant.
  EXPECT_FALSE(ParseCsvTrajectory("t,x,y\n1,0,0\n1,1,1\n").ok());
}

TEST(CsvTest, FileRoundTrip) {
  const Trajectory trajectory = Traj({{0, 0, 0}, {1, 2, 3}});
  const std::string path = ::testing::TempDir() + "/stcomp_csv_test.csv";
  ASSERT_TRUE(WriteCsvTrajectoryFile(trajectory, path).ok());
  const Trajectory parsed = ReadCsvTrajectoryFile(path).value();
  EXPECT_EQ(parsed.points(), trajectory.points());
  EXPECT_FALSE(ReadCsvTrajectoryFile("/nonexistent/x.csv").ok());
}

TEST(Iso8601Test, ParseAndFormat) {
  EXPECT_DOUBLE_EQ(ParseIso8601("1970-01-01T00:00:00Z").value(), 0.0);
  EXPECT_DOUBLE_EQ(ParseIso8601("1970-01-02T00:00:00Z").value(), 86400.0);
  EXPECT_DOUBLE_EQ(ParseIso8601("2004-03-14T09:26:53Z").value(),
                   1079256413.0);
  EXPECT_DOUBLE_EQ(ParseIso8601("2004-03-14T09:26:53.25Z").value(),
                   1079256413.25);
  EXPECT_DOUBLE_EQ(ParseIso8601("2004-03-14T10:26:53+01:00").value(),
                   1079256413.0);
  EXPECT_EQ(FormatIso8601(1079256413.0), "2004-03-14T09:26:53Z");
  EXPECT_EQ(FormatIso8601(0.0), "1970-01-01T00:00:00Z");
}

TEST(Iso8601Test, FractionalFormatting) {
  EXPECT_EQ(FormatIso8601(1079256413.25, 3), "2004-03-14T09:26:53.250Z");
  // Round trips to millisecond precision.
  EXPECT_NEAR(ParseIso8601(FormatIso8601(880.1235, 3)).value(), 880.1235,
              5.01e-4);
  // Rounding never carries into the integer second.
  EXPECT_EQ(FormatIso8601(0.9999, 3), "1970-01-01T00:00:00.999Z");
}

TEST(Iso8601Test, RoundTripsAcrossEpochs) {
  for (double t : {-86400.0, 0.0, 951782400.0, 1079256413.0, 4102444800.0}) {
    EXPECT_DOUBLE_EQ(ParseIso8601(FormatIso8601(t)).value(), t);
  }
}

TEST(Iso8601Test, Rejections) {
  EXPECT_FALSE(ParseIso8601("").ok());
  EXPECT_FALSE(ParseIso8601("2004-03-14").ok());
  EXPECT_FALSE(ParseIso8601("2004-13-14T00:00:00Z").ok());
  EXPECT_FALSE(ParseIso8601("2004-03-14T09:26:53Q").ok());
}

TEST(GpxTest, ParseMinimalDocument) {
  const std::string document =
      "<?xml version=\"1.0\"?>\n"
      "<gpx version=\"1.1\"><trk><name>ride</name><trkseg>"
      "<trkpt lat=\"52.2200\" lon=\"6.8900\">"
      "<time>2004-03-14T09:00:00Z</time></trkpt>"
      "<trkpt lat=\"52.2210\" lon=\"6.8900\">"
      "<time>2004-03-14T09:00:10Z</time></trkpt>"
      "</trkseg></trk></gpx>";
  const GpxTrack track = ParseGpx(document).value();
  ASSERT_EQ(track.trajectory.size(), 2u);
  EXPECT_EQ(track.trajectory.name(), "ride");
  EXPECT_DOUBLE_EQ(track.trajectory[1].t - track.trajectory[0].t, 10.0);
  EXPECT_NEAR(track.trajectory[1].position.y, 111.0, 1.0);
  EXPECT_DOUBLE_EQ(track.origin.lat_deg, 52.22);
}

TEST(GpxTest, RejectsTrackPointWithoutTime) {
  const std::string document =
      "<gpx><trk><trkseg><trkpt lat=\"1\" lon=\"2\"/>"
      "</trkseg></trk></gpx>";
  EXPECT_FALSE(ParseGpx(document).ok());
}

TEST(GpxTest, RejectsNonGpxRootAndEmpty) {
  EXPECT_FALSE(ParseGpx("<kml></kml>").ok());
  EXPECT_FALSE(ParseGpx("<gpx></gpx>").ok());
}

TEST(GpxTest, WriteParseRoundTrip) {
  Trajectory trajectory =
      Traj({{1079256413.0, 0, 0}, {1079256423.0, 500, -250}});
  trajectory.set_name("test & ride");
  const LatLon origin{52.22, 6.89};
  const std::string document = WriteGpx(trajectory, origin);
  const GpxTrack parsed = ParseGpx(document).value();
  ASSERT_EQ(parsed.trajectory.size(), 2u);
  EXPECT_EQ(parsed.trajectory.name(), "test & ride");
  EXPECT_DOUBLE_EQ(parsed.trajectory[0].t, trajectory[0].t);
  // Projection + 8-decimal lat/lon round-trip: centimetre-level agreement.
  EXPECT_NEAR(parsed.trajectory[1].position.x, 500.0, 0.05);
  EXPECT_NEAR(parsed.trajectory[1].position.y, -250.0, 0.05);
}

TEST(GpxTest, FileRoundTrip) {
  const Trajectory trajectory = Traj({{0, 0, 0}, {10, 100, 100}});
  const std::string path = ::testing::TempDir() + "/stcomp_gpx_test.gpx";
  ASSERT_TRUE(WriteGpxFile(trajectory, {52.22, 6.89}, path).ok());
  EXPECT_EQ(ReadGpxFile(path).value().trajectory.size(), 2u);
}

TEST(PltTest, ParsesGeolifeFormat) {
  // 6 preamble lines, then lat,lon,0,alt_ft,days,date,time.
  const std::string text =
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n0\n"
      "39.906631,116.385564,0,492,39882.0,2009-03-10,00:00:00\n"
      "39.906725,116.385672,0,492,39882.000115740741,2009-03-10,00:00:10\n";
  const Trajectory trajectory = ParsePlt(text).value();
  ASSERT_EQ(trajectory.size(), 2u);
  EXPECT_NEAR(trajectory[1].t - trajectory[0].t, 10.0, 1e-3);
  EXPECT_NEAR(trajectory[0].position.x, 0.0, 1e-9);
  EXPECT_GT(trajectory[1].position.y, 0.0);
}

TEST(PltTest, DropsOutOfOrderFixes) {
  const std::string text =
      "h\nh\nh\nh\nh\nh\n"
      "39.9,116.3,0,0,39882.0,d,t\n"
      "39.9,116.3,0,0,39881.9,d,t\n"   // Goes backwards: dropped.
      "39.9,116.3,0,0,39882.1,d,t\n";
  EXPECT_EQ(ParsePlt(text).value().size(), 2u);
}

TEST(PltTest, RejectsGarbage) {
  EXPECT_FALSE(ParsePlt("").ok());
  EXPECT_FALSE(
      ParsePlt("h\nh\nh\nh\nh\nh\nnot,a,number,0,xx,d,t\n").ok());
}

}  // namespace
}  // namespace stcomp
