#include "stcomp/core/trajectory_view.h"

#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stcomp {
namespace {

TEST(TrajectoryViewTest, DefaultIsEmpty) {
  const TrajectoryView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.data(), nullptr);
  EXPECT_EQ(view.Duration(), 0.0);
}

TEST(TrajectoryViewTest, ImplicitConversionFromTrajectoryBorrowsStorage) {
  const Trajectory trajectory = testutil::RandomWalk(25, 7);
  const TrajectoryView view = trajectory;  // Implicit, zero-copy.
  EXPECT_EQ(view.size(), trajectory.size());
  EXPECT_EQ(view.data(), trajectory.points().data());
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i], trajectory[i]);
  }
  EXPECT_EQ(view.front(), trajectory.front());
  EXPECT_EQ(view.back(), trajectory.back());
}

TEST(TrajectoryViewTest, ImplicitConversionFromVector) {
  const std::vector<TimedPoint> points = {{0, 0, 0}, {1, 3, 4}, {2, 6, 8}};
  const TrajectoryView view = points;
  EXPECT_EQ(view.size(), points.size());
  EXPECT_EQ(view.data(), points.data());
  EXPECT_EQ(view[1], points[1]);
}

TEST(TrajectoryViewTest, RangeForIteratesAllPoints) {
  const Trajectory trajectory = testutil::Line(10, 5.0, 2.0, 0.0);
  const TrajectoryView view = trajectory;
  size_t i = 0;
  for (const TimedPoint& point : view) {
    EXPECT_EQ(point, trajectory[i++]);
  }
  EXPECT_EQ(i, trajectory.size());
}

TEST(TrajectoryViewTest, SubspanIsZeroCopyWindow) {
  const Trajectory trajectory = testutil::RandomWalk(20, 3);
  const TrajectoryView view = trajectory;
  const TrajectoryView window = view.subspan(4, 9);
  EXPECT_EQ(window.size(), 9u);
  EXPECT_EQ(window.data(), view.data() + 4);
  EXPECT_EQ(window.front(), trajectory[4]);
  EXPECT_EQ(window.back(), trajectory[12]);
  // Degenerate but valid: empty subspan at the end.
  EXPECT_TRUE(view.subspan(view.size(), 0).empty());
}

TEST(TrajectoryViewTest, SliceMatchesTrajectorySlice) {
  const Trajectory trajectory = testutil::RandomWalk(20, 11);
  const TrajectoryView view = trajectory;
  const TrajectoryView sliced = view.Slice(3, 15);
  const Trajectory expected = trajectory.Slice(3, 15);
  ASSERT_EQ(sliced.size(), expected.size());
  for (size_t i = 0; i < sliced.size(); ++i) {
    EXPECT_EQ(sliced[i], expected[i]);
  }
}

TEST(TrajectoryViewTest, DurationMatchesTrajectory) {
  const Trajectory trajectory = testutil::RandomWalk(30, 5);
  const TrajectoryView view = trajectory;
  EXPECT_EQ(view.Duration(), trajectory.Duration());
  const Trajectory single = testutil::Traj({{7.0, 1.0, 2.0}});
  EXPECT_EQ(TrajectoryView(single).Duration(), 0.0);
}

TEST(TrajectoryViewTest, SegmentSpeedBitIdenticalToTrajectory) {
  const Trajectory trajectory = testutil::RandomWalk(40, 19);
  const TrajectoryView view = trajectory;
  for (size_t i = 0; i + 1 < trajectory.size(); ++i) {
    // Exact equality: the view path must run the same arithmetic.
    EXPECT_EQ(view.SegmentSpeed(i), trajectory.SegmentSpeed(i)) << i;
  }
}

TEST(TrajectoryViewTest, PositionAtBitIdenticalToTrajectory) {
  const Trajectory trajectory = testutil::RandomWalk(40, 23);
  const TrajectoryView view = trajectory;
  // Sample timestamps, segment midpoints, and both endpoints.
  std::vector<double> times;
  for (size_t i = 0; i < trajectory.size(); ++i) {
    times.push_back(trajectory[i].t);
    if (i + 1 < trajectory.size()) {
      times.push_back(0.5 * (trajectory[i].t + trajectory[i + 1].t));
    }
  }
  for (double t : times) {
    const Result<Vec2> from_view = view.PositionAt(t);
    const Result<Vec2> from_trajectory = trajectory.PositionAt(t);
    ASSERT_TRUE(from_view.ok());
    ASSERT_TRUE(from_trajectory.ok());
    EXPECT_EQ(from_view->x, from_trajectory->x) << t;
    EXPECT_EQ(from_view->y, from_trajectory->y) << t;
  }
}

TEST(TrajectoryViewTest, PositionAtOutOfRangeMatchesTrajectoryStatus) {
  const Trajectory trajectory = testutil::Line(5, 10.0, 1.0, 0.0);
  const TrajectoryView view = trajectory;
  for (double t : {-1.0, trajectory.back().t + 1.0}) {
    const Result<Vec2> from_view = view.PositionAt(t);
    const Result<Vec2> from_trajectory = trajectory.PositionAt(t);
    ASSERT_FALSE(from_view.ok());
    ASSERT_FALSE(from_trajectory.ok());
    EXPECT_EQ(from_view.status().code(), from_trajectory.status().code());
    EXPECT_EQ(from_view.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(TrajectoryViewTest, FreeSubsetMatchesTrajectorySubset) {
  const Trajectory trajectory = testutil::RandomWalk(30, 31);
  const std::vector<int> kept = {0, 2, 3, 9, 17, 29};
  const Trajectory from_view = Subset(TrajectoryView(trajectory), kept);
  EXPECT_EQ(from_view, trajectory.Subset(kept));
}

TEST(TrajectoryViewTest, ViewOverSubspanFeedsAlgorithmsSafely) {
  // A view over the middle of a buffer is itself a valid trajectory
  // window: monotone timestamps, consistent accessors.
  const Trajectory trajectory = testutil::RandomWalk(50, 41);
  const TrajectoryView window = TrajectoryView(trajectory).subspan(10, 20);
  for (size_t i = 0; i + 1 < window.size(); ++i) {
    EXPECT_LT(window[i].t, window[i + 1].t);
  }
  EXPECT_EQ(window.Duration(), window.back().t - window.front().t);
}

}  // namespace
}  // namespace stcomp
