// Focused round-trip edge cases for store/varint and store/codec: the
// byte-length boundaries of the LEB128 coding, the extreme encodable
// values, and the zero-point / one-point trajectory paths of the codecs
// and the CRC frame.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "stcomp/store/codec.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/varint.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Traj;

TEST(VarintEdgeTest, EveryByteLengthBoundaryRoundTrips) {
  // 2^(7k) - 1 is the largest k-byte varint; 2^(7k) needs k+1 bytes.
  for (int k = 1; k <= 9; ++k) {
    const uint64_t last_k_byte = (uint64_t{1} << (7 * k)) - 1;
    const uint64_t first_k1_byte = uint64_t{1} << (7 * k);
    for (const uint64_t value : {last_k_byte, first_k1_byte}) {
      std::string buffer;
      PutVarint(value, &buffer);
      EXPECT_EQ(buffer.size(),
                value == last_k_byte ? static_cast<size_t>(k)
                                     : static_cast<size_t>(k) + 1)
          << "value=" << value;
      std::string_view cursor = buffer;
      EXPECT_EQ(GetVarint(&cursor).value(), value);
      EXPECT_TRUE(cursor.empty());
    }
  }
}

TEST(VarintEdgeTest, ZeroAndMaxRoundTrip) {
  std::string buffer;
  PutVarint(0, &buffer);
  EXPECT_EQ(buffer.size(), 1u);
  std::string_view cursor = buffer;
  EXPECT_EQ(GetVarint(&cursor).value(), 0u);

  buffer.clear();
  PutVarint(UINT64_MAX, &buffer);
  EXPECT_EQ(buffer.size(), 10u);
  cursor = buffer;
  EXPECT_EQ(GetVarint(&cursor).value(), UINT64_MAX);
}

TEST(VarintEdgeTest, OverlongEncodingRejected) {
  // 11 continuation bytes never terminate within the 10-byte cap.
  const std::string overlong(11, '\x80');
  std::string_view cursor = overlong;
  EXPECT_EQ(GetVarint(&cursor).status().code(), StatusCode::kDataLoss);
}

TEST(VarintEdgeTest, SignedExtremesRoundTrip) {
  for (const int64_t value : {int64_t{0}, int64_t{1}, int64_t{-1}, INT64_MAX,
                              INT64_MIN, INT64_MIN + 1}) {
    std::string buffer;
    PutSignedVarint(value, &buffer);
    std::string_view cursor = buffer;
    EXPECT_EQ(GetSignedVarint(&cursor).value(), value);
    EXPECT_TRUE(cursor.empty());
  }
}

TEST(CodecEdgeTest, EmptyTrajectoryEncodesToNothing) {
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    std::string buffer;
    ASSERT_TRUE(EncodePoints(Trajectory(), codec, &buffer).ok());
    EXPECT_TRUE(buffer.empty());
    std::string_view cursor = buffer;
    EXPECT_EQ(DecodePoints(&cursor, codec, 0).value().size(), 0u);
  }
}

TEST(CodecEdgeTest, SinglePointRoundTrips) {
  const Trajectory one = Traj({{12.5, -3.75, 1e6}});
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    std::string buffer;
    ASSERT_TRUE(EncodePoints(one, codec, &buffer).ok());
    std::string_view cursor = buffer;
    const auto points = DecodePoints(&cursor, codec, 1).value();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_NEAR(points[0].t, 12.5, kTimeQuantumS / 2);
    EXPECT_NEAR(points[0].position.x, -3.75, kCoordQuantumM / 2);
    EXPECT_NEAR(points[0].position.y, 1e6, kCoordQuantumM / 2);
  }
}

TEST(CodecEdgeTest, DecodeFromEmptyInputFails) {
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    std::string_view empty;
    EXPECT_FALSE(DecodePoints(&empty, codec, 1).ok());
  }
}

TEST(CodecEdgeTest, DeltaRejectsUnquantisableMagnitudes) {
  // |x| / 1 cm would exceed the int64 quantisation guard.
  const Trajectory huge = Traj({{0.0, 1e18, 0.0}, {1.0, 1e18, 1.0}});
  std::string buffer;
  EXPECT_EQ(EncodePoints(huge, Codec::kDelta, &buffer).code(),
            StatusCode::kOutOfRange);
  // The raw codec stores doubles verbatim and must accept the same input.
  EXPECT_TRUE(EncodePoints(huge, Codec::kRaw, &buffer).ok());
}

TEST(CodecEdgeTest, DeltaLargestQuantisableCoordinateRoundTrips) {
  // Just inside the 9.0e18 quantisation guard: 8.9e18 cm = 8.9e16 m.
  const double x = 8.9e16;
  const Trajectory edge = Traj({{0.0, x, -x}, {1.0, x, -x}});
  std::string buffer;
  ASSERT_TRUE(EncodePoints(edge, Codec::kDelta, &buffer).ok());
  std::string_view cursor = buffer;
  const auto points = DecodePoints(&cursor, Codec::kDelta, 2).value();
  ASSERT_EQ(points.size(), 2u);
  // At this magnitude double spacing dwarfs the 0.5 cm quantum; the bound
  // is the relative representation error.
  EXPECT_NEAR(points[1].position.x, x, 1e-10 * x);
  EXPECT_NEAR(points[1].position.y, -x, 1e-10 * x);
}

TEST(SerializationEdgeTest, EmptyTrajectoryFrameRoundTrips) {
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    Trajectory empty;
    empty.set_name("nothing-here");
    const std::string frame = SerializeTrajectory(empty, codec).value();
    std::string_view cursor = frame;
    const Trajectory decoded = DeserializeTrajectory(&cursor).value();
    EXPECT_TRUE(cursor.empty());
    EXPECT_EQ(decoded.size(), 0u);
    EXPECT_EQ(decoded.name(), "nothing-here");
  }
}

}  // namespace
}  // namespace stcomp
