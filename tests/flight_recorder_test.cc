// Flight-recorder tests: lock-free ring semantics, the exact
// drop-accounting invariant under racing writers (the TSan suite runs
// this file too), dump sink/budget plumbing, and the automatic dump on
// WAL sticky death.
//
// The invariant under test, from flight_recorder.h:
//
//   delivered-by-Drain + dropped() + still-buffered == total_recorded()

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/durable_file.h"
#include "stcomp/store/wal.h"

namespace stcomp::obs {
namespace {

TEST(FlightCodeTest, NamesAreStableIdentifiers) {
  EXPECT_EQ(FlightCodeName(FlightCode::kNone), "none");
  EXPECT_EQ(FlightCodeName(FlightCode::kFleetPush), "fleet_push");
  EXPECT_EQ(FlightCodeName(FlightCode::kWalCommit), "wal_commit");
  EXPECT_EQ(FlightCodeName(FlightCode::kWalDeath), "wal_death");
  EXPECT_EQ(FlightCodeName(FlightCode::kFsckCorrupt), "fsck_corrupt");
  EXPECT_EQ(FlightCodeName(FlightCode::kProbe), "probe");
  EXPECT_EQ(FlightCodeName(FlightCode::kFleetDrain), "fleet_drain");
}

TEST(FlightRecorderTest, RecordSnapshotDrainRoundTrip) {
  FlightRecorder recorder(/*capacity_per_thread=*/16, /*max_threads=*/4);
  recorder.Record(FlightCode::kProbe, "alpha", 1, 2);
  recorder.Record(FlightCode::kWalCommit, "beta", 3, 4);
  EXPECT_EQ(recorder.total_recorded(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const std::vector<FlightEvent> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].code, FlightCode::kProbe);
  EXPECT_STREQ(snapshot[0].tag, "alpha");
  EXPECT_EQ(snapshot[0].arg0, 1u);
  EXPECT_EQ(snapshot[0].arg1, 2u);
  EXPECT_EQ(snapshot[0].thread_id, CurrentThreadId());
  EXPECT_EQ(snapshot[1].code, FlightCode::kWalCommit);
  EXPECT_STREQ(snapshot[1].tag, "beta");

  // Snapshot is non-destructive; Drain consumes.
  EXPECT_EQ(recorder.Snapshot().size(), 2u);
  EXPECT_EQ(recorder.Drain().size(), 2u);
  EXPECT_TRUE(recorder.Drain().empty());
  // Everything was delivered; nothing was lost.
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 2u);
}

TEST(FlightRecorderTest, TagsTruncateAtCapacityMinusOne) {
  FlightRecorder recorder(8, 1);
  const std::string long_tag(64, 'x');
  recorder.Record(FlightCode::kProbe, long_tag);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].tag), FlightRecorder::kTagCapacity - 1);
  EXPECT_EQ(std::string(events[0].tag),
            std::string(FlightRecorder::kTagCapacity - 1, 'x'));
}

TEST(FlightRecorderTest, RingLapIsAccountedExactly) {
  constexpr size_t kCapacity = 8;
  FlightRecorder recorder(kCapacity, 1);
  constexpr uint64_t kRecords = 20;
  for (uint64_t i = 0; i < kRecords; ++i) {
    recorder.Record(FlightCode::kProbe, "lap", i);
  }
  // Snapshot sees at most one ring's worth, the newest events.
  const std::vector<FlightEvent> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), kCapacity);
  EXPECT_EQ(snapshot.front().arg0, kRecords - kCapacity);
  EXPECT_EQ(snapshot.back().arg0, kRecords - 1);

  // Drain delivers the survivors and accounts every lapped sequence
  // number: delivered + dropped == total_recorded.
  const std::vector<FlightEvent> drained = recorder.Drain();
  EXPECT_EQ(drained.size(), kCapacity);
  EXPECT_EQ(recorder.dropped(), kRecords - kCapacity);
  EXPECT_EQ(recorder.total_recorded(), kRecords);
  EXPECT_EQ(drained.size() + recorder.dropped(), recorder.total_recorded());
}

TEST(FlightRecorderTest, NoFreeSlotCountsAsRecordedAndDropped) {
  FlightRecorder recorder(8, /*max_threads=*/1);
  recorder.Record(FlightCode::kProbe, "owner");  // claims the only slot
  std::thread other([&recorder] {
    recorder.Record(FlightCode::kProbe, "refused");
    recorder.Record(FlightCode::kProbe, "refused");
  });
  other.join();
  EXPECT_EQ(recorder.total_recorded(), 3u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const std::vector<FlightEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].tag, "owner");
  EXPECT_EQ(events.size() + recorder.dropped(), recorder.total_recorded());
}

// The acceptance invariant under contention: many writers hammer small
// rings while a drainer races them; at the end every sequence number must
// be either delivered or counted dropped, exactly once. Runs under TSan
// in the sanitizer configuration of scripts/check.sh.
TEST(FlightRecorderTest, DropCounterAccountsEveryLostEventUnderRaces) {
  constexpr size_t kWriters = 8;
  constexpr uint64_t kRecordsPerWriter = 5000;
  // Small rings force heavy lapping; enough slots that nobody is refused.
  FlightRecorder recorder(/*capacity_per_thread=*/32,
                          /*max_threads=*/kWriters + 4);

  std::atomic<bool> stop{false};
  uint64_t delivered = 0;
  std::thread drainer([&recorder, &stop, &delivered] {
    while (!stop.load(std::memory_order_acquire)) {
      delivered += recorder.Drain().size();
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      const std::string tag = "writer-" + std::to_string(w);
      for (uint64_t i = 0; i < kRecordsPerWriter; ++i) {
        recorder.Record(FlightCode::kProbe, tag, i, w);
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_release);
  drainer.join();
  // Writers are gone: a final drain empties every ring.
  delivered += recorder.Drain().size();

  EXPECT_EQ(recorder.total_recorded(), kWriters * kRecordsPerWriter);
  EXPECT_EQ(delivered + recorder.dropped(), recorder.total_recorded());
  // Sanity: with rings this small against a burst this large, losses are
  // expected — the invariant must hold *with* a non-trivial drop count.
  EXPECT_GT(delivered, 0u);
}

TEST(FlightRecorderTest, SnapshotIsSafeAgainstConcurrentWriters) {
  constexpr size_t kWriters = 4;
  FlightRecorder recorder(16, kWriters + 2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        recorder.Record(FlightCode::kProbe, "snap");
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    for (const FlightEvent& event : recorder.Snapshot()) {
      // Torn reads must have been filtered out: every delivered event is
      // internally consistent.
      ASSERT_EQ(event.code, FlightCode::kProbe);
      ASSERT_STREQ(event.tag, "snap");
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& writer : writers) {
    writer.join();
  }
}

TEST(FlightRenderTest, TextAndJsonCarryEveryField) {
  FlightRecorder recorder(8, 1);
  recorder.Record(FlightCode::kWalCommit, "seg.stwal", 7, 42);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  const std::string text = RenderFlightText(events);
  EXPECT_NE(text.find("wal_commit"), std::string::npos) << text;
  EXPECT_NE(text.find("seg.stwal"), std::string::npos) << text;
  EXPECT_NE(text.find("arg0=7"), std::string::npos) << text;
  EXPECT_NE(text.find("arg1=42"), std::string::npos) << text;
  const std::string json = RenderFlightJson(events);
  EXPECT_NE(json.find("\"code\": \"wal_commit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tag\": \"seg.stwal\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"arg0\": 7"), std::string::npos) << json;
  EXPECT_EQ(RenderFlightJson({}), "[]\n");
}

TEST(FlightRenderTest, JsonEscapesHostileTagBytes) {
  FlightRecorder recorder(8, 1);
  recorder.Record(FlightCode::kProbe, "a\"b\\c\x01" "d");
  const std::string json = RenderFlightJson(recorder.Snapshot());
  EXPECT_NE(json.find("\"tag\": \"a\\\"b\\\\cd\""), std::string::npos)
      << json;
}

// RAII guard: capture dumps in a vector, restore the previous sink and a
// sane budget on the way out so later tests see the default behaviour.
class CapturedDumps {
 public:
  CapturedDumps() {
    previous_ = FlightRecorder::SetDumpSink(
        [this](std::string_view reason, const std::string& text) {
          reasons_.push_back(std::string(reason));
          texts_.push_back(text);
        });
  }
  ~CapturedDumps() {
    FlightRecorder::SetDumpSink(std::move(previous_));
    FlightRecorder::SetDumpBudgetForTest(8);
  }
  const std::vector<std::string>& reasons() const { return reasons_; }
  const std::vector<std::string>& texts() const { return texts_; }

 private:
  FlightRecorder::DumpSink previous_;
  std::vector<std::string> reasons_;
  std::vector<std::string> texts_;
};

TEST(FlightDumpTest, DumpGlobalRespectsBudget) {
  CapturedDumps dumps;
  FlightRecorder::SetDumpBudgetForTest(2);
  FlightRecorder::DumpGlobal("first");
  FlightRecorder::DumpGlobal("second");
  FlightRecorder::DumpGlobal("suppressed");
  ASSERT_EQ(dumps.reasons().size(), 2u);
  EXPECT_EQ(dumps.reasons()[0], "first");
  EXPECT_EQ(dumps.reasons()[1], "second");
  // The dump body is the rendered global snapshot, whatever it holds.
  EXPECT_NE(dumps.texts()[0].find("flight recorder:"), std::string::npos);
}

#if STCOMP_METRICS_ENABLED
// Acceptance: a WAL sticky death dumps the flight recorder automatically,
// and the dump holds the events leading up to the failing boundary —
// including the kWalDeath event naming the file and boundary index.
TEST(FlightDumpTest, WalStickyDeathTriggersDumpWithFailingBoundary) {
  const std::string dir = ::testing::TempDir() + "flight_dump_wal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  CapturedDumps dumps;
  FlightRecorder::SetDumpBudgetForTest(1);

  WalWriter writer;
  ASSERT_TRUE(writer.Open(dir + "/death.stwal").ok());
  // A healthy commit first, so the dump shows normal traffic before the
  // failure (the "last moments" the recorder exists for).
  WalRecord record = WalRecord::Append("obj-dump", TimedPoint(1.0, 2.0, 3.0));
  ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Commit().ok());

  size_t boundary = 0;
  writer.set_write_hook(
      [](size_t, std::string_view) {
        return WriteFault{WriteFault::Action::kCrash, 0, ""};
      },
      &boundary);
  ASSERT_TRUE(writer.Append(record).ok());
  EXPECT_EQ(writer.Commit().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(writer.dead());

  ASSERT_EQ(dumps.reasons().size(), 1u);
  EXPECT_NE(dumps.reasons()[0].find("wal sticky death"), std::string::npos);
  const std::string& text = dumps.texts()[0];
  EXPECT_NE(text.find("wal_death"), std::string::npos) << text;
  // Both the death event and the earlier healthy commit are tagged with
  // the WAL file's name.
  EXPECT_NE(text.find("death.stwal"), std::string::npos) << text;
  EXPECT_NE(text.find("wal_commit"), std::string::npos) << text;

  // The death already burned the budget; a second death cannot flood.
  EXPECT_EQ(writer.Commit().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dumps.reasons().size(), 1u);
  std::filesystem::remove_all(dir);
}
#endif  // STCOMP_METRICS_ENABLED

}  // namespace
}  // namespace stcomp::obs
