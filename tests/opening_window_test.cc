#include "stcomp/algo/opening_window.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stcomp::algo {
namespace {

using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

// A zig-zag fixture where violations are easy to place: mostly flat with
// one spike at index `spike`.
Trajectory SpikeAt(int n, int spike, double height) {
  std::vector<TimedPoint> points;
  for (int i = 0; i < n; ++i) {
    points.emplace_back(i, 10.0 * i, i == spike ? height : 0.0);
  }
  return testutil::Traj(std::move(points));
}

TEST(OpeningWindowTest, FlatLineKeepsEndpoints) {
  const Trajectory trajectory = Line(30, 1.0, 5.0, 0.0);
  EXPECT_EQ(Nopw(trajectory, 1.0), (IndexList{0, 29}));
  EXPECT_EQ(Bopw(trajectory, 1.0), (IndexList{0, 29}));
}

TEST(OpeningWindowTest, NopwBreaksAtViolatingPoint) {
  const Trajectory trajectory = SpikeAt(10, 4, 50.0);
  // As the float approaches and passes the spike the chord rotates, so the
  // first violation is at interior 2 when the float reaches the spike
  // (hand-traced); the spike itself is retained two cuts later.
  const IndexList kept = Nopw(trajectory, 10.0);
  ASSERT_GE(kept.size(), 3u);
  EXPECT_EQ(kept[1], 2);
  EXPECT_NE(std::find(kept.begin(), kept.end(), 4), kept.end());
  EXPECT_TRUE(IsValidIndexList(trajectory, kept));
}

TEST(OpeningWindowTest, BopwBreaksJustBeforeTheFloat) {
  const Trajectory trajectory = SpikeAt(10, 4, 50.0);
  // The spike first violates when the float reaches 5 (first window where 4
  // is interior: anchor=0, float=5... actually float=5 makes interiors
  // 1..4). BOPW cuts at float-1 = 4. To discriminate from NOPW, place the
  // spike earlier than float-1: spike at 2 violates when float=4 is far
  // enough for the chord to rotate away. Use a direct construction instead:
  const Trajectory zigzag = Traj({{0, 0, 0},
                                  {1, 10, 12},
                                  {2, 20, 0},
                                  {3, 30, 0},
                                  {4, 40, 0},
                                  {5, 50, 0}});
  // With eps=5: float=2 window (0..2), interior 1 at perpendicular
  // distance ~12 -> violation. NOPW cuts at 1, BOPW cuts at float-1 = 1 as
  // well; grow further. For float=3 after anchor=1 etc. Assert both
  // produce valid output and BOPW compresses at least as much as NOPW.
  const IndexList nopw = Nopw(zigzag, 5.0);
  const IndexList bopw = Bopw(zigzag, 5.0);
  EXPECT_TRUE(IsValidIndexList(zigzag, nopw));
  EXPECT_TRUE(IsValidIndexList(zigzag, bopw));
  EXPECT_LE(bopw.size(), nopw.size());
}

TEST(OpeningWindowTest, BopwCompressesMoreInAggregate) {
  // The paper's Fig. 8 finding: BOPW gives higher compression. Per cut it
  // advances the anchor at least as far as NOPW, but greedily longer first
  // segments can occasionally cost a point later, so the claim is about
  // the aggregate, not every single run.
  size_t bopw_total = 0;
  size_t nopw_total = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Trajectory trajectory = RandomWalk(150, seed);
    for (double epsilon : {20.0, 40.0, 80.0}) {
      bopw_total += Bopw(trajectory, epsilon).size();
      nopw_total += Nopw(trajectory, epsilon).size();
    }
  }
  EXPECT_LT(bopw_total, nopw_total);
}

TEST(OpeningWindowTest, CommittedSegmentsRespectThreshold) {
  // Every committed segment (except the forced final one) passed its
  // window check: all interiors within eps of the segment's line.
  const Trajectory trajectory = RandomWalk(200, 9);
  const double epsilon = 30.0;
  const IndexList kept = Nopw(trajectory, epsilon);
  for (size_t s = 1; s + 1 < kept.size(); ++s) {
    for (int i = kept[s - 1] + 1; i < kept[s]; ++i) {
      EXPECT_LE(PointToLineDistance(
                    trajectory[static_cast<size_t>(i)].position,
                    trajectory[static_cast<size_t>(kept[s - 1])].position,
                    trajectory[static_cast<size_t>(kept[s])].position),
                epsilon)
          << "segment " << s << " interior " << i;
    }
  }
}

TEST(OpeningWindowTest, LastPointAlwaysKept) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    const Trajectory trajectory = RandomWalk(57, seed);
    for (double epsilon : {5.0, 50.0, 500.0}) {
      const IndexList nopw = Nopw(trajectory, epsilon);
      const IndexList bopw = Bopw(trajectory, epsilon);
      EXPECT_EQ(nopw.back(), 56);
      EXPECT_EQ(bopw.back(), 56);
    }
  }
}

TEST(OpeningWindowTest, TinyInputs) {
  Trajectory empty;
  EXPECT_TRUE(Nopw(empty, 1.0).empty());
  const Trajectory two = Traj({{0, 0, 0}, {1, 100, 100}});
  EXPECT_EQ(Nopw(two, 0.0), (IndexList{0, 1}));
  EXPECT_EQ(Bopw(two, 0.0), (IndexList{0, 1}));
}

TEST(OpeningWindowTest, GenericMetricInjection) {
  // A metric that always violates forces keeping every point (cut at each
  // first interior).
  const Trajectory trajectory = Line(6, 1.0, 1.0, 0.0);
  const IndexList kept = OpeningWindow(
      trajectory, 0.5, BreakPolicy::kNormal,
      [](TrajectoryView, int, int, int) { return 1.0; });
  EXPECT_EQ(kept, (IndexList{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace stcomp::algo
