// The query differential suite (DESIGN.md §17): index-accelerated
// RunQuery must produce BITWISE-identical answers to the brute-force
// decode-everything oracle — across every query type, every registered
// compression algorithm's output, both codecs, seeded uniform and Zipf
// fleets, and shard counts {1, 4} through PartitionedSegmentStore. Plus
// the request-validation and CLI-spec-parsing contracts and the
// error-bound accounting.

#include "stcomp/store/query.h"

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/algo/registry.h"
#include "stcomp/sim/random.h"
#include "stcomp/store/partitioned_store.h"
#include "stcomp/store/segment_store.h"
#include "stcomp/store/st_index.h"
#include "stcomp/store/trajectory_store.h"
#include "test_util.h"

namespace stcomp {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "query_oracle_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A seeded fleet: `uniform` gives every object the same length; Zipf
// skews lengths so block counts vary from one block to many.
std::vector<Trajectory> Fleet(size_t objects, uint64_t seed, bool uniform) {
  std::vector<Trajectory> walks;
  walks.reserve(objects);
  for (size_t i = 0; i < objects; ++i) {
    const int fixes =
        uniform ? 150
                : std::max(2, static_cast<int>(300.0 / static_cast<double>(i + 1)));
    walks.push_back(testutil::RandomWalk(fixes, seed + i));
  }
  return walks;
}

// Deterministic request mix covering every type; parameters are drawn
// around the RandomWalk envelope (a few km around the origin, t in
// [0, ~1500]) so queries land empty, partial and saturated.
std::vector<QueryRequest> RequestMix(uint64_t seed, double declared_error_m) {
  Rng rng(seed);
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 12; ++i) {
    const double t0 = rng.NextUniform(-100.0, 1200.0);
    const double t1 = t0 + rng.NextUniform(0.0, 800.0);

    QueryRequest window;
    window.type = QueryType::kTimeWindow;
    window.t0 = t0;
    window.t1 = t1;
    window.declared_error_m = declared_error_m;
    requests.push_back(window);

    QueryRequest range;
    range.type = QueryType::kRange;
    range.t0 = t0;
    range.t1 = t1;
    const Vec2 corner{rng.NextUniform(-4000.0, 3000.0),
                      rng.NextUniform(-4000.0, 3000.0)};
    const double edge = rng.NextUniform(50.0, 3000.0);
    range.box = {corner, corner + Vec2{edge, edge}};
    range.declared_error_m = declared_error_m;
    requests.push_back(range);

    QueryRequest corridor;
    corridor.type = QueryType::kCorridor;
    corridor.t0 = t0;
    corridor.t1 = t1;
    corridor.radius_m = rng.NextUniform(10.0, 500.0);
    const int waypoints = 1 + (i % 3);
    Vec2 at{rng.NextUniform(-3000.0, 3000.0), rng.NextUniform(-3000.0, 3000.0)};
    for (int w = 0; w < waypoints; ++w) {
      corridor.corridor.push_back(at);
      at += Vec2{rng.NextUniform(-1500.0, 1500.0),
                 rng.NextUniform(-1500.0, 1500.0)};
    }
    corridor.declared_error_m = declared_error_m;
    requests.push_back(corridor);

    QueryRequest nearest;
    nearest.type = QueryType::kNearest;
    nearest.t0 = t0;
    nearest.t1 = t1;
    nearest.point = {rng.NextUniform(-3000.0, 3000.0),
                     rng.NextUniform(-3000.0, 3000.0)};
    nearest.k = 1 + static_cast<size_t>(i % 5);
    nearest.declared_error_m = declared_error_m;
    requests.push_back(nearest);
  }
  // The unbounded-window degenerate of each type.
  QueryRequest all;
  all.type = QueryType::kTimeWindow;
  requests.push_back(all);
  QueryRequest everywhere;
  everywhere.type = QueryType::kRange;
  everywhere.box = {{-1e7, -1e7}, {1e7, 1e7}};
  requests.push_back(everywhere);
  return requests;
}

void ExpectSameAnswer(const QueryAnswer& engine, const QueryAnswer& oracle,
                      const QueryRequest& request, const std::string& label) {
  EXPECT_EQ(engine.error_bound_m, oracle.error_bound_m) << label;
  ASSERT_EQ(engine.hits.size(), oracle.hits.size())
      << label << " type=" << QueryTypeName(request.type);
  for (size_t i = 0; i < engine.hits.size(); ++i) {
    EXPECT_EQ(engine.hits[i].id, oracle.hits[i].id) << label << " hit " << i;
    // Bitwise, not approximate: both sides decode the same storage values
    // through the same clipping helpers.
    EXPECT_EQ(engine.hits[i].first_hit_t, oracle.hits[i].first_hit_t)
        << label << " hit " << i;
    EXPECT_EQ(engine.hits[i].distance_m, oracle.hits[i].distance_m)
        << label << " hit " << i;
  }
  // The index must never decode more blocks than a full scan holds.
  EXPECT_LE(engine.stats.blocks_decoded, engine.stats.blocks_total) << label;
  EXPECT_LE(engine.stats.blocks_considered, engine.stats.blocks_total) << label;
}

void RunDifferential(const TrajectoryStore& store, uint64_t request_seed,
                     double declared_error_m, const std::string& label) {
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  ASSERT_TRUE(index.Matches(store));
  for (const QueryRequest& request :
       RequestMix(request_seed, declared_error_m)) {
    const Result<QueryAnswer> engine = RunQuery(store, index, request);
    const Result<QueryAnswer> oracle = BruteForceQuery(store, request);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    ExpectSameAnswer(*engine, *oracle, request, label);
  }
}

TEST(QueryOracleTest, UniformFleetMatchesOracle) {
  for (const Codec codec : {Codec::kRaw, Codec::kDelta}) {
    TrajectoryStore store(codec);
    const std::vector<Trajectory> walks = Fleet(10, 2000, /*uniform=*/true);
    for (size_t i = 0; i < walks.size(); ++i) {
      ASSERT_TRUE(store.Insert("veh-" + std::to_string(i), walks[i]).ok());
    }
    RunDifferential(store, 31, 0.0,
                    codec == Codec::kRaw ? "uniform/raw" : "uniform/delta");
  }
}

TEST(QueryOracleTest, ZipfFleetMatchesOracle) {
  TrajectoryStore store;
  const std::vector<Trajectory> walks = Fleet(12, 6000, /*uniform=*/false);
  for (size_t i = 0; i < walks.size(); ++i) {
    ASSERT_TRUE(store.Insert("veh-" + std::to_string(i), walks[i]).ok());
  }
  RunDifferential(store, 47, 25.0, "zipf/delta");
}

// Single-fix objects exercise the degenerate-segment paths on both sides.
TEST(QueryOracleTest, SinglePointObjectsMatchOracle) {
  TrajectoryStore store;
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store
                    .Insert("dot-" + std::to_string(i),
                            testutil::Traj({{rng.NextUniform(0.0, 1000.0),
                                             rng.NextUniform(-2000.0, 2000.0),
                                             rng.NextUniform(-2000.0, 2000.0)}}))
                    .ok());
  }
  RunDifferential(store, 53, 0.0, "single-point");
}

// Every registered algorithm's output lands in the store and must stay
// queryable: simplified trajectories have irregular gaps, which is
// exactly where block extents and clipping earn their keep.
TEST(QueryOracleTest, AllRegisteredAlgorithmsMatchOracle) {
  const std::vector<Trajectory> walks = Fleet(6, 12000, /*uniform=*/true);
  for (const algo::AlgorithmInfo& info : algo::AllAlgorithms()) {
    TrajectoryStore store;
    algo::AlgorithmParams params;
    params.epsilon_m = 40.0;
    for (size_t i = 0; i < walks.size(); ++i) {
      const Trajectory simplified =
          walks[i].Subset(info.run(walks[i], params));
      ASSERT_TRUE(
          store.Insert("veh-" + std::to_string(i), simplified).ok());
    }
    RunDifferential(store, 61, params.epsilon_m, "algo=" + info.name);
  }
}

// The cross-shard fan-out must be indistinguishable from an unsharded
// store with the same contents, for shard counts 1 and 4, uniform and
// Zipf fleets.
TEST(QueryOracleTest, ShardedQueryMatchesUnshardedOracle) {
  for (const bool uniform : {true, false}) {
    const std::vector<Trajectory> walks =
        Fleet(10, uniform ? 20000 : 30000, uniform);
    TrajectoryStore reference;
    for (size_t i = 0; i < walks.size(); ++i) {
      ASSERT_TRUE(
          reference.Insert("veh-" + std::to_string(i), walks[i]).ok());
    }
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      const std::string dir =
          FreshDir((uniform ? "uniform_" : "zipf_") + std::to_string(shards));
      PartitionedSegmentStore::Options options;
      options.num_shards = shards;
      PartitionedSegmentStore partitioned(options);
      ASSERT_TRUE(partitioned.Open(dir).ok());
      for (size_t i = 0; i < walks.size(); ++i) {
        ASSERT_TRUE(
            partitioned.Insert("veh-" + std::to_string(i), walks[i]).ok());
      }
      for (const QueryRequest& request : RequestMix(71, 10.0)) {
        const Result<QueryAnswer> engine = partitioned.Query(request);
        const Result<QueryAnswer> oracle =
            BruteForceQuery(reference, request);
        ASSERT_TRUE(engine.ok()) << engine.status().ToString();
        ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
        ExpectSameAnswer(*engine, *oracle, request,
                         (uniform ? "uniform" : "zipf") + std::string("/") +
                             std::to_string(shards) + " shards");
      }
      std::filesystem::remove_all(dir);
    }
  }
}

// Mutations through the segment store must be visible to the next query —
// the lazily-rebuilt index may never serve stale candidates.
TEST(QueryOracleTest, SegmentStoreQueryTracksMutations) {
  const std::string dir = FreshDir("mutations");
  SegmentStore store;
  ASSERT_TRUE(store.Open(dir).ok());
  QueryRequest everywhere;
  everywhere.type = QueryType::kRange;
  everywhere.box = {{-1e7, -1e7}, {1e7, 1e7}};

  ASSERT_TRUE(store.Insert("a", testutil::RandomWalk(80, 1)).ok());
  Result<QueryAnswer> answer = store.Query(everywhere);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->hits.size(), 1u);

  ASSERT_TRUE(store.Insert("b", testutil::RandomWalk(80, 2)).ok());
  ASSERT_TRUE(store.Append("a", {1e6, 50.0, 50.0}).ok());
  answer = store.Query(everywhere);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->hits.size(), 2u);

  ASSERT_TRUE(store.Remove("a").ok());
  answer = store.Query(everywhere);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->hits.size(), 1u);
  EXPECT_EQ(answer->hits[0].id, "b");

  const Result<QueryAnswer> oracle = BruteForceQuery(store.store(), everywhere);
  ASSERT_TRUE(oracle.ok());
  ExpectSameAnswer(*answer, *oracle, everywhere, "post-mutation");
  std::filesystem::remove_all(dir);
}

TEST(QueryOracleTest, ErrorBoundAccountsForCodecQuantisation) {
  QueryRequest request;
  request.declared_error_m = 30.0;
  EXPECT_EQ(QueryErrorBound(request, Codec::kRaw), 30.0);
  EXPECT_EQ(QueryErrorBound(request, Codec::kDelta), 30.0 + kCoordQuantumM);

  TrajectoryStore store;  // kDelta
  ASSERT_TRUE(store.Insert("veh", testutil::RandomWalk(40, 4)).ok());
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  request.type = QueryType::kRange;
  request.box = {{-100.0, -100.0}, {100.0, 100.0}};
  const Result<QueryAnswer> answer = RunQuery(store, index, request);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->error_bound_m, 30.0 + kCoordQuantumM);
}

// The widened predicate really widens: an object hugging the box at a
// distance inside the declared error must be reported.
TEST(QueryOracleTest, DeclaredErrorWidensMatches) {
  TrajectoryStore store(Codec::kRaw);
  // A straight run along y = 105, outside a box whose max y is 100.
  ASSERT_TRUE(
      store.Insert("edge", testutil::Line(10, 10.0, 20.0, 0.0, 0.0, 105.0))
          .ok());
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  QueryRequest request;
  request.type = QueryType::kRange;
  request.box = {{0.0, 0.0}, {2000.0, 100.0}};
  Result<QueryAnswer> answer = RunQuery(store, index, request);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->hits.empty());
  request.declared_error_m = 10.0;
  answer = RunQuery(store, index, request);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->hits.size(), 1u);
  const Result<QueryAnswer> oracle = BruteForceQuery(store, request);
  ASSERT_TRUE(oracle.ok());
  ExpectSameAnswer(*answer, *oracle, request, "widened");
}

TEST(QueryValidationTest, RejectsMalformedRequests) {
  QueryRequest request;
  EXPECT_TRUE(ValidateQuery(request).ok());

  request.t0 = 10.0;
  request.t1 = 5.0;
  EXPECT_EQ(ValidateQuery(request).code(), StatusCode::kInvalidArgument);
  request.t1 = 20.0;
  EXPECT_TRUE(ValidateQuery(request).ok());

  request.declared_error_m = -1.0;
  EXPECT_EQ(ValidateQuery(request).code(), StatusCode::kInvalidArgument);
  request.declared_error_m = 0.0;

  request.type = QueryType::kRange;
  request.box = {{10.0, 0.0}, {0.0, 10.0}};  // min.x > max.x
  EXPECT_EQ(ValidateQuery(request).code(), StatusCode::kInvalidArgument);
  request.box = {{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_TRUE(ValidateQuery(request).ok());

  request.type = QueryType::kCorridor;
  EXPECT_EQ(ValidateQuery(request).code(),
            StatusCode::kInvalidArgument);  // empty corridor
  request.corridor = {{0.0, 0.0}, {100.0, 100.0}};
  request.radius_m = -5.0;
  EXPECT_EQ(ValidateQuery(request).code(), StatusCode::kInvalidArgument);
  request.radius_m = 50.0;
  EXPECT_TRUE(ValidateQuery(request).ok());

  request.type = QueryType::kNearest;
  request.k = 0;
  EXPECT_EQ(ValidateQuery(request).code(), StatusCode::kInvalidArgument);
  request.k = 3;
  request.point = {std::nan(""), 0.0};
  EXPECT_EQ(ValidateQuery(request).code(), StatusCode::kInvalidArgument);
  request.point = {0.0, 0.0};
  EXPECT_TRUE(ValidateQuery(request).ok());
}

TEST(QuerySpecTest, ParsesEveryType) {
  Result<QueryRequest> request = ParseQuerySpec("window:10:20");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, QueryType::kTimeWindow);
  EXPECT_EQ(request->t0, 10.0);
  EXPECT_EQ(request->t1, 20.0);

  request = ParseQuerySpec("window:-:-");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->t0, std::numeric_limits<double>::lowest());
  EXPECT_EQ(request->t1, std::numeric_limits<double>::max());

  request = ParseQuerySpec("range:0:100:-50:-60:70:80");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, QueryType::kRange);
  EXPECT_EQ(request->box.min.x, -50.0);
  EXPECT_EQ(request->box.min.y, -60.0);
  EXPECT_EQ(request->box.max.x, 70.0);
  EXPECT_EQ(request->box.max.y, 80.0);

  request = ParseQuerySpec("corridor:0:600:25:0,0;100,50;200,0");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, QueryType::kCorridor);
  EXPECT_EQ(request->radius_m, 25.0);
  ASSERT_EQ(request->corridor.size(), 3u);
  EXPECT_EQ(request->corridor[1].x, 100.0);
  EXPECT_EQ(request->corridor[1].y, 50.0);

  request = ParseQuerySpec("nearest:-:-:5:1000:2000");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, QueryType::kNearest);
  EXPECT_EQ(request->k, 5u);
  EXPECT_EQ(request->point.x, 1000.0);
  EXPECT_EQ(request->point.y, 2000.0);
}

TEST(QuerySpecTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "bogus:1:2", "window:1", "window:abc:2", "window:20:10",
        "range:0:1:2:3:4", "range:0:1:50:0:10:10", "corridor:0:1:-5:0,0",
        "corridor:0:1:10:", "corridor:0:1:10:0;1", "nearest:0:1:0:0:0",
        "nearest:0:1:x:0:0", "nearest:0:1:2:0"}) {
    const Result<QueryRequest> request = ParseQuerySpec(spec);
    EXPECT_FALSE(request.ok()) << "accepted: " << spec;
    if (!request.ok()) {
      EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
          << spec;
    }
  }
}

TEST(QueryJsonTest, RenderEscapesIdsAndReportsStats) {
  TrajectoryStore store(Codec::kRaw);
  const std::string hostile_id = "veh-\"quoted\"\nnon-ascii-\xc3\xa9";
  ASSERT_TRUE(store.Insert(hostile_id, testutil::RandomWalk(10, 6)).ok());
  const SpatioTemporalIndex index = SpatioTemporalIndex::BuildFromStore(store);
  QueryRequest request;
  request.type = QueryType::kRange;
  request.box = {{-1e6, -1e6}, {1e6, 1e6}};
  const Result<QueryAnswer> answer = RunQuery(store, index, request);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->hits.size(), 1u);
  const std::string json = RenderQueryAnswerJson(request, *answer);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  // The raw quote and newline must not survive unescaped inside the id.
  EXPECT_EQ(json.find(hostile_id), std::string::npos) << json;
  EXPECT_NE(json.find("\"type\":\"range\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"blocks_decoded\""), std::string::npos) << json;
}

}  // namespace
}  // namespace stcomp
