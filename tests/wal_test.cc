#include "stcomp/store/wal.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/durable_file.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/trajectory_store.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Traj;

WalRecord AppendRecord(const std::string& id, double t, double x, double y) {
  return WalRecord::Append(id, TimedPoint(t, x, y));
}

TEST(WalFrameTest, RoundTripEveryRecordType) {
  std::vector<WalRecord> records;
  records.push_back(AppendRecord("bus-1", 1.5, -3.25, 7.0));
  records.push_back(WalRecord::Insert("bus-2", "frame-bytes"));
  records.push_back(WalRecord::Remove("bus-3"));
  records.push_back(WalRecord::Commit());
  for (const WalRecord& record : records) {
    const std::string frame = EncodeWalFrame(record);
    std::string_view cursor = frame;
    const Result<WalRecord> decoded = DecodeWalFrame(&cursor);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(cursor.empty());
    EXPECT_EQ(decoded->type, record.type);
    EXPECT_EQ(decoded->object_id, record.object_id);
    EXPECT_EQ(decoded->payload, record.payload);
    if (record.type == WalRecordType::kAppend) {
      // Bit-exact: the WAL carries raw doubles, not the quantising codec.
      EXPECT_EQ(decoded->point.t, record.point.t);
      EXPECT_EQ(decoded->point.position.x, record.point.position.x);
      EXPECT_EQ(decoded->point.position.y, record.point.position.y);
    }
  }
}

TEST(WalFrameTest, EveryByteFlipIsDetected) {
  const std::string frame = EncodeWalFrame(AppendRecord("obj", 2.0, 3.0, 4.0));
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string corrupted = frame;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x40);
    std::string_view cursor = corrupted;
    const Result<WalRecord> decoded = DecodeWalFrame(&cursor);
    // Either the decode fails, or the flip hit redundant varint bits —
    // but a silently different record is never acceptable.
    if (decoded.ok()) {
      EXPECT_EQ(decoded->object_id, "obj") << "flip at byte " << i;
      EXPECT_EQ(decoded->point.t, 2.0) << "flip at byte " << i;
    }
  }
}

TEST(WalScanTest, OnlyCommittedBatchesReplay) {
  std::string image;
  image += EncodeWalFrame(AppendRecord("a", 1.0, 0.0, 0.0));
  image += EncodeWalFrame(AppendRecord("a", 2.0, 1.0, 1.0));
  image += EncodeWalFrame(WalRecord::Commit());
  image += EncodeWalFrame(AppendRecord("a", 3.0, 2.0, 2.0));  // Uncommitted.
  WalScanStats stats;
  const std::vector<WalRecord> records = ScanWal(image, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.records_replayed, 2u);
  EXPECT_EQ(stats.records_dropped_uncommitted, 1u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(records[1].point.t, 2.0);
}

TEST(WalScanTest, SingleCorruptFrameCostsExactlyThatRecord) {
  // N records, one corrupted: the scan salvages past it and recovers the
  // other N-1 (the acceptance criterion for salvage recovery).
  constexpr int kRecords = 8;
  std::vector<std::string> frames;
  std::string image;
  for (int i = 0; i < kRecords; ++i) {
    frames.push_back(EncodeWalFrame(
        AppendRecord("obj", 1.0 + i, 10.0 * i, -5.0 * i)));
    image += frames.back();
  }
  image += EncodeWalFrame(WalRecord::Commit());

  // Corrupt one byte in the middle of frame 3's payload.
  size_t offset = 0;
  for (int i = 0; i < 3; ++i) {
    offset += frames[static_cast<size_t>(i)].size();
  }
  std::string corrupted = image;
  corrupted[offset + frames[3].size() / 2] ^= 0x5a;

  WalScanStats stats;
  const std::vector<WalRecord> records = ScanWal(corrupted, &stats);
  EXPECT_EQ(records.size(), static_cast<size_t>(kRecords - 1));
  EXPECT_GE(stats.frames_salvaged_past, 1u);
  EXPECT_FALSE(stats.log.empty());
  // Every survivor decodes to one of the originals, still in order.
  double last_t = 0.0;
  for (const WalRecord& record : records) {
    EXPECT_GT(record.point.t, last_t);
    last_t = record.point.t;
  }
}

TEST(WalScanTest, TornTailIsReportedNotFatal) {
  std::string image;
  image += EncodeWalFrame(AppendRecord("a", 1.0, 0.0, 0.0));
  image += EncodeWalFrame(WalRecord::Commit());
  const std::string tail = EncodeWalFrame(AppendRecord("a", 2.0, 1.0, 1.0));
  image += tail.substr(0, tail.size() / 2);  // Interrupted final write.
  WalScanStats stats;
  const std::vector<WalRecord> records = ScanWal(image, &stats);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_TRUE(stats.torn_tail);
}

TEST(WalScanTest, EmptyAndGarbageImagesNeverFail) {
  WalScanStats stats;
  EXPECT_TRUE(ScanWal("", &stats).empty());
  EXPECT_TRUE(ScanWal("this is not a wal at all", &stats).empty());
  EXPECT_TRUE(stats.torn_tail);
}

TEST(WalWriterTest, CommitMakesBatchDurableAndDeathIsSticky) {
  const std::string dir = ::testing::TempDir() + "wal_writer_test";
  const std::string path = dir + "/test.stwal";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append(AppendRecord("a", 1.0, 0.0, 0.0)).ok());
  EXPECT_EQ(writer.staged_records(), 1u);
  // Staged but uncommitted: nothing on disk yet.
  EXPECT_EQ(ReadFileToString(path)->size(), 0u);
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(writer.staged_records(), 0u);
  {
    const Result<std::string> image = ReadFileToString(path);
    ASSERT_TRUE(image.ok());
    WalScanStats stats;
    EXPECT_EQ(ScanWal(*image, &stats).size(), 1u);
  }

  // Inject a crash at the next write boundary: the writer dies and every
  // later operation returns the same kUnavailable.
  size_t boundary = 0;
  writer.set_write_hook(
      [](size_t, std::string_view) {
        return WriteFault{WriteFault::Action::kCrash, 0, ""};
      },
      &boundary);
  ASSERT_TRUE(writer.Append(AppendRecord("a", 2.0, 1.0, 1.0)).ok());
  const Status died = writer.Commit();
  EXPECT_EQ(died.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(writer.dead());
  EXPECT_EQ(writer.Append(AppendRecord("a", 3.0, 2.0, 2.0)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(writer.Commit().code(), StatusCode::kUnavailable);

  // The dead batch never reached the log.
  const Result<std::string> image = ReadFileToString(path);
  ASSERT_TRUE(image.ok());
  WalScanStats stats;
  EXPECT_EQ(ScanWal(*image, &stats).size(), 1u);
}

TEST(TrajectoryFrameScanTest, SalvagesAllButTheCorruptFrame) {
  TrajectoryStore store(Codec::kRaw);
  constexpr int kObjects = 6;
  for (int i = 0; i < kObjects; ++i) {
    Trajectory trajectory = Traj({{1.0, 1.0 * i, 2.0}, {2.0, 3.0 * i, 4.0}});
    trajectory.set_name("obj-" + std::to_string(i));
    ASSERT_TRUE(store.Insert("obj-" + std::to_string(i), trajectory).ok());
  }
  const Result<std::string> image = store.SerializeToString();
  ASSERT_TRUE(image.ok());

  // Flip a byte about halfway in (inside some middle frame).
  std::string corrupted = *image;
  corrupted[corrupted.size() / 2] ^= 0x11;

  // Strict load refuses (the golden-format contract) ...
  TrajectoryStore strict(Codec::kRaw);
  EXPECT_FALSE(strict.LoadFromBuffer(corrupted).ok());

  // ... salvage recovers every frame but the corrupted one.
  TrajectoryStore salvaged(Codec::kRaw);
  FrameScanStats stats;
  ASSERT_TRUE(salvaged.SalvageFromBuffer(corrupted, &stats).ok());
  EXPECT_EQ(salvaged.ObjectIds().size(), static_cast<size_t>(kObjects - 1));
  EXPECT_GE(stats.frames_salvaged_past + (stats.torn_tail ? 1u : 0u), 1u);
  EXPECT_FALSE(stats.log.empty());
}

}  // namespace
}  // namespace stcomp
