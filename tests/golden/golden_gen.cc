// Regenerates the checked-in golden store-format blob and the binary seed
// corpora for the serialization/store fuzz targets. Run manually only when
// the on-disk format changes *on purpose*:
//
//   ./golden_gen <tests/golden dir> <tests/fuzz/corpus dir>
//
// golden_format_test locks the emitted bytes: if it fails after a code
// change, the change broke format compatibility — regenerating the blob is
// the last resort, not the first fix.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/net/frame.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/st_index.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/store/wal.h"

namespace {

stcomp::Trajectory GoldenTrajectory() {
  // Values sit on the kDelta quantisation grid (1 ms, 1 cm) so the delta
  // frame loses nothing beyond double rounding; golden_format_test.cc
  // rebuilds this same literal.
  auto trajectory = stcomp::Trajectory::FromPoints({
      {0.0, 0.0, 0.0},
      {5.0, 12.34, -7.25},
      {10.5, 25.0, -14.5},
      {16.25, 40.41, -21.0},
      {30.0, 100.0, 3.75},
  });
  STCOMP_CHECK_OK(trajectory.status());
  trajectory->set_name("golden-v1");
  return std::move(trajectory).value();
}

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream file(path, std::ios::binary);
  STCOMP_CHECK(static_cast<bool>(file));
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  STCOMP_CHECK(static_cast<bool>(file));
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: golden_gen <golden_dir> <corpus_dir>\n");
    return 1;
  }
  const std::filesystem::path golden_dir = argv[1];
  const std::filesystem::path corpus_dir = argv[2];

  const stcomp::Trajectory trajectory = GoldenTrajectory();
  const std::string raw =
      stcomp::SerializeTrajectory(trajectory, stcomp::Codec::kRaw).value();
  const std::string delta =
      stcomp::SerializeTrajectory(trajectory, stcomp::Codec::kDelta).value();
  WriteFile(golden_dir / "trajectory_v1.stct", raw + delta);

  // v2 blocked frames (DESIGN.md §17): block_points=2 forces three blocks
  // over the five golden points, so the summary table, junction extents
  // and per-block chain restarts are all locked by golden_format_test.
  const std::string raw_blocked =
      stcomp::SerializeTrajectoryBlocked(trajectory, stcomp::Codec::kRaw, 2)
          .value();
  const std::string delta_blocked =
      stcomp::SerializeTrajectoryBlocked(trajectory, stcomp::Codec::kDelta, 2)
          .value();
  WriteFile(golden_dir / "trajectory_v2.stct", raw_blocked + delta_blocked);

  WriteFile(corpus_dir / "serialization" / "raw_frame", raw);
  WriteFile(corpus_dir / "serialization" / "delta_frame", delta);
  WriteFile(corpus_dir / "serialization" / "two_frames", raw + delta);
  WriteFile(corpus_dir / "serialization" / "truncated",
            raw.substr(0, raw.size() / 2));
  stcomp::Trajectory unnamed = trajectory;
  unnamed.set_name("");
  WriteFile(corpus_dir / "serialization" / "empty_name",
            stcomp::SerializeTrajectory(unnamed, stcomp::Codec::kRaw).value());

  stcomp::TrajectoryStore store(stcomp::Codec::kDelta);
  for (const stcomp::TimedPoint& point : trajectory.points()) {
    STCOMP_CHECK_OK(store.Append("bus-1", point));
    STCOMP_CHECK_OK(
        store.Append("bus-2", {point.t, point.position.y, point.position.x}));
  }
  const std::filesystem::path image_path = corpus_dir / "store" / "two_objects";
  std::filesystem::create_directories(image_path.parent_path());
  STCOMP_CHECK_OK(store.SaveToFile(image_path.string()));
  std::printf("wrote %s\n", image_path.string().c_str());

  stcomp::TrajectoryStore single(stcomp::Codec::kRaw);
  STCOMP_CHECK_OK(single.Append("solo", {1.0, 2.0, 3.0}));
  const std::filesystem::path single_path =
      corpus_dir / "store" / "single_object";
  STCOMP_CHECK_OK(single.SaveToFile(single_path.string()));
  std::printf("wrote %s\n", single_path.string().c_str());

  WriteFile(corpus_dir / "store" / "unnamed_frame",
            stcomp::SerializeTrajectory(unnamed, stcomp::Codec::kRaw).value());
  WriteFile(corpus_dir / "store" / "truncated", raw.substr(0, 10));

  // Spatio-temporal index seed corpus (fuzz_query_index.cc): STIX images
  // built from real stores, the empty index, and a torn prefix. The replay
  // driver's mutant pass then bit-flips these, which must always come back
  // as kDataLoss (whole-image CRC).
  const std::string two_objects_index =
      stcomp::SpatioTemporalIndex::BuildFromStore(store).SerializeToString();
  WriteFile(corpus_dir / "query_index" / "two_objects", two_objects_index);
  WriteFile(corpus_dir / "query_index" / "single_object",
            stcomp::SpatioTemporalIndex::BuildFromStore(single)
                .SerializeToString());
  WriteFile(corpus_dir / "query_index" / "empty",
            stcomp::SpatioTemporalIndex::BuildFromStore(
                stcomp::TrajectoryStore())
                .SerializeToString());
  WriteFile(corpus_dir / "query_index" / "truncated",
            two_objects_index.substr(0, two_objects_index.size() / 2));

  // WAL seed corpus (fuzz_wal.cc): a committed batch covering every record
  // type, an uncommitted tail, and a torn final frame.
  std::string wal_batch;
  wal_batch += stcomp::EncodeWalFrame(
      stcomp::WalRecord::Append("bus-1", {1.0, 2.0, 3.0}));
  wal_batch += stcomp::EncodeWalFrame(
      stcomp::WalRecord::Append("bus-1", {2.0, 4.0, 5.0}));
  wal_batch +=
      stcomp::EncodeWalFrame(stcomp::WalRecord::Insert("bus-2", raw));
  wal_batch +=
      stcomp::EncodeWalFrame(stcomp::WalRecord::Remove("bus-2"));
  wal_batch += stcomp::EncodeWalFrame(stcomp::WalRecord::Commit());
  WriteFile(corpus_dir / "wal" / "committed_batch", wal_batch);
  const std::string uncommitted = stcomp::EncodeWalFrame(
      stcomp::WalRecord::Append("bus-3", {9.0, -1.0, -2.0}));
  WriteFile(corpus_dir / "wal" / "uncommitted_tail", wal_batch + uncommitted);
  WriteFile(corpus_dir / "wal" / "torn_tail",
            wal_batch + uncommitted.substr(0, uncommitted.size() / 2));

  // STNI wire-protocol seed corpus (fuzz_ingest_frame.cc): one of every
  // frame type, a whole handshake-plus-batch conversation, and a torn
  // tail, so the replay driver's mutants start from frames that actually
  // pass the CRC instead of dying at the magic check.
  using stcomp::net::EncodeNetFrame;
  using stcomp::net::NetFrame;
  const std::vector<stcomp::net::NetFix> fixes = {
      {"bus-1", {0.0, 1.5, -2.5}},
      {"bus-1", {10.0, 3.25, -4.75}},
      {"tram-7", {5.5, -0.125, 1e9}},
  };
  WriteFile(corpus_dir / "ingest_frame" / "hello",
            EncodeNetFrame(NetFrame::Hello("device-42")));
  WriteFile(corpus_dir / "ingest_frame" / "hello_ack",
            EncodeNetFrame(NetFrame::HelloAck(7, 19)));
  WriteFile(corpus_dir / "ingest_frame" / "batch",
            EncodeNetFrame(NetFrame::Batch(20, fixes)));
  WriteFile(corpus_dir / "ingest_frame" / "batch_ack",
            EncodeNetFrame(NetFrame::BatchAck(20)));
  WriteFile(corpus_dir / "ingest_frame" / "error",
            EncodeNetFrame(NetFrame::Error(stcomp::net::NetErrorCode::kProtocol,
                                           "batch before hello")));
  WriteFile(corpus_dir / "ingest_frame" / "goaway",
            EncodeNetFrame(NetFrame::GoAway(
                stcomp::net::GoAwayReason::kOverloaded, "shedding")));
  WriteFile(corpus_dir / "ingest_frame" / "bye",
            EncodeNetFrame(NetFrame::Bye()));
  std::string conversation = EncodeNetFrame(NetFrame::Hello("device-42"));
  conversation += EncodeNetFrame(NetFrame::HelloAck(1, 0));
  conversation += EncodeNetFrame(NetFrame::Batch(1, fixes));
  conversation += EncodeNetFrame(NetFrame::BatchAck(1));
  conversation += EncodeNetFrame(NetFrame::Bye());
  WriteFile(corpus_dir / "ingest_frame" / "conversation", conversation);
  WriteFile(corpus_dir / "ingest_frame" / "torn_tail",
            conversation.substr(0, conversation.size() - 7));
  WriteFile(corpus_dir / "ingest_frame" / "empty_batch",
            EncodeNetFrame(NetFrame::Batch(1, {})));
  // A 10-byte length varint declaring a ~2^64 payload plus a few bytes
  // of tail: regression seed for the decoder's `payload_size + 4`
  // overflow — the bounds check must read this as truncation, not wrap.
  std::string overflow(stcomp::net::kNetMagic,
                       sizeof(stcomp::net::kNetMagic));
  overflow.push_back(static_cast<char>(stcomp::net::kNetProtocolVersion));
  overflow.push_back(static_cast<char>(stcomp::net::NetMessageType::kBatch));
  overflow.append(9, static_cast<char>(0xff));
  overflow.push_back(0x01);
  overflow += "junk";
  WriteFile(corpus_dir / "ingest_frame" / "overflow_len", overflow);
  return 0;
}
