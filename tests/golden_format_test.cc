// Locks the CRC-framed on-disk trajectory format against the checked-in
// golden blob (tests/golden/trajectory_v1.stct, written by golden_gen):
// today's encoder must reproduce the stored bytes exactly, today's decoder
// must read them back exactly, and any single-bit corruption anywhere in
// the blob must surface as kDataLoss — never as silently different data.
//
// If this test fails after an intentional format change, bump the frame
// version and regenerate the blob with golden_gen; see tests/golden/.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/serialization.h"
#include "stcomp/store/trajectory_store.h"

namespace stcomp {
namespace {

// Must match golden_gen.cc exactly; every value sits on the kDelta
// quantisation grid (1 ms, 1 cm) so quantisation itself loses nothing.
Trajectory GoldenTrajectory() {
  auto trajectory = Trajectory::FromPoints({
      {0.0, 0.0, 0.0},
      {5.0, 12.34, -7.25},
      {10.5, 25.0, -14.5},
      {16.25, 40.41, -21.0},
      {30.0, 100.0, 3.75},
  });
  EXPECT_TRUE(trajectory.ok());
  trajectory->set_name("golden-v1");
  return std::move(trajectory).value();
}

std::string ReadGoldenFile(const std::string& name) {
  std::ifstream file(std::string(STCOMP_GOLDEN_DIR) + "/" + name,
                     std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(file)) << "golden blob missing: " << name;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string ReadGoldenBlob() { return ReadGoldenFile("trajectory_v1.stct"); }

TEST(GoldenFormatTest, EncoderReproducesGoldenBytes) {
  const Trajectory trajectory = GoldenTrajectory();
  const Result<std::string> raw = SerializeTrajectory(trajectory, Codec::kRaw);
  const Result<std::string> delta =
      SerializeTrajectory(trajectory, Codec::kDelta);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*raw + *delta, ReadGoldenBlob())
      << "the serialized byte stream changed; this breaks every store file "
         "already on disk";
}

TEST(GoldenFormatTest, DecoderReadsGoldenBytesExactly) {
  const std::string blob = ReadGoldenBlob();
  const Trajectory expected = GoldenTrajectory();
  std::string_view cursor = blob;

  const Result<Trajectory> raw = DeserializeTrajectory(&cursor);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->name(), "golden-v1");
  EXPECT_EQ(raw->points(), expected.points());

  const size_t raw_frame_size = blob.size() - cursor.size();
  const Result<Trajectory> delta = DeserializeTrajectory(&cursor);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(delta->name(), "golden-v1");
  // kDelta is quantised (1 ms, 1 cm): decoded doubles may differ from the
  // literals by an ULP, so assert the documented tolerance value-wise and
  // exactness byte-wise — re-encoding the decoded frame must reproduce the
  // stored bytes, or decode/encode drifted.
  ASSERT_EQ(delta->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(delta->points()[i].t, expected.points()[i].t, 0.5e-3) << i;
    EXPECT_NEAR(delta->points()[i].position.x, expected.points()[i].position.x,
                0.5e-2)
        << i;
    EXPECT_NEAR(delta->points()[i].position.y, expected.points()[i].position.y,
                0.5e-2)
        << i;
  }
  const Result<std::string> reencoded =
      SerializeTrajectory(*delta, Codec::kDelta);
  ASSERT_TRUE(reencoded.ok());
  EXPECT_EQ(*reencoded, blob.substr(raw_frame_size));
}

TEST(GoldenFormatTest, StoreLoadsGoldenImage) {
  TrajectoryStore store(Codec::kRaw);
  // The golden blob holds the same object id twice (raw + delta frame),
  // which the store must refuse as a duplicate — covering that load path —
  // while a single frame loads fine.
  const std::string blob = ReadGoldenBlob();
  const Status duplicate = store.LoadFromBuffer(blob);
  EXPECT_EQ(duplicate.code(), StatusCode::kDataLoss);

  std::string_view cursor = blob;
  ASSERT_TRUE(DeserializeTrajectory(&cursor).ok());
  const size_t raw_frame_size = blob.size() - cursor.size();
  ASSERT_TRUE(store.LoadFromBuffer(blob.substr(0, raw_frame_size)).ok());
  const Result<Trajectory> loaded = store.Get("golden-v1");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->points(), GoldenTrajectory().points());
}

// The v2 blocked frame (DESIGN.md §17): trajectory_v2.stct holds the same
// golden points framed with block_points=2 (three blocks, per-block chain
// restarts, summary table). Same locks as v1: byte-exact encode, exact
// decode, and single-bit corruption is always kDataLoss.
TEST(GoldenFormatTest, BlockedEncoderReproducesGoldenV2Bytes) {
  const Trajectory trajectory = GoldenTrajectory();
  const Result<std::string> raw =
      SerializeTrajectoryBlocked(trajectory, Codec::kRaw, 2);
  const Result<std::string> delta =
      SerializeTrajectoryBlocked(trajectory, Codec::kDelta, 2);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*raw + *delta, ReadGoldenFile("trajectory_v2.stct"))
      << "the v2 blocked byte stream changed; this breaks every blocked "
         "store file already on disk";
}

TEST(GoldenFormatTest, DecoderReadsGoldenV2Bytes) {
  const std::string blob = ReadGoldenFile("trajectory_v2.stct");
  const Trajectory expected = GoldenTrajectory();
  std::string_view cursor = blob;

  const Result<Trajectory> raw = DeserializeTrajectory(&cursor);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->name(), "golden-v1");
  EXPECT_EQ(raw->points(), expected.points());

  const Result<Trajectory> delta = DeserializeTrajectory(&cursor);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(cursor.empty());
  ASSERT_EQ(delta->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(delta->points()[i].t, expected.points()[i].t, 0.5e-3) << i;
    EXPECT_NEAR(delta->points()[i].position.x, expected.points()[i].position.x,
                0.5e-2)
        << i;
    EXPECT_NEAR(delta->points()[i].position.y, expected.points()[i].position.y,
                0.5e-2)
        << i;
  }
}

TEST(GoldenFormatTest, EveryBitFlipInV2IsDataLoss) {
  const std::string blob = ReadGoldenFile("trajectory_v2.stct");
  ASSERT_FALSE(blob.empty());
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = blob;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      std::string_view cursor = corrupted;
      Status failure = Status::Ok();
      while (failure.ok() && !cursor.empty()) {
        failure = DeserializeTrajectory(&cursor).status();
      }
      ASSERT_FALSE(failure.ok())
          << "bit flip at byte " << byte << " bit " << bit
          << " went unnoticed";
      ASSERT_EQ(failure.code(), StatusCode::kDataLoss)
          << "byte " << byte << " bit " << bit << ": "
          << failure.ToString();
    }
  }
}

TEST(GoldenFormatTest, EveryBitFlipIsDataLoss) {
  const std::string blob = ReadGoldenBlob();
  ASSERT_FALSE(blob.empty());
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = blob;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      std::string_view cursor = corrupted;
      Status failure = Status::Ok();
      while (failure.ok() && !cursor.empty()) {
        failure = DeserializeTrajectory(&cursor).status();
      }
      ASSERT_FALSE(failure.ok())
          << "bit flip at byte " << byte << " bit " << bit
          << " went unnoticed";
      ASSERT_EQ(failure.code(), StatusCode::kDataLoss)
          << "byte " << byte << " bit " << bit << ": "
          << failure.ToString();
    }
  }
}

}  // namespace
}  // namespace stcomp
