#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "stcomp/error/clustering.h"
#include "stcomp/error/similarity.h"
#include "stcomp/store/trajectory_store.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Line;
using testutil::RandomWalk;

// Two well-separated families of trips: eastbound fast, northbound slow.
std::vector<Trajectory> TwoFamilies(int per_family) {
  std::vector<Trajectory> dataset;
  for (int i = 0; i < per_family; ++i) {
    dataset.push_back(Line(20, 10.0, 12.0, 0.2 * i, 0.0, 50.0 * i));
  }
  for (int i = 0; i < per_family; ++i) {
    dataset.push_back(Line(20, 10.0, 0.2 * i, 8.0, 5000.0, 50.0 * i));
  }
  return dataset;
}

TrajectoryDistanceFn Dtw() {
  return [](const Trajectory& a, const Trajectory& b) {
    return DtwDistance(a, b);
  };
}

TEST(KMedoidsTest, SeparatesTwoFamilies) {
  const std::vector<Trajectory> dataset = TwoFamilies(4);
  const ClusteringResult clusters = KMedoids(dataset, 2, Dtw()).value();
  ASSERT_EQ(clusters.medoids.size(), 2u);
  // All eastbound trips share a label; all northbound share the other.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(clusters.assignment[static_cast<size_t>(i)],
              clusters.assignment[0]);
    EXPECT_EQ(clusters.assignment[static_cast<size_t>(4 + i)],
              clusters.assignment[4]);
  }
  EXPECT_NE(clusters.assignment[0], clusters.assignment[4]);
}

TEST(KMedoidsTest, KOneGroupsEverything) {
  const std::vector<Trajectory> dataset = TwoFamilies(3);
  const ClusteringResult clusters = KMedoids(dataset, 1, Dtw()).value();
  for (int label : clusters.assignment) {
    EXPECT_EQ(label, 0);
  }
}

TEST(KMedoidsTest, KEqualsNHasZeroCost) {
  const std::vector<Trajectory> dataset = TwoFamilies(2);
  const ClusteringResult clusters =
      KMedoids(dataset, dataset.size(), Dtw()).value();
  EXPECT_NEAR(clusters.total_cost, 0.0, 1e-9);
}

TEST(KMedoidsTest, RejectsBadK) {
  const std::vector<Trajectory> dataset = TwoFamilies(2);
  EXPECT_FALSE(KMedoids(dataset, 0, Dtw()).ok());
  EXPECT_FALSE(KMedoids(dataset, dataset.size() + 1, Dtw()).ok());
}

TEST(KMedoidsTest, DeterministicAcrossRuns) {
  std::vector<Trajectory> dataset;
  for (uint64_t seed = 0; seed < 9; ++seed) {
    dataset.push_back(RandomWalk(40, seed));
  }
  const ClusteringResult a = KMedoids(dataset, 3, Dtw()).value();
  const ClusteringResult b = KMedoids(dataset, 3, Dtw()).value();
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(SilhouetteTest, WellSeparatedScoresHigh) {
  const std::vector<Trajectory> dataset = TwoFamilies(4);
  const std::vector<double> matrix =
      PairwiseDistances(dataset, Dtw()).value();
  const ClusteringResult good = KMedoids(dataset, 2, Dtw()).value();
  const double good_score =
      SilhouetteScore(matrix, dataset.size(), good.assignment);
  EXPECT_GT(good_score, 0.6);
  // A deliberately bad split scores worse.
  std::vector<int> bad(dataset.size());
  for (size_t i = 0; i < bad.size(); ++i) {
    bad[i] = static_cast<int>(i % 2);
  }
  EXPECT_LT(SilhouetteScore(matrix, dataset.size(), bad), good_score);
}

TEST(StoreFileTest, SaveLoadRoundTrip) {
  TrajectoryStore store(Codec::kRaw);
  for (uint64_t object = 0; object < 5; ++object) {
    Trajectory trajectory = RandomWalk(30, 50 + object);
    ASSERT_TRUE(
        store.Insert("veh-" + std::to_string(object), trajectory).ok());
  }
  const std::string path = ::testing::TempDir() + "/stcomp_store_file.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());

  TrajectoryStore loaded(Codec::kRaw);
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.object_count(), store.object_count());
  for (const std::string& id : store.ObjectIds()) {
    EXPECT_EQ(loaded.Get(id).value().points(),
              store.Get(id).value().points());
  }
}

TEST(StoreFileTest, LoadReplacesContents) {
  TrajectoryStore a(Codec::kRaw);
  ASSERT_TRUE(a.Insert("x", RandomWalk(10, 1)).ok());
  const std::string path = ::testing::TempDir() + "/stcomp_store_file2.bin";
  ASSERT_TRUE(a.SaveToFile(path).ok());
  TrajectoryStore b(Codec::kRaw);
  ASSERT_TRUE(b.Insert("y", RandomWalk(10, 2)).ok());
  ASSERT_TRUE(b.LoadFromFile(path).ok());
  EXPECT_TRUE(b.Get("x").ok());
  EXPECT_FALSE(b.Get("y").ok());
}

TEST(StoreFileTest, CorruptFileRejected) {
  TrajectoryStore store(Codec::kDelta);
  ASSERT_TRUE(store.Insert("x", RandomWalk(20, 3)).ok());
  const std::string path = ::testing::TempDir() + "/stcomp_store_file3.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  // Append garbage: the trailing frame must fail to parse.
  {
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file << "garbage tail";
  }
  TrajectoryStore loaded(Codec::kDelta);
  EXPECT_FALSE(loaded.LoadFromFile(path).ok());
  EXPECT_FALSE(loaded.LoadFromFile("/nonexistent/store.bin").ok());
}

}  // namespace
}  // namespace stcomp
