#include "stcomp/store/segment_store.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stcomp/store/durable_file.h"
#include "test_util.h"

namespace stcomp {
namespace {

using testutil::Traj;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "segment_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

SegmentStore::Options RawOptions() {
  SegmentStore::Options options;
  options.codec = Codec::kRaw;  // Bit-exact image comparisons below.
  return options;
}

std::string Image(const SegmentStore& store) {
  const Result<std::string> image = store.store().SerializeToString();
  EXPECT_TRUE(image.ok()) << image.status();
  return image.ok() ? *image : std::string();
}

TEST(SegmentStoreTest, AppendCommitSurvivesReopen) {
  const std::string dir = FreshDir("reopen");
  std::string committed_image;
  {
    SegmentStore store(RawOptions());
    ASSERT_TRUE(store.Open(dir).ok());
    EXPECT_TRUE(store.last_recovery().clean());
    ASSERT_TRUE(store.Append("bus-1", TimedPoint(1.0, 0.5, -2.0)).ok());
    ASSERT_TRUE(store.Append("bus-1", TimedPoint(2.0, 1.5, -1.0)).ok());
    ASSERT_TRUE(store.Append("bus-2", TimedPoint(1.0, 9.0, 9.0)).ok());
    ASSERT_TRUE(store.Commit().ok());
    committed_image = Image(store);
    // Appended after the commit: recovery must drop this one.
    ASSERT_TRUE(store.Append("bus-2", TimedPoint(2.0, 10.0, 10.0)).ok());
  }
  SegmentStore reopened(RawOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(Image(reopened), committed_image)
      << reopened.last_recovery().Describe();
  EXPECT_EQ(reopened.last_recovery().wal_records_replayed, 3u);
}

TEST(SegmentStoreTest, InsertAndRemoveReplay) {
  const std::string dir = FreshDir("insert_remove");
  std::string committed_image;
  {
    SegmentStore store(RawOptions());
    ASSERT_TRUE(store.Open(dir).ok());
    Trajectory trajectory = Traj({{1.0, 0.0, 0.0}, {2.0, 3.0, 4.0}});
    trajectory.set_name("walk");
    ASSERT_TRUE(store.Insert("walk", trajectory).ok());
    ASSERT_TRUE(store.Append("doomed", TimedPoint(1.0, 1.0, 1.0)).ok());
    ASSERT_TRUE(store.Remove("doomed").ok());
    ASSERT_TRUE(store.Commit().ok());
    committed_image = Image(store);
  }
  SegmentStore reopened(RawOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(Image(reopened), committed_image);
  EXPECT_EQ(reopened.store().ObjectIds(), std::vector<std::string>{"walk"});
}

TEST(SegmentStoreTest, CheckpointTruncatesWalAndPrunesSegments) {
  const std::string dir = FreshDir("checkpoint");
  std::string checkpoint_image;
  {
    SegmentStore store(RawOptions());
    ASSERT_TRUE(store.Open(dir).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          store.Append("obj", TimedPoint(1.0 + i, 2.0 * i, -1.0 * i)).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
    ASSERT_TRUE(store.Checkpoint().ok());  // Second one prunes the first.
    checkpoint_image = Image(store);
  }
  // Exactly one segment file remains and the WAL is empty.
  size_t segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) {
      ++segments;
    }
    if (name == "wal.stwal") {
      EXPECT_EQ(std::filesystem::file_size(entry.path()), 0u);
    }
  }
  EXPECT_EQ(segments, 1u);

  SegmentStore reopened(RawOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_TRUE(reopened.last_recovery().clean())
      << reopened.last_recovery().Describe();
  EXPECT_EQ(Image(reopened), checkpoint_image);
}

TEST(SegmentStoreTest, CommitEveryRecordNeedsNoExplicitCommit) {
  const std::string dir = FreshDir("autocommit");
  std::string image;
  {
    SegmentStore::Options options = RawOptions();
    options.commit_every_record = true;
    SegmentStore store(options);
    ASSERT_TRUE(store.Open(dir).ok());
    ASSERT_TRUE(store.Append("obj", TimedPoint(1.0, 1.0, 1.0)).ok());
    ASSERT_TRUE(store.Append("obj", TimedPoint(2.0, 2.0, 2.0)).ok());
    image = Image(store);
    // No Commit() call: every record self-committed.
  }
  SegmentStore reopened(RawOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_EQ(Image(reopened), image);
  EXPECT_EQ(reopened.last_recovery().wal_records_replayed, 2u);
}

TEST(SegmentStoreTest, CorruptSegmentFallsBackToWal) {
  const std::string dir = FreshDir("corrupt_segment");
  std::string committed_image;
  {
    SegmentStore store(RawOptions());
    ASSERT_TRUE(store.Open(dir).ok());
    ASSERT_TRUE(store.Append("a", TimedPoint(1.0, 0.0, 0.0)).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
    ASSERT_TRUE(store.Append("a", TimedPoint(2.0, 1.0, 1.0)).ok());
    ASSERT_TRUE(store.Commit().ok());
    committed_image = Image(store);
  }
  // Corrupt one byte of the single segment: recovery salvages what it can
  // from the segment and still replays the WAL tail on top.
  std::string segment_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) {
      segment_path = entry.path().string();
    }
  }
  ASSERT_FALSE(segment_path.empty());
  {
    Result<std::string> bytes = ReadFileToString(segment_path);
    ASSERT_TRUE(bytes.ok());
    (*bytes)[bytes->size() / 2] ^= 0x20;
    ASSERT_TRUE(AtomicWriteFile(segment_path, *bytes).ok());
  }
  SegmentStore reopened(RawOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  const RecoveryReport& report = reopened.last_recovery();
  EXPECT_FALSE(report.clean()) << report.Describe();
  // The single-object segment lost its only frame; the WAL append to the
  // now-missing object recreates it, so the final point is still there.
  const Result<Trajectory> recovered = reopened.store().Get("a");
  ASSERT_TRUE(recovered.ok()) << report.Describe();
  EXPECT_EQ(recovered->points().back().t, 2.0);
}

TEST(SegmentStoreTest, FsckReportsFrameHealth) {
  const std::string dir = FreshDir("fsck");
  {
    SegmentStore store(RawOptions());
    ASSERT_TRUE(store.Open(dir).ok());
    ASSERT_TRUE(store.Append("a", TimedPoint(1.0, 0.0, 0.0)).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
    ASSERT_TRUE(store.Append("a", TimedPoint(2.0, 1.0, 1.0)).ok());
    ASSERT_TRUE(store.Commit().ok());
  }
  const Result<FsckReport> report = SegmentStore::Fsck(dir);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << report->Describe();
  // One segment + the WAL + the checkpointed spatio-temporal index.
  ASSERT_EQ(report->files.size(), 3u);
  for (const FsckFileReport& file : report->files) {
    EXPECT_GT(file.frames_good, 0u) << file.file;
    EXPECT_EQ(file.frames_salvaged, 0u) << file.file;
    EXPECT_FALSE(file.torn_tail) << file.file;
  }
  EXPECT_FALSE(SegmentStore::Fsck(dir + "/nonexistent").ok());
}

TEST(SegmentStoreTest, OpenOnEmptyDirectoryIsClean) {
  const std::string dir = FreshDir("empty");
  SegmentStore store(RawOptions());
  ASSERT_TRUE(store.Open(dir).ok());
  EXPECT_TRUE(store.last_recovery().clean());
  EXPECT_EQ(store.store().object_count(), 0u);
}

}  // namespace
}  // namespace stcomp
