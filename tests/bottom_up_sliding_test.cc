#include <gtest/gtest.h>

#include "stcomp/algo/bottom_up.h"
#include "stcomp/algo/sliding_window.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/error/spatial_error.h"
#include "test_util.h"

namespace stcomp::algo {
namespace {

using testutil::Line;
using testutil::LineWithStop;
using testutil::RandomWalk;
using testutil::Traj;

TEST(BottomUpTest, CollinearCollapses) {
  const Trajectory trajectory = Line(25, 1.0, 3.0, 0.0);
  EXPECT_EQ(BottomUp(trajectory, 0.5, BottomUpMetric::kPerpendicular),
            (IndexList{0, 24}));
}

TEST(BottomUpTest, RespectsEpsilonGuarantee) {
  // Bottom-up's invariant: at the moment a point was removed, all affected
  // interiors were within eps of the merged segment. Verify the final
  // result still satisfies the per-segment bound.
  const Trajectory trajectory = RandomWalk(120, 3);
  const double epsilon = 30.0;
  const IndexList kept =
      BottomUp(trajectory, epsilon, BottomUpMetric::kPerpendicular);
  EXPECT_TRUE(IsValidIndexList(trajectory, kept));
  EXPECT_LE(MaxPerpendicularError(trajectory, kept), epsilon);
}

TEST(BottomUpTest, SynchronizedMetricSeesStops) {
  const Trajectory trajectory = LineWithStop(10, 8, 10);
  EXPECT_EQ(
      BottomUp(trajectory, 10.0, BottomUpMetric::kPerpendicular).size(), 2u);
  EXPECT_GT(
      BottomUp(trajectory, 10.0, BottomUpMetric::kSynchronized).size(), 2u);
}

TEST(BottomUpTest, MonotoneInEpsilon) {
  const Trajectory trajectory = RandomWalk(100, 7);
  size_t previous = trajectory.size() + 1;
  for (double epsilon : {2.0, 10.0, 50.0, 250.0}) {
    const size_t kept =
        BottomUp(trajectory, epsilon, BottomUpMetric::kPerpendicular).size();
    EXPECT_LE(kept, previous);
    previous = kept;
  }
}

TEST(BottomUpMaxPointsTest, HonoursBudget) {
  const Trajectory trajectory = RandomWalk(80, 11);
  for (int budget : {2, 5, 20, 79}) {
    const IndexList kept = BottomUpMaxPoints(trajectory, budget,
                                             BottomUpMetric::kPerpendicular);
    EXPECT_EQ(kept.size(), static_cast<size_t>(budget));
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
  }
}

TEST(BottomUpMaxPointsTest, BudgetBeyondSizeKeepsAll) {
  const Trajectory trajectory = RandomWalk(12, 13);
  EXPECT_EQ(
      BottomUpMaxPoints(trajectory, 50, BottomUpMetric::kPerpendicular),
      KeepAll(trajectory));
}

TEST(BottomUpTest, TinyInputs) {
  Trajectory empty;
  EXPECT_TRUE(BottomUp(empty, 1.0, BottomUpMetric::kPerpendicular).empty());
  const Trajectory two = Traj({{0, 0, 0}, {1, 1, 1}});
  EXPECT_EQ(BottomUp(two, 1.0, BottomUpMetric::kPerpendicular),
            (IndexList{0, 1}));
}

TEST(SlidingWindowTest, CapBoundsSegmentLength) {
  const Trajectory trajectory = Line(101, 1.0, 5.0, 0.0);
  const int cap = 10;
  const IndexList kept = SlidingWindow(trajectory, 1.0, cap);
  EXPECT_TRUE(IsValidIndexList(trajectory, kept));
  for (size_t s = 1; s < kept.size(); ++s) {
    EXPECT_LE(kept[s] - kept[s - 1], cap);
  }
  // A straight line still compresses well within each window.
  EXPECT_LE(kept.size(), 12u);
}

TEST(SlidingWindowTest, MatchesOpeningWindowWhenCapIsHuge) {
  const Trajectory trajectory = RandomWalk(100, 17);
  EXPECT_EQ(SlidingWindow(trajectory, 30.0, 1000000),
            Nopw(trajectory, 30.0));
  EXPECT_EQ(SlidingWindowTr(trajectory, 30.0, 1000000),
            OpwTr(trajectory, 30.0));
}

TEST(SlidingWindowTest, ViolationStillCutsInsideCap) {
  const Trajectory trajectory = RandomWalk(100, 19);
  const double epsilon = 25.0;
  const IndexList kept = SlidingWindow(trajectory, epsilon, 15);
  // Committed segments (except the forced last) satisfy the line bound.
  for (size_t s = 1; s + 1 < kept.size(); ++s) {
    for (int i = kept[s - 1] + 1; i < kept[s]; ++i) {
      EXPECT_LE(PointToLineDistance(
                    trajectory[static_cast<size_t>(i)].position,
                    trajectory[static_cast<size_t>(kept[s - 1])].position,
                    trajectory[static_cast<size_t>(kept[s])].position),
                epsilon);
    }
  }
}

}  // namespace
}  // namespace stcomp::algo
