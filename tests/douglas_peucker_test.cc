#include "stcomp/algo/douglas_peucker.h"

#include <gtest/gtest.h>

#include "stcomp/algo/path_hull.h"
#include "stcomp/error/spatial_error.h"
#include "test_util.h"

namespace stcomp::algo {
namespace {

using testutil::Line;
using testutil::RandomWalk;
using testutil::Traj;

TEST(DouglasPeuckerTest, CollinearCollapsesToEndpoints) {
  const Trajectory trajectory = Line(50, 1.0, 4.0, 4.0);
  EXPECT_EQ(DouglasPeucker(trajectory, 0.5), (IndexList{0, 49}));
}

TEST(DouglasPeuckerTest, KeepsTheCorner) {
  const Trajectory trajectory =
      Traj({{0, 0, 0}, {1, 50, 0}, {2, 100, 0}, {3, 100, 50}, {4, 100, 100}});
  EXPECT_EQ(DouglasPeucker(trajectory, 5.0), (IndexList{0, 2, 4}));
}

TEST(DouglasPeuckerTest, ThresholdIsStrict) {
  // Interior point exactly at distance 10 from the baseline: max == eps is
  // NOT a split ("greater than a pre-defined threshold").
  const Trajectory trajectory = Traj({{0, 0, 0}, {1, 50, 10}, {2, 100, 0}});
  EXPECT_EQ(DouglasPeucker(trajectory, 10.0), (IndexList{0, 2}));
  EXPECT_EQ(DouglasPeucker(trajectory, 9.999), (IndexList{0, 1, 2}));
}

TEST(DouglasPeuckerTest, ZeroEpsilonKeepsAllNonCollinear) {
  const Trajectory trajectory = RandomWalk(40, 7);
  const IndexList kept = DouglasPeucker(trajectory, 0.0);
  // Generic-position points: nothing is exactly collinear, everything kept.
  EXPECT_EQ(kept.size(), trajectory.size());
}

TEST(DouglasPeuckerTest, OutputIsValidAndMonotoneInEpsilon) {
  const Trajectory trajectory = RandomWalk(200, 11);
  size_t previous_kept = trajectory.size() + 1;
  for (double epsilon : {1.0, 5.0, 20.0, 80.0, 320.0}) {
    const IndexList kept = DouglasPeucker(trajectory, epsilon);
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
    // Compression never decreases as the threshold grows.
    EXPECT_LE(kept.size(), previous_kept);
    previous_kept = kept.size();
  }
}

TEST(DouglasPeuckerTest, GuaranteesMaxLineDeviation) {
  // DP's invariant: every discarded point is within eps of the *line*
  // through its covering segment's endpoints.
  const Trajectory trajectory = RandomWalk(300, 13);
  const double epsilon = 40.0;
  const IndexList kept = DouglasPeucker(trajectory, epsilon);
  for (size_t s = 1; s < kept.size(); ++s) {
    for (int i = kept[s - 1] + 1; i < kept[s]; ++i) {
      EXPECT_LE(
          PointToLineDistance(trajectory[static_cast<size_t>(i)].position,
                              trajectory[static_cast<size_t>(kept[s - 1])].position,
                              trajectory[static_cast<size_t>(kept[s])].position),
          epsilon);
    }
  }
}

TEST(DouglasPeuckerTest, TinyInputs) {
  Trajectory empty;
  EXPECT_TRUE(DouglasPeucker(empty, 1.0).empty());
  const Trajectory one = Traj({{0, 0, 0}});
  EXPECT_EQ(DouglasPeucker(one, 1.0), (IndexList{0}));
  const Trajectory two = Traj({{0, 0, 0}, {1, 9, 9}});
  EXPECT_EQ(DouglasPeucker(two, 1.0), (IndexList{0, 1}));
}

struct HullCase {
  uint64_t seed;
  int n;
  double epsilon;
};

class PathHullEquivalence : public ::testing::TestWithParam<HullCase> {};

TEST_P(PathHullEquivalence, MatchesNaiveDouglasPeucker) {
  // Simple (x-monotone) chains: the regime where Melkman hulls are
  // guaranteed correct (see path_hull.h).
  const HullCase& param = GetParam();
  const Trajectory trajectory = testutil::MonotoneWalk(param.n, param.seed);
  EXPECT_EQ(DouglasPeuckerHull(trajectory, param.epsilon),
            DouglasPeucker(trajectory, param.epsilon));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathHullEquivalence,
    ::testing::Values(HullCase{1, 10, 5.0}, HullCase{2, 50, 10.0},
                      HullCase{3, 100, 1.0}, HullCase{4, 100, 50.0},
                      HullCase{5, 500, 25.0}, HullCase{6, 500, 100.0},
                      HullCase{7, 1000, 40.0}, HullCase{8, 37, 0.0},
                      HullCase{9, 2000, 60.0}, HullCase{10, 250, 400.0}));

TEST(PathHullTest, CollinearInput) {
  const Trajectory trajectory = Line(30, 1.0, 2.0, 1.0);
  EXPECT_EQ(DouglasPeuckerHull(trajectory, 0.5), (IndexList{0, 29}));
  EXPECT_EQ(DouglasPeuckerHull(trajectory, 0.0),
            DouglasPeucker(trajectory, 0.0));
}

TEST(PathHullTest, ConsecutiveDuplicatePositions) {
  // A stop: the same coordinates at consecutive timestamps (the chain
  // stays simple). The hull variant must keep matching the naive scan.
  const Trajectory trajectory = Traj({{0, 0, 0},
                                      {1, 100, 0},
                                      {2, 100, 0},
                                      {3, 100, 0},
                                      {4, 200, 80},
                                      {5, 310, 70}});
  for (double epsilon : {1.0, 30.0, 1000.0}) {
    EXPECT_EQ(DouglasPeuckerHull(trajectory, epsilon),
              DouglasPeucker(trajectory, epsilon))
        << "epsilon=" << epsilon;
  }
}

TEST(PathHullTest, EpsilonGuaranteeOnSimpleChains) {
  // The DP invariant carried over: every discarded point within eps of the
  // line through its covering segment's endpoints.
  for (uint64_t seed : {100u, 101u, 102u}) {
    const Trajectory trajectory = testutil::MonotoneWalk(400, seed);
    const double epsilon = 35.0;
    const IndexList kept = DouglasPeuckerHull(trajectory, epsilon);
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
    for (size_t s = 1; s < kept.size(); ++s) {
      for (int i = kept[s - 1] + 1; i < kept[s]; ++i) {
        EXPECT_LE(PointToLineDistance(
                      trajectory[static_cast<size_t>(i)].position,
                      trajectory[static_cast<size_t>(kept[s - 1])].position,
                      trajectory[static_cast<size_t>(kept[s])].position),
                  epsilon);
      }
    }
  }
}

TEST(MaxPointsTest, HonoursBudget) {
  const Trajectory trajectory = RandomWalk(100, 17);
  for (int budget : {2, 3, 5, 10, 50}) {
    const IndexList kept = DouglasPeuckerMaxPoints(trajectory, budget);
    EXPECT_EQ(kept.size(), static_cast<size_t>(budget));
    EXPECT_TRUE(IsValidIndexList(trajectory, kept));
  }
}

TEST(MaxPointsTest, BudgetBeyondSizeKeepsAll) {
  const Trajectory trajectory = RandomWalk(10, 19);
  EXPECT_EQ(DouglasPeuckerMaxPoints(trajectory, 100), KeepAll(trajectory));
}

TEST(MaxPointsTest, GreedyOrderReducesErrorMonotonically) {
  // More budget never increases the max deviation.
  const Trajectory trajectory = RandomWalk(150, 23);
  double previous = 1e300;
  for (int budget : {2, 4, 8, 16, 32, 64, 128}) {
    const IndexList kept = DouglasPeuckerMaxPoints(trajectory, budget);
    const double worst = MaxPerpendicularError(trajectory, kept);
    EXPECT_LE(worst, previous + 1e-9) << "budget=" << budget;
    previous = worst;
  }
}

TEST(TopDownTest, CustomDistanceFunction) {
  // A distance function that only flags index 3 forces a single split
  // there.
  const Trajectory trajectory = Line(7, 1.0, 1.0, 0.0);
  const IndexList kept = TopDown(
      trajectory, 0.5,
      [](TrajectoryView, int, int, int i) { return i == 3 ? 1.0 : 0.0; });
  EXPECT_EQ(kept, (IndexList{0, 3, 6}));
}

}  // namespace
}  // namespace stcomp::algo
