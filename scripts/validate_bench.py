#!/usr/bin/env python3
"""Validates emitted BENCH_*.json snapshots.

Every bench binary that takes --json-out (and bench_throughput's
--metrics_json) writes a self-describing result file; this script is the
schema gate check.sh and CI run over whatever snapshots exist, so a bench
that silently emits malformed or incomplete JSON fails the build instead
of poisoning downstream dashboards.

Usage: validate_bench.py BENCH_a.json [BENCH_b.json ...]
Missing operands are an error; shells expand the BENCH_*.json glob only
when at least one snapshot exists.
"""

import json
import sys


def fail(path, message):
    print(f"validate_bench: {path}: {message}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable or invalid JSON: {err}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        return fail(path, "missing or empty 'bench' name")
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < 1:
        return fail(path, "missing or non-positive integer 'schema_version'")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return fail(path, "missing 'metrics' object")
    # Bench-specific shape checks.
    if bench == "bench_kernels":
        kernels = doc.get("kernels")
        if not isinstance(kernels, list) or not kernels:
            return fail(path, "bench_kernels: missing 'kernels' entries")
        for entry in kernels:
            if not isinstance(entry, dict):
                return fail(path, "bench_kernels: non-object kernel entry")
            label = entry.get("kernel", entry.get("algorithm"))
            if not isinstance(label, str) or not label:
                return fail(path, "bench_kernels: entry without a label")
            for key in ("scalar_seconds", "vector_seconds", "speedup"):
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    return fail(
                        path, f"bench_kernels: {label}: bad '{key}': {value!r}"
                    )
        for key in ("scalar_backend", "vector_backend"):
            if not isinstance(doc.get(key), str) or not doc[key]:
                return fail(path, f"bench_kernels: missing '{key}'")
    if bench == "bench_obs_overhead" and version >= 2:
        if not isinstance(doc.get("metrics_enabled"), bool):
            return fail(path, "bench_obs_overhead: missing 'metrics_enabled'")
        for key in (
            "baseline_ns_per_push",
            "instrumented_ns_per_push",
            "overhead_budget_percent",
        ):
            value = doc.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                return fail(path, f"bench_obs_overhead: bad '{key}': {value!r}")
        # overhead_percent may legitimately be negative (noise); it just
        # has to be a number.
        if not isinstance(doc.get("overhead_percent"), (int, float)):
            return fail(path, "bench_obs_overhead: bad 'overhead_percent'")
        primitives = doc.get("primitives_ns")
        if not isinstance(primitives, dict):
            return fail(path, "bench_obs_overhead: missing 'primitives_ns'")
        for key in (
            "counter_increment",
            "histogram_observe",
            "scoped_timer",
            "sampled_scoped_timer",
            "trace_span",
            "flight_record",
            "sampled_span_skipped",
            "sampled_span_recorded",
        ):
            value = primitives.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                return fail(
                    path, f"bench_obs_overhead: primitives_ns: bad '{key}'"
                )
    if bench == "bench_queries":
        cells = doc.get("cells")
        if not isinstance(cells, list) or not cells:
            return fail(path, "bench_queries: missing 'cells' entries")
        labels = set()
        for entry in cells:
            if not isinstance(entry, dict):
                return fail(path, "bench_queries: non-object cell entry")
            selectivity = entry.get("selectivity")
            if selectivity not in ("low", "mid", "high"):
                return fail(
                    path,
                    f"bench_queries: bad cell 'selectivity': {selectivity!r}",
                )
            labels.add(selectivity)
            for key in ("objects", "queries"):
                value = entry.get(key)
                if not isinstance(value, int) or value <= 0:
                    return fail(
                        path, f"bench_queries: bad cell '{key}': {value!r}"
                    )
            hits = entry.get("hits")
            if not isinstance(hits, int) or hits < 0:
                return fail(path, f"bench_queries: bad cell 'hits': {hits!r}")
            for key in ("engine_us", "oracle_us", "speedup"):
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    return fail(
                        path, f"bench_queries: bad cell '{key}': {value!r}"
                    )
            fraction = entry.get("decoded_block_fraction")
            if (
                not isinstance(fraction, (int, float))
                or fraction < 0
                or fraction > 1
            ):
                return fail(
                    path,
                    "bench_queries: bad cell 'decoded_block_fraction': "
                    f"{fraction!r}",
                )
        if labels != {"low", "mid", "high"}:
            return fail(
                path, f"bench_queries: selectivity tiers missing: {labels!r}"
            )
        # The acceptance headline: block skipping must beat the full-decode
        # oracle on low-selectivity queries.
        headline = doc.get("low_selectivity_speedup")
        if not isinstance(headline, (int, float)) or headline <= 1.0:
            return fail(
                path,
                "bench_queries: 'low_selectivity_speedup' must exceed 1.0, "
                f"got {headline!r}",
            )
    if bench == "bench_fleet_scale":
        runs = doc.get("runs")
        if not isinstance(runs, list) or not runs:
            return fail(path, "bench_fleet_scale: missing 'runs' entries")
        for entry in runs:
            if not isinstance(entry, dict):
                return fail(path, "bench_fleet_scale: non-object run entry")
            fleet = entry.get("fleet")
            if fleet not in ("uniform", "zipf"):
                return fail(
                    path, f"bench_fleet_scale: bad run 'fleet': {fleet!r}"
                )
            for key in ("shards", "producers", "fixes"):
                value = entry.get(key)
                if not isinstance(value, int) or value <= 0:
                    return fail(
                        path,
                        f"bench_fleet_scale: {fleet}: bad '{key}': {value!r}",
                    )
            for key in ("seconds", "fixes_per_second", "speedup_vs_1"):
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    return fail(
                        path,
                        f"bench_fleet_scale: {fleet}: bad '{key}': {value!r}",
                    )
            waits = entry.get("backpressure_waits")
            if not isinstance(waits, int) or waits < 0:
                return fail(
                    path,
                    f"bench_fleet_scale: {fleet}: bad 'backpressure_waits'",
                )
        # Both fleets must be timed at shards=1 (the speedup baselines).
        baselines = {e["fleet"] for e in runs if e.get("shards") == 1}
        if baselines != {"uniform", "zipf"}:
            return fail(
                path, "bench_fleet_scale: missing 1-shard baseline runs"
            )
        for key in (
            "hardware_threads",
            "max_shards",
            "uniform_speedup_at_max",
            "skew_ratio_at_max",
        ):
            value = doc.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                return fail(path, f"bench_fleet_scale: bad '{key}': {value!r}")
    if bench == "bench_ingest_net":
        runs = doc.get("runs")
        if not isinstance(runs, list) or not runs:
            return fail(path, "bench_ingest_net: missing 'runs' entries")
        connections = set()
        for entry in runs:
            if not isinstance(entry, dict):
                return fail(path, "bench_ingest_net: non-object run entry")
            conns = entry.get("connections")
            if not isinstance(conns, int) or conns <= 0:
                return fail(
                    path, f"bench_ingest_net: bad 'connections': {conns!r}"
                )
            connections.add(conns)
            for key in ("fixes",):
                value = entry.get(key)
                if not isinstance(value, int) or value <= 0:
                    return fail(
                        path,
                        f"bench_ingest_net: conns={conns}: bad '{key}': "
                        f"{value!r}",
                    )
            for key in ("seconds", "fixes_per_second", "speedup_vs_1"):
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    return fail(
                        path,
                        f"bench_ingest_net: conns={conns}: bad '{key}': "
                        f"{value!r}",
                    )
            acked = entry.get("batches_acked")
            if not isinstance(acked, int) or acked <= 0:
                return fail(
                    path,
                    f"bench_ingest_net: conns={conns}: bad 'batches_acked'",
                )
        # The single-connection baseline anchors every speedup figure.
        if 1 not in connections:
            return fail(path, "bench_ingest_net: missing 1-connection run")
    print(f"validate_bench: {path}: ok ({bench}, schema v{version})")
    return 0


def main(argv):
    if len(argv) < 2:
        print("usage: validate_bench.py BENCH_a.json [...]", file=sys.stderr)
        return 2
    return max(validate(path) for path in argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
