#!/usr/bin/env python3
"""Two-process end-to-end smoke for the STNI network-ingest path.

Launches `streaming_gps_feed --ingest-port=0 --admin-port=0` (port 0 =
kernel-assigned, so parallel CI jobs never collide), parses both bound
ports from its stdout, then drives the server with a separate
`fleet_client --connect=<port>` process over real TCP. Checks:

  - the fleet_client process exits 0 and prints PASS,
  - /ingestz on the admin port reports a live server object whose
    accepted-session and fix counters cover what the client pushed,
  - the server process exits 0 after its serve window (clean drain).

Usage:

  ingest_smoke.py /path/to/streaming_gps_feed /path/to/fleet_client
"""

import json
import subprocess
import sys
import time
import urllib.error
import urllib.request

INGEST_PREFIX = "ingest server listening on 127.0.0.1:"
ADMIN_PREFIX = "admin server listening on 127.0.0.1:"

CLIENTS = 2
OBJECTS = 2
FIXES = 60


def fail(message):
    print(f"ingest_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def fetch(port, target):
    url = f"http://127.0.0.1:{port}{target}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as err:  # non-2xx still has a body
        return err.code, err.read().decode("utf-8")


def wait_for_ports(process, deadline_s=30.0):
    """Reads stdout until both listen lines appear; returns (ingest, admin)."""
    ingest_port = None
    admin_port = None
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            return None, None  # stdout closed: the server died early
        sys.stdout.write(line)
        if line.startswith(INGEST_PREFIX):
            ingest_port = int(line[len(INGEST_PREFIX):].strip())
        elif line.startswith(ADMIN_PREFIX):
            admin_port = int(line[len(ADMIN_PREFIX):].strip())
        if ingest_port is not None and admin_port is not None:
            return ingest_port, admin_port
    return None, None


def run(server_binary, client_binary):
    server = subprocess.Popen(
        [
            server_binary,
            "--ingest-port=0",
            "--admin-port=0",
            "--serve-seconds=20",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        ingest_port, admin_port = wait_for_ports(server)
        if ingest_port is None or admin_port is None:
            server.kill()
            return fail("server never printed both listen lines")

        client = subprocess.run(
            [
                client_binary,
                f"--connect={ingest_port}",
                f"--clients={CLIENTS}",
                f"--objects={OBJECTS}",
                f"--fixes={FIXES}",
                "--batch=16",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        sys.stdout.write(client.stdout)
        if client.returncode != 0:
            sys.stderr.write(client.stderr)
            return fail(f"fleet_client exited with {client.returncode}")
        if "PASS" not in client.stdout:
            return fail("fleet_client did not print PASS")

        status, body = fetch(admin_port, "/ingestz")
        if status != 200:
            return fail(f"/ingestz: status {status}")
        ingestz = json.loads(body)
        stats = ingestz.get("server")
        if not isinstance(stats, dict):
            return fail(f"/ingestz has no live server object: {body[:200]!r}")
        want_fixes = CLIENTS * OBJECTS * FIXES
        if stats.get("accepted", 0) < CLIENTS:
            return fail(f"/ingestz accepted {stats.get('accepted')} sessions, "
                        f"want >= {CLIENTS}")
        if stats.get("fixes", 0) != want_fixes:
            return fail(f"/ingestz counted {stats.get('fixes')} fixes, "
                        f"want {want_fixes}")
        if "sessions" not in ingestz:
            return fail("/ingestz lacks the sessions array")

        remaining = server.stdout.read()
        if remaining:
            sys.stdout.write(remaining)
        code = server.wait(timeout=60)
        if code != 0:
            return fail(f"server exited with status {code}")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    print("ingest_smoke: PASS (TCP ingest + /ingestz accounting + clean exit)")
    return 0


def main(argv):
    if len(argv) != 3:
        print(
            "usage: ingest_smoke.py /path/to/streaming_gps_feed "
            "/path/to/fleet_client",
            file=sys.stderr,
        )
        return 2
    return run(argv[1], argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
