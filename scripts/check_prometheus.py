#!/usr/bin/env python3
"""Validates Prometheus text exposition format 0.0.4.

Reads an exposition (a /metrics response body) from a file argument or
stdin and checks the structural rules a scraper relies on:

  * sample lines parse as `name{labels} value` with a legal metric name,
    legal label names, properly quoted label values and a float value;
  * `# TYPE` declares a known type and precedes that family's samples;
  * a family is declared at most once and its samples are contiguous;
  * histograms expose `_bucket` (with an `le` label), `_sum` and
    `_count` series, include the `le="+Inf"` bucket, and bucket counts
    are monotonically non-decreasing in `le`.

Used by scripts/admin_smoke.py against the live admin server and usable
standalone: `curl -s localhost:PORT/metrics | check_prometheus.py`.
Exit status 0 when the exposition is well-formed, 1 otherwise.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Checker:
    def __init__(self):
        self.errors = []
        self.types = {}  # family -> declared type
        self.declared_after_samples = set()
        self.seen_families = []  # in first-seen order, for contiguity
        self.histogram_buckets = {}  # family -> {labels-sans-le: [(le, count)]}
        self.histogram_series = {}  # family -> set of suffixes seen

    def error(self, lineno, message):
        self.errors.append(f"line {lineno}: {message}")

    def family_of(self, name):
        for suffix in ("_bucket", "_sum", "_count"):
            family = name[: -len(suffix)] if name.endswith(suffix) else None
            if family and self.types.get(family) in ("histogram", "summary"):
                return family, suffix
        return name, ""

    def parse_value(self, lineno, raw):
        if raw in ("+Inf", "-Inf", "NaN"):
            return {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}[raw]
        try:
            return float(raw)
        except ValueError:
            self.error(lineno, f"unparseable sample value {raw!r}")
            return None

    def check_line(self, lineno, line):
        if not line.strip():
            return
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                return  # free-form comment: legal, ignored
            if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                self.error(lineno, f"# {parts[1]} without a legal metric name")
                return
            if parts[1] == "TYPE":
                family = parts[2]
                declared = parts[3].strip() if len(parts) > 3 else ""
                if declared not in TYPES:
                    self.error(lineno, f"unknown TYPE {declared!r}")
                if family in self.types:
                    self.error(lineno, f"duplicate TYPE for {family}")
                if family in self.seen_families:
                    self.error(lineno, f"TYPE for {family} after its samples")
                self.types[family] = declared
            return
        match = SAMPLE.match(line)
        if not match:
            self.error(lineno, f"unparseable sample line {line!r}")
            return
        name = match.group("name")
        value = self.parse_value(lineno, match.group("value"))
        labels = {}
        raw_labels = match.group("labels")
        if raw_labels is not None and raw_labels.strip():
            # Pairs must tile the brace contents exactly (comma-separated,
            # trailing comma legal) — a finditer sweep would silently skip
            # malformed text between matches.
            pos = 0
            while pos < len(raw_labels):
                pair = LABEL_PAIR.match(raw_labels, pos)
                if not pair:
                    self.error(
                        lineno,
                        f"unparseable label text {raw_labels[pos:]!r}",
                    )
                    break
                labels[pair.group(1)] = pair.group(2)
                pos = pair.end()
                if pos < len(raw_labels):
                    if raw_labels[pos] != ",":
                        self.error(
                            lineno,
                            f"expected ',' between labels, got "
                            f"{raw_labels[pos:]!r}",
                        )
                        break
                    pos += 1
        family, suffix = self.family_of(name)
        if family not in self.seen_families:
            self.seen_families.append(family)
        elif self.seen_families[-1] != family:
            self.error(lineno, f"samples of {family} are not contiguous")
            self.seen_families.append(family)
        if self.types.get(family) == "histogram":
            self.histogram_series.setdefault(family, set()).add(suffix)
            if suffix == "_bucket":
                if "le" not in labels:
                    self.error(lineno, f"{name} bucket without an 'le' label")
                elif value is not None:
                    key = tuple(
                        sorted((k, v) for k, v in labels.items() if k != "le")
                    )
                    series = self.histogram_buckets.setdefault(family, {})
                    series.setdefault(key, []).append(
                        (self.parse_value(lineno, labels["le"]), value)
                    )
        elif self.types.get(family) == "counter" and value is not None:
            if value < 0:
                self.error(lineno, f"counter {name} has negative value")

    def finish(self):
        for family, suffixes in self.histogram_series.items():
            for required in ("_bucket", "_sum", "_count"):
                if required not in suffixes:
                    self.errors.append(
                        f"histogram {family} is missing {family}{required}"
                    )
        for family, series in self.histogram_buckets.items():
            for key, buckets in series.items():
                if not any(math.isinf(le) and le > 0 for le, _ in buckets):
                    self.errors.append(
                        f'histogram {family}{dict(key)} lacks le="+Inf"'
                    )
                ordered = sorted(buckets, key=lambda b: b[0])
                counts = [count for _, count in ordered]
                if counts != sorted(counts):
                    self.errors.append(
                        f"histogram {family}{dict(key)} bucket counts "
                        f"decrease with le: {counts}"
                    )


def check_text(text):
    checker = Checker()
    for lineno, line in enumerate(text.splitlines(), start=1):
        checker.check_line(lineno, line)
    checker.finish()
    return checker


def main(argv):
    if len(argv) > 2:
        print("usage: check_prometheus.py [metrics.txt]", file=sys.stderr)
        return 2
    if len(argv) == 2:
        with open(argv[1], "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    checker = check_text(text)
    for message in checker.errors:
        print(f"check_prometheus: {message}", file=sys.stderr)
    if checker.errors:
        return 1
    families = len(checker.seen_families)
    print(f"check_prometheus: ok ({families} metric families)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
