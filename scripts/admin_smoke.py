#!/usr/bin/env python3
"""End-to-end smoke test for the admin server over a real feed.

Launches `streaming_gps_feed --admin-port=0 --serve-seconds=N` (port 0 =
kernel-assigned, so parallel CI jobs never collide), parses the bound
port from its stdout, fetches every standard endpoint while the example
is serving, and checks each response:

  /healthz              -> exactly "ok\n"
  /metrics              -> valid Prometheus 0.0.4 (check_prometheus.py)
  /objectz              -> JSON with the fleet's "objects" array
  /tracez (+json,
     +perfetto formats) -> span tree text / one-event-per-line JSON /
                           a Chrome trace_event envelope
  /flightz (+json)      -> flight-recorder event log
  /queryz               -> JSON query-engine counters ("queries" object)
  /ingestz              -> JSON ingest-server state (null server + empty
                           sessions here: the feed runs without
                           --ingest-port; ingest_smoke.py covers the
                           live-server shape)
  unknown path          -> 404

Then waits for the example to exit cleanly. Usage:

  admin_smoke.py /path/to/streaming_gps_feed [serve_seconds]
"""

import json
import subprocess
import sys
import time
import urllib.error
import urllib.request

import check_prometheus

LISTEN_PREFIX = "admin server listening on 127.0.0.1:"


def fail(message):
    print(f"admin_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def fetch(port, target):
    url = f"http://127.0.0.1:{port}{target}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as err:  # non-2xx still has a body
        return err.code, err.read().decode("utf-8")


def wait_for_port(process, deadline_s=30.0):
    """Reads stdout lines until the listen line appears; returns the port."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            return None  # stdout closed: the example died early
        sys.stdout.write(line)
        if line.startswith(LISTEN_PREFIX):
            return int(line[len(LISTEN_PREFIX):].strip())
    return None


def run(binary, serve_seconds):
    process = subprocess.Popen(
        [binary, "--admin-port=0", f"--serve-seconds={serve_seconds}"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_port(process)
        if port is None:
            process.kill()
            return fail("never printed the listen line")

        status, body = fetch(port, "/healthz")
        if status != 200 or body != "ok\n":
            return fail(f"/healthz: status {status}, body {body!r}")

        status, body = fetch(port, "/metrics")
        if status != 200:
            return fail(f"/metrics: status {status}")
        checker = check_prometheus.check_text(body)
        if checker.errors:
            for message in checker.errors:
                print(f"admin_smoke: /metrics: {message}", file=sys.stderr)
            return fail("/metrics is not valid Prometheus 0.0.4")
        if "stcomp_stream_fixes_in_total" not in body:
            return fail("/metrics lacks the fleet ingestion counters")

        status, body = fetch(port, "/objectz")
        if status != 200:
            return fail(f"/objectz: status {status}")
        objects = json.loads(body).get("objects")
        if not isinstance(objects, list) or not objects:
            return fail(f"/objectz has no objects: {body[:200]!r}")
        if not all("fixes_in" in entry for entry in objects):
            return fail("/objectz entries lack fixes_in")

        status, body = fetch(port, "/tracez")
        if status != 200 or "fleet.push" not in body:
            return fail(f"/tracez: status {status}, no fleet.push span")
        status, body = fetch(port, "/tracez?format=json")
        if status != 200 or '"span_id":' not in body:
            return fail("/tracez?format=json lacks span ids")
        status, body = fetch(port, "/tracez?format=perfetto")
        if status != 200:
            return fail(f"/tracez?format=perfetto: status {status}")
        perfetto = json.loads(body)
        if not isinstance(perfetto.get("traceEvents"), list):
            return fail("/tracez?format=perfetto lacks traceEvents")

        status, body = fetch(port, "/flightz")
        if status != 200 or "flight recorder:" not in body:
            return fail(f"/flightz: status {status}, body {body[:120]!r}")
        status, body = fetch(port, "/flightz?format=json")
        if status != 200 or not isinstance(json.loads(body), list):
            return fail("/flightz?format=json is not a JSON array")

        status, body = fetch(port, "/queryz")
        if status != 200:
            return fail(f"/queryz: status {status}")
        queryz = json.loads(body)
        if not isinstance(queryz.get("queries"), dict):
            return fail(f"/queryz lacks the queries object: {body[:200]!r}")

        status, body = fetch(port, "/ingestz")
        if status != 200:
            return fail(f"/ingestz: status {status}")
        ingestz = json.loads(body)
        if "sessions" not in ingestz:
            return fail(f"/ingestz lacks the sessions key: {body[:200]!r}")

        status, _ = fetch(port, "/no-such-endpoint")
        if status != 404:
            return fail(f"unknown path: status {status}, want 404")

        remaining = process.stdout.read()
        if remaining:
            sys.stdout.write(remaining)
        code = process.wait(timeout=60)
        if code != 0:
            return fail(f"example exited with status {code}")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    print("admin_smoke: PASS (all seven endpoints answered over HTTP)")
    return 0


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(
            "usage: admin_smoke.py /path/to/streaming_gps_feed "
            "[serve_seconds]",
            file=sys.stderr,
        )
        return 2
    serve_seconds = float(argv[2]) if len(argv) == 3 else 8.0
    return run(argv[1], serve_seconds)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
