#!/usr/bin/env bash
# Full verification: the tier-1 build/test pass, a second
# configure+build+test pass with AddressSanitizer + UBSan instrumentation
# (STCOMP_SANITIZE), so the property harness in tests/proptest/ doubles as
# a fuzz-lite memory-safety sweep over algo/, error/, store/ and stream/,
# a third pass with STCOMP_DISABLE_METRICS=ON proving the tree builds and
# tests green with the observability macros compiled out, and a fourth
# pass with ThreadSanitizer (incompatible with ASan, hence its own build
# tree) covering the parallel sweep driver, the stream fleet and every
# other concurrent path the suite exercises.
#
# Fuzz coverage rides inside passes 1 and 2 automatically: the
# fuzz_corpus_replay ctest target (tests/fuzz/) drives every structured
# fuzz entrypoint over the checked-in seed corpus plus deterministic
# FaultPlan mutants — so the hostile-byte sweep runs plain *and* under
# ASan/UBSan on every invocation. A final optional pass builds the real
# libFuzzer binaries (-DSTCOMP_FUZZ=ON) and smokes each for a few seconds;
# it is skipped gracefully when clang is not installed, since only clang
# ships -fsanitize=fuzzer.
#
# Pass 2 reruns the tier-1 test suite with STCOMP_FORCE_SCALAR_KERNELS=1:
# kernel backend selection is a runtime switch (DESIGN.md §14), so the
# same binaries prove every algorithm green under the scalar reference
# kernels as well as under the auto-dispatched SIMD ones, and the
# bench_kernels run doubles as a large-n scalar-vs-vector differential
# check whose JSON snapshot the validator then parses.
#
# Usage: scripts/check.sh            # all passes
#        JOBS=4 scripts/check.sh     # cap parallelism
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== Pass 1/5: tier-1 (plain RelWithDebInfo) =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"
# Extended crash–recover–verify sweep (tests/crash_matrix_test.cc): the
# tier-1 run already covers one seed; exercise two more so the seeded
# short/torn-write prefixes land at different offsets. The sharded leg
# rides the same seeds (one faulted partition, bit-exact survivors).
STCOMP_CRASH_MATRIX_SEEDS=7,991 \
    ./build/tests/crash_matrix_test \
    --gtest_filter='CrashMatrixTest.EveryBoundaryEveryFateRecoversToACommitPoint:CrashMatrixTest.ShardedOneShardCrashLeavesOthersBitExact'
# Sharded fleet scaling bench: times 1..max-shards on uniform + Zipf
# fleets and feeds the snapshot validator (acceptance numbers are only
# meaningful on multi-core hosts; the schema gate runs everywhere).
./build/bench/bench_fleet_scale --objects=128 --fixes-per-object=100 \
    --max-shards=4 --json-out=BENCH_fleet_scale.json
# Query selectivity sweep (DESIGN.md §17): indexed engine vs the
# decompress-everything oracle; every timed query is first checked for
# bitwise answer equality, and the validator enforces the acceptance
# headline (block skipping beats full decode on low-selectivity queries).
./build/bench/bench_queries --objects=64 --queries=40 \
    --json-out=BENCH_queries.json
# Network-ingest throughput (DESIGN.md §18): the full FleetClient ->
# loopback TCP -> IngestServer -> sharded engine path at 1..4
# connections; the schema gate checks the 1-connection baseline exists.
./build/bench/bench_ingest_net --fixes-per-client=2000 \
    --objects-per-client=2 --max-conns=4 --json-out=BENCH_ingest_net.json

echo "== Pass 2/5: scalar-forced kernels (runtime dispatch leg) =="
STCOMP_FORCE_SCALAR_KERNELS=1 \
    ctest --test-dir build --output-on-failure -j "$JOBS"
# Scalar-vs-vector kernel bench: asserts bitwise-identical outputs at
# large n, records the SIMD speedups, and feeds the snapshot validator.
./build/bench/bench_kernels --points=100000 --repetitions=3 \
    --json-out=BENCH_kernels.json
python3 scripts/validate_bench.py BENCH_*.json

echo "== Pass 3/5: STCOMP_SANITIZE=address;undefined =="
cmake -B build-asan -S . -DSTCOMP_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== Pass 4/5: STCOMP_DISABLE_METRICS=ON =="
cmake -B build-nometrics -S . -DSTCOMP_DISABLE_METRICS=ON
cmake --build build-nometrics -j "$JOBS"
ctest --test-dir build-nometrics --output-on-failure -j "$JOBS"

echo "== Pass 5/5: STCOMP_SANITIZE=thread =="
cmake -B build-tsan -S . -DSTCOMP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
# Drive the parallel sweep under TSan beyond the unit tests: the full
# (algorithm, threshold) grid with the serial-equality harness.
./build-tsan/bench/bench_sweep_parallel --trajectories=2 --repetitions=1 \
    --threads=4 --json-out=""
# Sharded fleet under TSan at bench concurrency: multi-producer ingest,
# batch handoff, backpressure and group commit all racing for real (the
# sharded_fleet/partitioned_store/crash-matrix unit tests already ran in
# the ctest pass above; this adds the N-producer bench-shaped load).
./build-tsan/bench/bench_fleet_scale --objects=64 --fixes-per-object=50 \
    --max-shards=4 --queue-capacity=128 --json-out=""

if command -v clang++ >/dev/null 2>&1; then
  echo "== Optional pass: libFuzzer smoke (STCOMP_FUZZ=ON, clang) =="
  cmake -B build-fuzz -S . -DSTCOMP_FUZZ=ON \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DSTCOMP_SANITIZE="address;undefined"
  cmake --build build-fuzz -j "$JOBS"
  for target in nmea gpx plt csv xml varint serialization store wal \
      query_index ingest_frame; do
    ./build-fuzz/tests/fuzz/fuzz_"$target" -max_total_time=5 -seed=20260805 \
      "tests/fuzz/corpus/$target"
  done
else
  echo "== Optional pass: libFuzzer smoke skipped (clang++ not installed) =="
fi

echo "All checks passed."
