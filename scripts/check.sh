#!/usr/bin/env bash
# Full verification: the tier-1 build/test pass, then a second
# configure+build+test pass with AddressSanitizer + UBSan instrumentation
# (STCOMP_SANITIZE), so the property harness in tests/proptest/ doubles as
# a fuzz-lite memory-safety sweep over algo/, error/, store/ and stream/.
#
# Usage: scripts/check.sh            # both passes
#        JOBS=4 scripts/check.sh     # cap parallelism
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== Pass 1/2: tier-1 (plain RelWithDebInfo) =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== Pass 2/2: STCOMP_SANITIZE=address;undefined =="
cmake -B build-asan -S . -DSTCOMP_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "All checks passed."
